// Experiment T1 — reproduces Table 1 of the paper ("Large Language
// Models": model sizes and dataset sizes), and checks the §6 rule of thumb
// "total number of parameters is roughly 12 D p^2" against both the
// published model sizes and this library's exact parameter count.
//
// Output: one table matching the paper's rows (year, model, params,
// dataset), extended with the 12Dp^2 estimate and its relative error, and
// a second table verifying the analytic count against an instantiated
// GPTModel at toy scale (exact equality).
#include <cstdio>
#include <iostream>

#include "nn/param_count.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using llm::nn::GPTConfig;
using llm::nn::GPTModel;
using llm::util::FormatCount;
using llm::util::FormatFloat;
using llm::util::Table;

void PrintPaperTable() {
  std::cout << "== Table 1: Large Language Models "
               "(paper values vs 12*D*p^2 rule) ==\n\n";
  Table t({"Year", "Model", "Params (paper)", "Dataset (tokens)",
           "12*D*p^2", "rel err"});
  for (const auto& spec : llm::nn::Table1Specs()) {
    std::string rule = "n/a";
    std::string err = "n/a";
    if (spec.n_layer > 0) {
      const double est =
          llm::nn::TwelveDPSquaredRule(spec.n_layer, spec.d_model);
      rule = FormatCount(est);
      err = FormatFloat((est - spec.reported_params) / spec.reported_params,
                        2);
    }
    t.AddRow({std::to_string(spec.year), spec.name,
              FormatCount(spec.reported_params),
              spec.dataset_tokens > 0 ? FormatCount(spec.dataset_tokens)
                                      : "?",
              rule, err});
  }
  t.Print(std::cout);
  std::cout << "\nThe rule tracks the published sizes to within tens of\n"
               "percent for the decoder-only models (GPT-2/3); BERT and\n"
               "GPT use small vocab-dominated configs where embeddings\n"
               "matter, and GPT-4's architecture is not public.\n\n";
}

void PrintExactCountTable() {
  std::cout << "== Exact parameter accounting (library vs analytic) ==\n\n";
  Table t({"config", "d_model", "layers", "exact (model)",
           "analytic", "12*D*p^2"});
  struct Row {
    const char* name;
    int64_t d_model;
    int n_layer;
  };
  for (const Row& row : {Row{"tiny", 32, 2}, Row{"small", 64, 4},
                         Row{"medium", 128, 6}}) {
    GPTConfig cfg;
    cfg.vocab_size = 101;
    cfg.max_seq_len = 64;
    cfg.d_model = row.d_model;
    cfg.n_layer = row.n_layer;
    cfg.n_head = 2;
    llm::util::Rng rng(1);
    GPTModel model(cfg, &rng);
    const int64_t exact = model.NumParameters();
    const int64_t analytic = llm::nn::AnalyticGptParamCount(cfg);
    t.AddRow({row.name, std::to_string(row.d_model),
              std::to_string(row.n_layer), std::to_string(exact),
              std::to_string(analytic),
              FormatCount(llm::nn::TwelveDPSquaredRule(cfg.n_layer,
                                                       cfg.d_model))});
    if (exact != analytic) {
      std::printf("MISMATCH for %s: exact %lld vs analytic %lld\n", row.name,
                  static_cast<long long>(exact),
                  static_cast<long long>(analytic));
    }
  }
  t.Print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  PrintPaperTable();
  PrintExactCountTable();
  return 0;
}
