// Experiment X20 — consistency between phrasings (paper §4: "simpler
// aspects of reasoning which have benchmarks are ... consistency (between
// different phrasings of the same question)", Jang & Lukasiewicz [61]).
// Modular addition is commutative, so "a + b =" and "b + a =" are two
// phrasings of one question. Using the grokking recipe (bench_grokking),
// we track on *fully held-out unordered pairs* (neither orientation seen
// in training):
//   accuracy               — is the answer right?
//   consistency            — do the two phrasings agree (right or wrong)?
//   consistently correct   — both phrasings right.
// The published observation this reproduces: models can be inconsistent
// between phrasings while partially accurate; only once the underlying
// structure is learned (here: grokked) do accuracy and consistency
// converge to 1 together.
#include <cstdio>
#include <iostream>
#include <map>

#include "data/modular.h"
#include "nn/transformer.h"
#include "train/optimizer.h"
#include "util/table.h"

namespace {
using llm::util::FormatFloat;
using llm::util::Table;

constexpr int64_t kP = 23;

int64_t ArgmaxAnswer(const llm::core::Tensor& logits, int64_t row,
                     int64_t vocab) {
  const float* r = logits.data() + row * vocab;
  int64_t best = 0;
  for (int64_t v = 1; v < kP; ++v) {  // answers are residues
    if (r[v] > r[best]) best = v;
  }
  return best;
}
}  // namespace

int main() {
  llm::data::ModularDatasetOptions dopts;
  dopts.modulus = kP;
  dopts.train_fraction = 0.6;
  dopts.seed = 3;
  llm::data::ModularDataset ds(dopts);

  // Unordered pairs {a, b}, a != b, with *both* orientations held out.
  std::map<std::pair<int64_t, int64_t>, int> test_count;
  for (const auto& e : ds.test()) {
    if (e.a == e.b) continue;
    ++test_count[{std::min(e.a, e.b), std::max(e.a, e.b)}];
  }
  std::vector<llm::data::ModularExample> pairs;
  for (const auto& [key, count] : test_count) {
    if (count == 2) {
      pairs.push_back({key.first, key.second,
                       (key.first + key.second) % kP});
    }
  }
  std::printf("%zu unordered pairs with both phrasings held out\n\n",
              pairs.size());

  llm::nn::GPTConfig cfg;
  cfg.vocab_size = ds.vocab_size();
  cfg.max_seq_len = llm::data::ModularDataset::kSeqLen;
  cfg.d_model = 48;
  cfg.n_layer = 1;
  cfg.n_head = 4;
  llm::util::Rng rng(17);
  llm::nn::GPTModel model(cfg, &rng);
  llm::train::AdamWOptions aopts;
  aopts.lr = 1e-3f;
  aopts.beta2 = 0.98f;
  aopts.weight_decay = 1.0f;
  llm::train::AdamW opt(model.Parameters(), aopts);

  // Pre-build the two-phrasings evaluation batch: rows 2i and 2i+1 are
  // "a op b =" and "b op a =".
  std::vector<int64_t> eval_inputs;
  for (const auto& p : pairs) {
    eval_inputs.insert(eval_inputs.end(),
                       {p.a, ds.op_token(), p.b, ds.eq_token()});
    eval_inputs.insert(eval_inputs.end(),
                       {p.b, ds.op_token(), p.a, ds.eq_token()});
  }
  const auto eval_rows = static_cast<int64_t>(2 * pairs.size());

  std::cout << "== Accuracy vs consistency on held-out pairs "
               "(grokking run) ==\n\n";
  Table t({"step", "accuracy", "consistency", "consistently correct"});
  const int64_t kSteps = 6000;
  for (int64_t step = 0; step <= kSteps; ++step) {
    if (step % 750 == 0 || step == kSteps) {
      llm::core::Tensor logits =
          model
              .ForwardLogits(eval_inputs, eval_rows,
                             llm::data::ModularDataset::kSeqLen)
              .value();
      int correct = 0, consistent = 0, both = 0;
      for (size_t i = 0; i < pairs.size(); ++i) {
        const int64_t fwd = ArgmaxAnswer(
            logits, static_cast<int64_t>(2 * i) * 4 + 3, ds.vocab_size());
        const int64_t rev = ArgmaxAnswer(
            logits, static_cast<int64_t>(2 * i + 1) * 4 + 3,
            ds.vocab_size());
        const bool ok_fwd = fwd == pairs[i].c, ok_rev = rev == pairs[i].c;
        correct += static_cast<int>(ok_fwd) + static_cast<int>(ok_rev);
        if (fwd == rev) ++consistent;
        if (ok_fwd && ok_rev) ++both;
      }
      const auto n = static_cast<double>(pairs.size());
      t.AddRow({std::to_string(step),
                FormatFloat(static_cast<double>(correct) / (2.0 * n), 3),
                FormatFloat(static_cast<double>(consistent) / n, 3),
                FormatFloat(static_cast<double>(both) / n, 3)});
    }
    if (step == kSteps) break;
    std::vector<int64_t> inputs, targets;
    ds.SampleTrainBatch(&rng, 128, &inputs, &targets);
    llm::core::Variable loss = llm::core::CrossEntropyLogits(
        model.ForwardLogits(inputs, 128,
                            llm::data::ModularDataset::kSeqLen),
        targets);
    opt.ZeroGrad();
    llm::core::Backward(loss);
    llm::train::ClipGradNorm(opt.params(), 1.0f);
    opt.Step();
  }
  t.Print(std::cout);
  std::cout << "\nPaper context (§4 / [61]): consistency between phrasings\n"
               "is a reasoning property separate from accuracy. Measured\n"
               "shape here: the model becomes *consistent before it\n"
               "becomes correct* — mid-training it gives the same wrong\n"
               "answer to both phrasings (consistency ~0.87 at accuracy\n"
               "0.00), i.e. it has internalized commutativity as a\n"
               "symmetry before grokking the addition itself; at the grok\n"
               "all three metrics jump to 1 together. Consistency and\n"
               "accuracy are genuinely separate competences, which is\n"
               "exactly why [61] benchmarks them separately.\n";
  return 0;
}
