// Experiment X17 — in-context learning as task identification (paper §3
// and §7; Xie et al. [140]): train one GPT on a mixture of K latent
// mapping tasks presented as few-shot sequences x1 y1 x2 y2 ... and
// measure answer accuracy *by shot index*. With K = 1 the mapping is
// memorizable and the first answer is already right; with larger K the
// model must identify the task from its context examples, so accuracy
// starts near the mixture-ambiguity floor and climbs shot by shot —
// in-context learning with frozen weights.
#include <cstdio>
#include <iostream>

#include "data/fewshot.h"
#include "nn/transformer.h"
#include "train/optimizer.h"
#include "util/table.h"

namespace {
using llm::util::FormatFloat;
using llm::util::Table;

constexpr int kShots = 8;
constexpr int64_t kItems = 8;

/// Per-shot answer accuracy over fresh batches.
std::vector<double> PerShotAccuracy(const llm::nn::GPTModel& model,
                                    const llm::data::FewShotTasks& tasks,
                                    int batches, llm::util::Rng* rng) {
  std::vector<double> correct(kShots, 0.0);
  int64_t count = 0;
  const int64_t B = 16;
  const int64_t T = 2 * kShots;
  for (int bt = 0; bt < batches; ++bt) {
    std::vector<int64_t> in, tg;
    tasks.SampleBatch(rng, B, kShots, &in, &tg);
    llm::core::Tensor logits = model.ForwardLogits(in, B, T).value();
    for (int64_t b = 0; b < B; ++b) {
      for (int s = 0; s < kShots; ++s) {
        const int64_t row = b * T + 2 * s;
        const float* r = logits.data() + row * kItems;
        int64_t best = 0;
        for (int64_t v = 1; v < kItems; ++v) {
          if (r[v] > r[best]) best = v;
        }
        if (best == tg[static_cast<size_t>(row)]) {
          correct[static_cast<size_t>(s)] += 1.0;
        }
      }
      ++count;
    }
  }
  for (auto& c : correct) c /= static_cast<double>(count);
  return correct;
}

std::vector<double> TrainMixture(int num_tasks, uint64_t seed) {
  llm::data::FewShotTasks tasks(num_tasks, kItems, seed);
  llm::util::Rng rng(seed + 1);
  llm::nn::GPTConfig cfg;
  cfg.vocab_size = kItems;
  cfg.max_seq_len = 2 * kShots;
  cfg.d_model = 64;
  cfg.n_layer = 2;
  cfg.n_head = 4;
  llm::nn::GPTModel model(cfg, &rng);
  llm::train::AdamWOptions aopts;
  aopts.lr = 2e-3f;
  llm::train::AdamW opt(model.Parameters(), aopts);
  for (int step = 0; step < 1500; ++step) {
    std::vector<int64_t> in, tg;
    tasks.SampleBatch(&rng, 16, kShots, &in, &tg);
    llm::core::Variable loss = llm::core::CrossEntropyLogits(
        model.ForwardLogits(in, 16, 2 * kShots), tg);
    opt.ZeroGrad();
    llm::core::Backward(loss);
    opt.Step();
  }
  llm::util::Rng eval_rng(777);
  return PerShotAccuracy(model, tasks, 8, &eval_rng);
}
}  // namespace

int main() {
  std::cout << "== Few-shot in-context task identification ==\n"
            << "(8 items; answer accuracy at each shot index; chance = "
            << FormatFloat(1.0 / kItems, 3) << ")\n\n";
  Table t({"latent tasks K", "shot 1", "shot 2", "shot 3", "shot 4",
           "shot 6", "shot 8"});
  for (int k : {1, 4, 16}) {
    auto acc = TrainMixture(k, 50 + static_cast<uint64_t>(k));
    t.AddRow({std::to_string(k), FormatFloat(acc[0], 2),
              FormatFloat(acc[1], 2), FormatFloat(acc[2], 2),
              FormatFloat(acc[3], 2), FormatFloat(acc[5], 2),
              FormatFloat(acc[7], 2)});
  }
  t.Print(std::cout);
  std::cout << "\nExpected shape (paper §3/§7 / [140]): with K = 1 the\n"
               "model answers correctly from the first shot (the task is\n"
               "in the weights); with larger K the first-shot accuracy\n"
               "drops toward the mixture floor and *recovers with more\n"
               "shots* — the examples select the task, no weights change.\n";
  return 0;
}
