// Experiment X5 — induction heads (paper §7, Olsson et al. [107], Elhage
// et al. [42]): train attention-only transformers on repeated-sequence
// data whose repeat offset *varies per sequence*, so no positional
// shortcut exists. The published result this reproduces: a 2-layer
// attention-only model learns the AB...A -> B induction circuit (high
// copy accuracy and a head whose attention mass sits on the "token after
// the previous occurrence" position), while a 1-layer model cannot
// implement the required composition and stays far below it.
#include <cstdio>
#include <iostream>

#include "data/induction.h"
#include "eval/metrics.h"
#include "nn/transformer.h"
#include "train/optimizer.h"
#include "util/table.h"

namespace {
using llm::util::FormatFloat;
using llm::util::Table;

constexpr int64_t kVocab = 24;
constexpr int64_t kSeqLen = 24;

struct Result {
  double copy_accuracy = 0.0;
  std::vector<std::vector<double>> head_scores;       // [layer][head]
  std::vector<std::vector<double>> head_scores_loose;  // +/- 1 position
};

Result TrainInduction(int n_layer, int64_t steps, uint64_t seed) {
  llm::nn::GPTConfig cfg;
  cfg.vocab_size = kVocab;
  cfg.max_seq_len = kSeqLen;
  cfg.d_model = 48;
  cfg.n_layer = n_layer;
  cfg.n_head = 2;
  cfg.attention_only = true;  // the published setting
  llm::util::Rng rng(seed);
  llm::nn::GPTModel model(cfg, &rng);

  llm::data::InductionOptions dopts;
  dopts.vocab_size = kVocab;
  dopts.seq_len = kSeqLen;

  llm::train::AdamWOptions aopts;
  aopts.lr = 2e-3f;
  llm::train::AdamW opt(model.Parameters(), aopts);
  const int64_t B = 16;
  for (int64_t step = 0; step < steps; ++step) {
    std::vector<int64_t> inputs, targets;
    llm::data::SampleInductionBatch(dopts, &rng, B, &inputs, &targets);
    llm::core::Variable loss = llm::core::CrossEntropyLogits(
        model.ForwardLogits(inputs, B, kSeqLen), targets);
    opt.ZeroGrad();
    llm::core::Backward(loss);
    opt.Step();
  }

  // Evaluate copy accuracy and per-head induction scores on a fresh batch.
  Result result;
  std::vector<int64_t> inputs, targets, splits;
  const int64_t eval_b = 32;
  llm::data::SampleInductionBatch(dopts, &rng, eval_b, &inputs, &targets,
                                  &splits);
  llm::nn::ActivationCapture cap;
  cap.capture_attention = true;
  llm::nn::ForwardOptions fopts;
  fopts.capture = &cap;
  llm::core::Variable logits =
      model.ForwardLogits(inputs, eval_b, kSeqLen, fopts);
  result.copy_accuracy = llm::eval::MaskedAccuracy(logits.value(), targets);
  for (const auto& att : cap.attention) {
    result.head_scores.push_back(llm::data::InductionScores(
        splits, eval_b, kSeqLen, att.data(), cfg.n_head));
    result.head_scores_loose.push_back(llm::data::InductionScores(
        splits, eval_b, kSeqLen, att.data(), cfg.n_head, /*tolerance=*/1));
  }
  return result;
}
}  // namespace

int main() {
  std::cout << "== Induction heads: attention-only transformers on "
               "repeated sequences ==\n"
            << "(T = " << kSeqLen << ", a random-length prefix repeats "
            << "cyclically; chance accuracy = 1/" << kVocab << " = "
            << FormatFloat(1.0 / kVocab, 3) << ")\n\n";

  Table t({"layers", "copy accuracy", "max induction score", "where"});
  for (int n_layer : {1, 2}) {
    Result r = TrainInduction(n_layer, 5000, 42 + n_layer);
    double best = 0;
    std::string where = "-";
    for (size_t l = 0; l < r.head_scores.size(); ++l) {
      for (size_t h = 0; h < r.head_scores[l].size(); ++h) {
        if (r.head_scores[l][h] > best) {
          best = r.head_scores[l][h];
          where = "layer " + std::to_string(l) + " head " +
                  std::to_string(h);
        }
      }
    }
    t.AddRow({std::to_string(n_layer), FormatFloat(r.copy_accuracy, 3),
              FormatFloat(best, 3), where});

    std::cout << "--- " << n_layer << "-layer model, per-head induction "
              << "scores (exact / within +-1) ---\n";
    for (size_t l = 0; l < r.head_scores.size(); ++l) {
      std::printf("  layer %zu:", l);
      for (size_t h = 0; h < r.head_scores[l].size(); ++h) {
        std::printf("  %.3f/%.3f", r.head_scores[l][h],
                    r.head_scores_loose[l][h]);
      }
      std::printf("\n");
    }
    std::cout << "\n";
  }
  t.Print(std::cout);
  std::cout << "\nExpected shape (paper §7 / [107]): only the 2-layer\n"
               "model solves the copy task — induction requires composing\n"
               "two attention layers (match the previous occurrence, then\n"
               "read the token after it), which one layer cannot express.\n"
               "A layer-1 head concentrates on the content-matched target\n"
               "position, and keeps sharpening with training (the paper's\n"
               "phase-change 'induction bump' is late; at this budget the\n"
               "pattern is forming rather than saturated).\n";
  return 0;
}
