// Experiment X1 — the perplexity ladder of §3/§5: on the same corpus,
// classical N-gram models sit well above neural models, and the
// transformer is the best of the neural family (the paper's footnote:
// "statistical estimates of perplexity are in the 100's, and the best
// current LLMs have perplexity ~20" — at toy scale the absolute numbers
// compress, but the ordering is the reproduction target).
//
// Also exercises ablation #5 of DESIGN.md: char-level vs word-level
// tokenization for the transformer (reported in bits to be comparable).
#include <cmath>
#include <cstdio>
#include <iostream>

#include "data/pcfg_corpus.h"
#include "eval/lm_eval.h"
#include "ngram/ngram.h"
#include "nn/ffn_lm.h"
#include "nn/rnn.h"
#include "nn/transformer.h"
#include "text/dataset.h"
#include "text/tokenizer.h"
#include "text/vocab.h"
#include "train/trainer.h"
#include "util/table.h"

namespace {

using llm::util::FormatCount;
using llm::util::FormatFloat;
using llm::util::Table;

constexpr int64_t kSeqLen = 24;
constexpr int64_t kBatch = 8;
constexpr int64_t kSteps = 450;

struct LadderRow {
  std::string model;
  int64_t params;
  double perplexity;
};

template <typename LossFn>
void TrainSteps(llm::train::Optimizer* opt, int64_t steps,
                const LossFn& loss_fn) {
  llm::train::TrainerOptions topts;
  topts.max_steps = steps;
  topts.clip_norm = 1.0f;
  llm::train::Trainer trainer(opt, topts);
  trainer.Run(loss_fn);
}

}  // namespace

int main() {
  llm::util::Rng rng(7);
  llm::grammar::Grammar g = llm::data::ToyEnglishGrammar();
  llm::data::PcfgCorpusOptions copts;
  copts.num_sentences = 3000;
  auto corpus = llm::data::SamplePcfgCorpus(g, copts, &rng);
  const int sep = g.num_terminals();
  const int64_t vocab = g.num_terminals() + 1;
  std::vector<int64_t> stream = llm::data::FlattenToStream(corpus, sep);
  auto [train_tokens, test_tokens] = llm::text::SplitTokens(stream, 0.15);
  llm::text::TokenDataset train_set(train_tokens, kSeqLen);
  llm::text::TokenDataset test_set(test_tokens, kSeqLen);
  std::printf("corpus: %zu train / %zu test tokens, vocab %lld\n\n",
              train_tokens.size(), test_tokens.size(),
              static_cast<long long>(vocab));

  std::vector<LadderRow> rows;

  // ---- N-gram family (Eq. 1, 5-6). "Params" = stored counts. ----
  for (int order : {1, 2, 3}) {
    llm::ngram::NgramModel model(order, vocab, 0.05);
    model.Fit(train_tokens);
    rows.push_back({std::to_string(order) + "-gram (add-k)",
                    model.num_contexts() * vocab,
                    model.Perplexity(test_tokens)});
  }
  {
    llm::ngram::InterpolatedNgram model(3, vocab, 0.05, {0.2, 0.3, 0.5});
    model.Fit(train_tokens);
    rows.push_back({"interp. 1-3 gram", 0, model.Perplexity(test_tokens)});
  }

  // ---- FFN L-gram model (§5, Bengio-style). ----
  {
    llm::nn::FfnLmConfig cfg;
    cfg.vocab_size = vocab;
    cfg.context = 4;
    cfg.d_embed = 24;
    cfg.d_hidden = 96;
    llm::util::Rng mrng(21);
    llm::nn::FfnLm model(cfg, &mrng);
    llm::train::AdamWOptions aopts;
    aopts.lr = 3e-3f;
    llm::train::AdamW opt(model.Parameters(), aopts);
    TrainSteps(&opt, kSteps, [&] {
      std::vector<int64_t> inputs, targets;
      train_set.SampleBatch(&mrng, kBatch, &inputs, &targets);
      // Carve sliding 4-gram contexts out of the sampled windows.
      std::vector<int64_t> ctx, tgt;
      for (int64_t b = 0; b < kBatch; ++b) {
        for (int64_t i = 0; i + 4 < kSeqLen; ++i) {
          for (int64_t k = 0; k < 4; ++k) {
            ctx.push_back(inputs[static_cast<size_t>(b * kSeqLen + i + k)]);
          }
          tgt.push_back(inputs[static_cast<size_t>(b * kSeqLen + i + 4)]);
        }
      }
      return model.Loss(ctx, tgt, static_cast<int64_t>(tgt.size()));
    });
    // Evaluate: same carving on test tokens.
    std::vector<int64_t> ctx, tgt;
    for (size_t i = 0; i + 4 < test_tokens.size() && tgt.size() < 2000;
         ++i) {
      for (size_t k = 0; k < 4; ++k) ctx.push_back(test_tokens[i + k]);
      tgt.push_back(test_tokens[i + 4]);
    }
    llm::core::Variable logits =
        model.ForwardLogits(ctx, static_cast<int64_t>(tgt.size()));
    llm::core::Variable nll = llm::core::CrossEntropyLogits(logits, tgt);
    rows.push_back({"FFN 4-gram (Eq. 11)", model.NumParameters(),
                    std::exp(static_cast<double>(nll.value()[0]))});
  }

  // ---- RNN / LSTM (Eq. 12). ----
  for (auto cell : {llm::nn::RecurrentCellType::kTanhRnn,
                    llm::nn::RecurrentCellType::kLstm}) {
    llm::nn::RnnLmConfig cfg;
    cfg.vocab_size = vocab;
    cfg.d_model = 48;
    cfg.cell = cell;
    llm::util::Rng mrng(22);
    llm::nn::RnnLm model(cfg, &mrng);
    llm::train::AdamWOptions aopts;
    aopts.lr = 3e-3f;
    llm::train::AdamW opt(model.Parameters(), aopts);
    TrainSteps(&opt, kSteps, [&] {
      std::vector<int64_t> inputs, targets;
      train_set.SampleBatch(&mrng, kBatch, &inputs, &targets);
      return model.LmLoss(inputs, targets, kBatch, kSeqLen);
    });
    rows.push_back(
        {cell == llm::nn::RecurrentCellType::kTanhRnn ? "RNN (tanh)"
                                                      : "LSTM",
         model.NumParameters(),
         llm::eval::EvaluateRnn(model, test_set, 24).perplexity});
  }

  // ---- Transformer (§6). ----
  {
    llm::nn::GPTConfig cfg;
    cfg.vocab_size = vocab;
    cfg.max_seq_len = kSeqLen;
    cfg.d_model = 48;
    cfg.n_layer = 2;
    cfg.n_head = 4;
    llm::util::Rng mrng(23);
    llm::nn::GPTModel model(cfg, &mrng);
    llm::train::AdamWOptions aopts;
    aopts.lr = 3e-3f;
    llm::train::AdamW opt(model.Parameters(), aopts);
    TrainSteps(&opt, kSteps, [&] {
      std::vector<int64_t> inputs, targets;
      train_set.SampleBatch(&mrng, kBatch, &inputs, &targets);
      return model.LmLoss(inputs, targets, kBatch, kSeqLen);
    });
    rows.push_back({"Transformer (GPT)", model.NumParameters(),
                    llm::eval::EvaluateGpt(model, test_set, 24).perplexity});
  }

  std::cout << "== Perplexity ladder (same corpus, word tokens) ==\n\n";
  Table t({"model", "params/counts", "test perplexity"});
  for (const auto& r : rows) {
    t.AddRow({r.model,
              r.params > 0 ? FormatCount(static_cast<double>(r.params))
                           : "-",
              FormatFloat(r.perplexity, 2)});
  }
  t.Print(std::cout);
  std::cout << "\nExpected ordering (paper §3/§5): n-grams > FFN > RNN >=\n"
               "LSTM > transformer. \n\n";

  // ---- Ablation #5: char-level vs word-level tokenization. ----
  std::cout << "== Ablation: char-level vs word-level tokenization ==\n"
               "(cross-entropy converted to bits per *character* so the\n"
               "two tokenizations are comparable)\n\n";
  // Rebuild the corpus as text, then char-tokenize.
  std::string text;
  for (const auto& s : corpus) {
    text += g.TreeYield(*s.tree);
    text += " . ";
  }
  llm::text::Vocab char_vocab;
  std::vector<int64_t> char_stream =
      char_vocab.Encode(llm::text::CharTokenize(text));
  auto [ctrain, ctest] = llm::text::SplitTokens(char_stream, 0.15);
  llm::text::TokenDataset ctrain_set(ctrain, kSeqLen);
  llm::text::TokenDataset ctest_set(ctest, kSeqLen);

  llm::nn::GPTConfig ccfg;
  ccfg.vocab_size = char_vocab.size();
  ccfg.max_seq_len = kSeqLen;
  ccfg.d_model = 48;
  ccfg.n_layer = 2;
  ccfg.n_head = 4;
  llm::util::Rng crng(24);
  llm::nn::GPTModel cmodel(ccfg, &crng);
  llm::train::AdamWOptions aopts;
  aopts.lr = 3e-3f;
  llm::train::AdamW copt(cmodel.Parameters(), aopts);
  TrainSteps(&copt, kSteps, [&] {
    std::vector<int64_t> inputs, targets;
    ctrain_set.SampleBatch(&crng, kBatch, &inputs, &targets);
    return cmodel.LmLoss(inputs, targets, kBatch, kSeqLen);
  });
  const double char_bits =
      llm::eval::EvaluateGpt(cmodel, ctest_set, 24).cross_entropy /
      std::log(2.0);
  // Word-level result converted to bits/char using mean word length.
  const double chars_per_word =
      static_cast<double>(char_stream.size()) /
      static_cast<double>(stream.size());
  const double word_bits_per_char =
      std::log(rows.back().perplexity) / std::log(2.0) / chars_per_word;
  Table abl({"tokenization", "bits per character"});
  abl.AddRow({"word-level", FormatFloat(word_bits_per_char, 3)});
  abl.AddRow({"char-level", FormatFloat(char_bits, 3)});
  abl.Print(std::cout);
  std::cout << "\n(Word-level models amortize orthography; char-level must\n"
               "spell every word — with a short window it pays a price.)\n";
  return 0;
}
