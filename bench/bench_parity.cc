// Experiment X11 — parity and the expressivity discussion of §5/§8: "the
// RNN is [at finite precision] a finite state machine" and "the complexity
// class of circuits which can be realized by constant depth transformers
// ... is TC^0". Running parity is the canonical separation: an RNN carries
// the answer in one bit of state and generalizes to any length, while a
// fixed-depth transformer must re-derive an L-way parity per position and
// characteristically fails to generalize past its training lengths.
//
// Both models train on sequences of length <= 16 and are evaluated on the
// *final-position* parity at lengths 8..32.
// Training runs through the fault-tolerant Trainer: gradient explosions
// and NaN losses roll back / skip with LR backoff instead of poisoning the
// table, and --ckpt-dir=DIR / --resume give kill-and-continue per model.
#include <cstdio>
#include <iostream>
#include <string>

#include "data/parity.h"
#include "eval/metrics.h"
#include "nn/rnn.h"
#include "nn/transformer.h"
#include "train/checkpoint.h"
#include "train/optimizer.h"
#include "train/trainer.h"
#include "util/table.h"

namespace {
using llm::util::FormatFloat;
using llm::util::Table;

constexpr int64_t kTrainLen = 16;
constexpr int64_t kMaxLen = 32;

/// Final-position accuracy at a given sequence length.
template <typename ForwardFn>
double FinalParityAccuracy(const ForwardFn& forward, int64_t seq_len,
                           int trials, llm::util::Rng* rng) {
  int correct = 0;
  const int64_t B = 16;
  for (int t = 0; t < trials; ++t) {
    std::vector<int64_t> in, tg;
    llm::data::SampleParityBatch(rng, B, seq_len, &in, &tg);
    llm::core::Tensor logits = forward(in, B, seq_len);  // [B*T, 2]
    for (int64_t b = 0; b < B; ++b) {
      const int64_t row = b * seq_len + seq_len - 1;
      const int64_t pred =
          logits[row * 2 + 1] > logits[row * 2 + 0] ? 1 : 0;
      if (pred == tg[static_cast<size_t>(row)]) ++correct;
    }
  }
  return static_cast<double>(correct) / (trials * B);
}

}  // namespace

int main(int argc, char** argv) {
  std::string ckpt_dir;
  bool resume = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--ckpt-dir=", 0) == 0) {
      ckpt_dir = arg.substr(11);
    } else if (arg == "--resume") {
      resume = true;
    } else {
      std::fprintf(stderr, "usage: %s [--ckpt-dir=DIR] [--resume]\n",
                   argv[0]);
      return 2;
    }
  }
  std::cout << "== Streaming parity: RNN (finite state machine) vs "
               "transformer (constant depth) ==\n"
            << "(trained on random lengths up to " << kTrainLen
            << "; chance = 0.5)\n\n";

  llm::util::Rng rng(19);

  // RNN: one layer, small state.
  llm::nn::RnnLmConfig rcfg;
  rcfg.vocab_size = 2;
  rcfg.d_model = 16;
  rcfg.cell = llm::nn::RecurrentCellType::kTanhRnn;
  llm::nn::RnnLm rnn(rcfg, &rng);

  // Transformer: matched parameter scale.
  llm::nn::GPTConfig tcfg;
  tcfg.vocab_size = 2;
  tcfg.max_seq_len = kMaxLen;
  tcfg.d_model = 32;
  tcfg.n_layer = 2;
  tcfg.n_head = 4;
  llm::nn::GPTModel transformer(tcfg, &rng);
  // Ablation #2 of DESIGN.md: fixed sinusoidal positions (Eq. 15) are
  // defined at every length, unlike learned rows that were never trained
  // past kTrainLen.
  llm::nn::GPTConfig scfg = tcfg;
  scfg.learned_positional = false;
  llm::nn::GPTModel sin_transformer(scfg, &rng);

  // Each model trains on its own RNG stream so results do not couple
  // (and the RNN, whose parity solution is init-sensitive, gets a higher
  // learning rate — see the recipe sweep in the repo history).
  auto train = [&](auto& model, const char* name, const char* tag, float lr,
                   uint64_t seed) {
    llm::util::Rng train_rng(seed);
    llm::train::AdamWOptions aopts;
    aopts.lr = lr;
    llm::train::AdamW opt(model.Parameters(), aopts);
    const int64_t B = 16;

    llm::train::TrainerOptions topts;
    topts.max_steps = 1500;
    topts.clip_norm = 1.0f;
    topts.model = &model;
    topts.data_rng = &train_rng;
    // The RNN's recurrent gradients occasionally spike at high LR; treat a
    // blown-up norm as a divergence and retry at lower LR rather than
    // taking the corrupted update.
    topts.grad_explode_threshold = 1e4f;
    topts.max_recoveries = 2;
    if (!ckpt_dir.empty()) {
      topts.checkpoint_dir = ckpt_dir + "/" + tag;
      topts.checkpoint_every = 500;
    }
    llm::train::Trainer trainer(&opt, topts);
    if (resume && !ckpt_dir.empty()) {
      auto latest = llm::train::LatestCheckpoint(ckpt_dir + "/" + tag);
      if (latest.ok() && trainer.ResumeFrom(latest.value()).ok()) {
        std::printf("%s resumed at step %lld\n", name,
                    static_cast<long long>(trainer.start_step()));
      }
    }
    llm::util::Status status = trainer.Run([&] {
      // Random training length <= kTrainLen (so position embeddings see
      // every in-range offset).
      const int64_t T =
          4 + static_cast<int64_t>(train_rng.UniformInt(kTrainLen - 3));
      std::vector<int64_t> in, tg;
      llm::data::SampleParityBatch(&train_rng, B, T, &in, &tg);
      return llm::core::CrossEntropyLogits(model.ForwardLogits(in, B, T),
                                           tg);
    });
    if (!status.ok()) {
      std::fprintf(stderr, "%s training failed: %s\n", name,
                   status.ToString().c_str());
      std::exit(1);
    }
    for (int64_t step : {0, 500, 1000, 1499}) {
      for (const auto& rec : trainer.history()) {
        if (rec.step == step) {
          std::printf("%s step %4lld loss %.3f\n", name,
                      static_cast<long long>(step),
                      static_cast<double>(rec.loss));
          break;
        }
      }
    }
  };
  train(rnn, "rnn        ", "rnn", 5e-3f, 101);
  train(transformer, "transformer", "tfm", 2e-3f, 102);
  train(sin_transformer, "tfm (sin)  ", "tfm_sin", 2e-3f, 103);

  std::cout << "\n== Final-bit parity accuracy vs sequence length ==\n\n";
  Table t({"length", "RNN", "tfm (learned pos)", "tfm (sinusoidal)",
           "regime"});
  for (int64_t len : {8, 12, 16, 20, 24, 32}) {
    llm::util::Rng eval_rng(100 + static_cast<uint64_t>(len));
    llm::util::Rng eval_rng2 = eval_rng;
    const double racc = FinalParityAccuracy(
        [&](const std::vector<int64_t>& in, int64_t B, int64_t T) {
          return rnn.ForwardLogits(in, B, T).value();
        },
        len, 8, &eval_rng);
    llm::util::Rng eval_rng3 = eval_rng;
    const double tacc = FinalParityAccuracy(
        [&](const std::vector<int64_t>& in, int64_t B, int64_t T) {
          return transformer.ForwardLogits(in, B, T).value();
        },
        len, 8, &eval_rng2);
    const double sacc = FinalParityAccuracy(
        [&](const std::vector<int64_t>& in, int64_t B, int64_t T) {
          return sin_transformer.ForwardLogits(in, B, T).value();
        },
        len, 8, &eval_rng3);
    t.AddRow({std::to_string(len), FormatFloat(racc, 3),
              FormatFloat(tacc, 3), FormatFloat(sacc, 3),
              len <= kTrainLen ? "in-distribution" : "length generalization"});
  }
  t.Print(std::cout);
  std::cout << "\nExpected shape (paper §5/§8): the RNN learns the\n"
               "two-state automaton and stays at 1.0 at *every* length;\n"
               "the constant-depth transformer only partially fits short\n"
               "lengths, decays toward chance as length grows, and never\n"
               "length-generalizes — parity is the classic hard case for\n"
               "attention circuits (a TC0-flavored separation), and the\n"
               "positional-encoding choice (learned vs sinusoidal) does\n"
               "not rescue it.\n";
  return 0;
}
