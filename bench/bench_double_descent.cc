// Experiment X12 — double descent (paper §4, footnote 24: "If one does
// not regularize one sees other phenomena such as double descent",
// Belkin et al. [14]). Random-feature regression on synthetic data: test
// error vs number of random features peaks at the interpolation threshold
// (#features = #samples) and *descends again* in the overparameterized
// regime — the "benign overfitting" behind the paper's §2 discussion of
// why the dull side of Occam's razor failed. Ridge regularization removes
// the peak (the same footnote's point).
#include <cmath>
#include <cstdio>
#include <iostream>

#include "util/linalg.h"
#include "util/rng.h"
#include "util/table.h"

namespace {
using llm::util::FormatFloat;
using llm::util::Table;

constexpr int kInputDim = 8;
constexpr int kTrainN = 40;
constexpr int kTestN = 400;

/// Teacher: y = tanh(w . x) + noise.
struct Dataset {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
};

Dataset MakeData(int n, const std::vector<double>& w, double noise,
                 llm::util::Rng* rng) {
  Dataset d;
  for (int i = 0; i < n; ++i) {
    std::vector<double> xi(kInputDim);
    double dot = 0;
    for (int j = 0; j < kInputDim; ++j) {
      xi[static_cast<size_t>(j)] = rng->Normal();
      dot += w[static_cast<size_t>(j)] * xi[static_cast<size_t>(j)];
    }
    d.x.push_back(std::move(xi));
    d.y.push_back(std::tanh(dot) + rng->Normal(0.0, noise));
  }
  return d;
}

/// Random-feature map: phi_k(x) = tanh(u_k . x), k = 1..features.
std::vector<std::vector<double>> Featurize(
    const Dataset& d, const std::vector<std::vector<double>>& proj) {
  std::vector<std::vector<double>> phi;
  phi.reserve(d.x.size());
  for (const auto& xi : d.x) {
    std::vector<double> row(proj.size());
    for (size_t k = 0; k < proj.size(); ++k) {
      double dot = 0;
      for (int j = 0; j < kInputDim; ++j) {
        dot += proj[k][static_cast<size_t>(j)] * xi[static_cast<size_t>(j)];
      }
      row[k] = std::tanh(dot);
    }
    phi.push_back(std::move(row));
  }
  return phi;
}

/// Fits ridge regression in feature space and returns test MSE. With
/// lambda ~ 0 this is (near-)interpolating least squares / min-norm.
double FitAndScore(const std::vector<std::vector<double>>& train_phi,
                   const std::vector<double>& train_y,
                   const std::vector<std::vector<double>>& test_phi,
                   const std::vector<double>& test_y, double lambda) {
  const size_t p = train_phi[0].size();
  std::vector<std::vector<double>> gram(
      p, std::vector<double>(p, 0.0));
  std::vector<double> rhs(p, 0.0);
  for (size_t i = 0; i < train_phi.size(); ++i) {
    for (size_t a = 0; a < p; ++a) {
      rhs[a] += train_phi[i][a] * train_y[i];
      for (size_t b = 0; b < p; ++b) {
        gram[a][b] += train_phi[i][a] * train_phi[i][b];
      }
    }
  }
  for (size_t a = 0; a < p; ++a) gram[a][a] += lambda;
  std::vector<double> w;
  if (!llm::util::SolveLinearSystem(gram, rhs, &w)) return -1.0;
  double mse = 0;
  for (size_t i = 0; i < test_phi.size(); ++i) {
    double pred = 0;
    for (size_t a = 0; a < p; ++a) pred += w[a] * test_phi[i][a];
    const double e = pred - test_y[i];
    mse += e * e;
  }
  return mse / static_cast<double>(test_phi.size());
}
}  // namespace

int main() {
  llm::util::Rng rng(23);
  std::vector<double> teacher(kInputDim);
  for (auto& v : teacher) v = rng.Normal();
  Dataset train = MakeData(kTrainN, teacher, 0.1, &rng);
  Dataset test = MakeData(kTestN, teacher, 0.0, &rng);

  std::cout << "== Double descent: random-feature regression, "
            << kTrainN << " training samples ==\n"
            << "(test MSE vs feature count; interpolation threshold at "
            << kTrainN << " features)\n\n";

  Table t({"features", "test MSE (lambda ~ 0)", "test MSE (ridge 1.0)",
           "regime"});
  // Average a few random feature draws per size to tame variance.
  for (int features :
       {5, 10, 20, 30, 36, 40, 44, 50, 60, 80, 120, 200, 400}) {
    double unreg = 0, ridge = 0;
    const int kDraws = 5;
    for (int d = 0; d < kDraws; ++d) {
      std::vector<std::vector<double>> proj(
          static_cast<size_t>(features), std::vector<double>(kInputDim));
      for (auto& row : proj) {
        for (auto& v : row) {
          v = rng.Normal() / std::sqrt(static_cast<double>(kInputDim));
        }
      }
      auto train_phi = Featurize(train, proj);
      auto test_phi = Featurize(test, proj);
      unreg += FitAndScore(train_phi, train.y, test_phi, test.y, 1e-7);
      ridge += FitAndScore(train_phi, train.y, test_phi, test.y, 1.0);
    }
    const char* regime = features < kTrainN
                             ? "underparameterized"
                             : (features == kTrainN ? "INTERPOLATION"
                                                    : "overparameterized");
    t.AddRow({std::to_string(features), FormatFloat(unreg / kDraws, 4),
              FormatFloat(ridge / kDraws, 4), regime});
  }
  t.Print(std::cout);
  std::cout << "\nExpected shape (paper §4 fn. 24 / [14]): without\n"
               "regularization the test error *peaks* at the interpolation\n"
               "threshold and then descends again as features grow —\n"
               "overparameterized models generalize (the §2 'benign\n"
               "overfitting'). Ridge regularization flattens the peak.\n";
  return 0;
}
