// Experiment X9 — confidence and calibration (paper §8's discussion of
// confidence judgments; Kadavath et al. [65] "Language Models (Mostly)
// Know What They Know"): train a small LM, then ask whether its
// next-token confidence (probability on its argmax) predicts its
// accuracy. Reports a reliability diagram, expected calibration error,
// and the effect of sampling temperature on the confidence distribution.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "data/pcfg_corpus.h"
#include "eval/metrics.h"
#include "nn/transformer.h"
#include "sample/sampler.h"
#include "text/dataset.h"
#include "train/trainer.h"
#include "util/table.h"

namespace {
using llm::util::FormatFloat;
using llm::util::Table;

std::vector<llm::eval::CalibrationPoint> CollectPoints(
    const llm::nn::GPTModel& model, const llm::text::TokenDataset& ds,
    int64_t windows) {
  std::vector<int64_t> inputs, targets;
  int64_t n = 0;
  ds.EvalWindows(windows, &inputs, &targets, &n);
  std::vector<llm::eval::CalibrationPoint> points;
  const int64_t T = ds.seq_len();
  for (int64_t w = 0; w < n; ++w) {
    std::vector<int64_t> in(inputs.begin() + w * T,
                            inputs.begin() + (w + 1) * T);
    std::vector<int64_t> tg(targets.begin() + w * T,
                            targets.begin() + (w + 1) * T);
    auto logits = model.ForwardLogits(in, 1, T).value();
    auto batch = llm::eval::CalibrationPoints(logits, tg);
    points.insert(points.end(), batch.begin(), batch.end());
  }
  return points;
}
}  // namespace

int main() {
  llm::util::Rng rng(13);
  llm::grammar::Grammar g = llm::data::ToyEnglishGrammar();
  llm::data::PcfgCorpusOptions copts;
  copts.num_sentences = 2500;
  auto corpus = llm::data::SamplePcfgCorpus(g, copts, &rng);
  std::vector<int64_t> stream =
      llm::data::FlattenToStream(corpus, g.num_terminals());
  auto [train_tokens, test_tokens] = llm::text::SplitTokens(stream, 0.2);
  const int64_t T = 24;
  llm::text::TokenDataset train_set(train_tokens, T);
  llm::text::TokenDataset test_set(test_tokens, T);

  llm::nn::GPTConfig cfg;
  cfg.vocab_size = g.num_terminals() + 1;
  cfg.max_seq_len = T;
  cfg.d_model = 48;
  cfg.n_layer = 2;
  cfg.n_head = 4;
  llm::nn::GPTModel model(cfg, &rng);
  llm::train::AdamWOptions aopts;
  aopts.lr = 3e-3f;
  llm::train::AdamW opt(model.Parameters(), aopts);
  llm::train::TrainerOptions topts;
  topts.max_steps = 450;
  topts.clip_norm = 1.0f;
  llm::train::Trainer trainer(&opt, topts);
  trainer.Run([&] {
    std::vector<int64_t> inputs, targets;
    train_set.SampleBatch(&rng, 8, &inputs, &targets);
    return model.LmLoss(inputs, targets, 8, T);
  });

  auto points = CollectPoints(model, test_set, 40);
  std::printf("collected %zu (confidence, correct) next-token "
              "predictions on held-out text\n\n",
              points.size());

  std::cout << "== Reliability diagram ==\n\n";
  Table rel({"confidence bin", "count", "mean confidence", "accuracy"});
  for (const auto& bin : llm::eval::ReliabilityDiagram(points, 10)) {
    if (bin.count == 0) continue;
    rel.AddRow({FormatFloat(bin.bin_lo, 1) + "-" +
                    FormatFloat(bin.bin_hi, 1),
                std::to_string(bin.count),
                FormatFloat(bin.mean_confidence, 3),
                FormatFloat(bin.accuracy, 3)});
  }
  rel.Print(std::cout);
  std::printf("\nexpected calibration error (ECE): %.4f\n",
              llm::eval::ExpectedCalibrationError(points, 10));

  // Correlation summary: accuracy among high- vs low-confidence cases.
  double hi_acc = 0, lo_acc = 0;
  int64_t hi_n = 0, lo_n = 0;
  for (const auto& p : points) {
    if (p.confidence >= 0.5) {
      hi_acc += p.correct;
      ++hi_n;
    } else {
      lo_acc += p.correct;
      ++lo_n;
    }
  }
  std::printf("accuracy when confident (p >= .5): %.3f (n=%lld)\n"
              "accuracy when unsure   (p <  .5): %.3f (n=%lld)\n\n",
              hi_acc / std::max<int64_t>(hi_n, 1),
              static_cast<long long>(hi_n),
              lo_acc / std::max<int64_t>(lo_n, 1),
              static_cast<long long>(lo_n));

  std::cout << "== Temperature and the Eq. 8 Boltzmann map ==\n\n";
  Table temp({"temperature", "mean max-prob", "sample entropy (nats)"});
  std::vector<int64_t> in, tg;
  int64_t n = 0;
  test_set.EvalWindows(4, &in, &tg, &n);
  std::vector<int64_t> window(in.begin(), in.begin() + T);
  auto logits = model.ForwardLogits(window, 1, T).value();
  for (float tval : {0.25f, 0.5f, 1.0f, 2.0f, 4.0f}) {
    llm::sample::SamplerOptions sopts;
    sopts.temperature = tval;
    double mean_max = 0, mean_entropy = 0;
    for (int64_t t = 0; t < T; ++t) {
      auto p = llm::sample::DistributionFromLogits(
          logits.data() + t * cfg.vocab_size, cfg.vocab_size, sopts);
      double mx = 0, ent = 0;
      for (float v : p) {
        mx = std::max<double>(mx, v);
        if (v > 0) ent -= static_cast<double>(v) * std::log(v);
      }
      mean_max += mx;
      mean_entropy += ent;
    }
    temp.AddRow({FormatFloat(tval, 2), FormatFloat(mean_max / T, 3),
                 FormatFloat(mean_entropy / T, 3)});
  }
  temp.Print(std::cout);
  std::cout << "\nExpected shape (paper §8 / [65]): accuracy rises with\n"
               "confidence bin (the model 'mostly knows what it knows');\n"
               "ECE is small but nonzero. Lower temperature concentrates\n"
               "the Eq. 8 distribution (higher max-prob, lower entropy).\n";
  return 0;
}
