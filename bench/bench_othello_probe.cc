// Experiment X6 — Othello-GPT world-model probing (paper §7, Li et al.
// [78]): train a GPT on random legal Othello move sequences (moves only,
// no board given), then
//   (1) measure the legal-move rate of its predictions (trained vs
//       untrained),
//   (2) train linear probes from the residual stream to the board state
//       of individual cells (empty / black / white), per layer, and
//   (3) run the intervention: push one cell's activation toward a
//       different probed state and verify the model's next-move
//       distribution shifts.
#include <cstdio>
#include <iostream>
#include <set>

#include "interp/probe.h"
#include "nn/transformer.h"
#include "othello/othello.h"
#include "sample/sampler.h"
#include "train/optimizer.h"
#include "util/table.h"

namespace {
using llm::othello::Board;
using llm::othello::Game;
using llm::util::FormatFloat;
using llm::util::Table;

constexpr int64_t kMovesPerGame = 16;  // truncated opening phase
constexpr int64_t kSeqLen = kMovesPerGame;

/// Encodes the first kMovesPerGame moves of games as token sequences
/// (token = cell index 0..63).
void EncodeGames(const std::vector<Game>& games,
                 std::vector<std::vector<int64_t>>* sequences) {
  for (const auto& g : games) {
    if (g.moves.size() < kMovesPerGame) continue;
    std::vector<int64_t> seq(g.moves.begin(),
                             g.moves.begin() + kMovesPerGame);
    sequences->push_back(std::move(seq));
  }
}

/// Fraction of positions where the model's argmax next move is legal.
double LegalMoveRate(const llm::nn::GPTModel& model,
                     const std::vector<Game>& games, size_t max_games) {
  int64_t legal = 0, total = 0;
  for (size_t gi = 0; gi < std::min(max_games, games.size()); ++gi) {
    const Game& game = games[gi];
    if (game.moves.size() < kMovesPerGame) continue;
    std::vector<int64_t> seq(game.moves.begin(),
                             game.moves.begin() + kMovesPerGame);
    llm::core::Variable logits = model.ForwardLogits(seq, 1, kSeqLen);
    Board board;
    for (int64_t t = 0; t + 1 < kSeqLen; ++t) {
      LLM_CHECK(board.Apply(static_cast<int>(seq[static_cast<size_t>(t)]))
                    .ok());
      // Argmax over the logits row at position t.
      const float* row = logits.value().data() + t * 64;
      int best = 0;
      for (int v = 1; v < 64; ++v) {
        if (row[v] > row[best]) best = v;
      }
      if (board.IsLegal(best)) ++legal;
      ++total;
    }
  }
  return static_cast<double>(legal) / static_cast<double>(total);
}
}  // namespace

int main() {
  llm::util::Rng rng(9);
  std::cout << "== Othello-GPT: world models from move sequences ==\n\n";
  auto games = llm::othello::RandomGames(700, &rng);
  std::vector<std::vector<int64_t>> sequences;
  EncodeGames(games, &sequences);
  std::printf("generated %zu games (%zu usable %lld-move prefixes)\n\n",
              games.size(), sequences.size(),
              static_cast<long long>(kMovesPerGame));

  llm::nn::GPTConfig cfg;
  cfg.vocab_size = 64;
  cfg.max_seq_len = kSeqLen;
  cfg.d_model = 64;
  cfg.n_layer = 2;
  cfg.n_head = 4;
  llm::nn::GPTModel model(cfg, &rng);
  llm::nn::GPTModel untrained(cfg, &rng);

  // Train on next-move prediction.
  llm::train::AdamWOptions aopts;
  aopts.lr = 2e-3f;
  llm::train::AdamW opt(model.Parameters(), aopts);
  const int64_t B = 8;
  const int64_t kSteps = 700;
  for (int64_t step = 0; step < kSteps; ++step) {
    std::vector<int64_t> inputs, targets;
    for (int64_t b = 0; b < B; ++b) {
      const auto& seq = sequences[rng.UniformInt(sequences.size())];
      for (int64_t t = 0; t < kSeqLen; ++t) {
        inputs.push_back(seq[static_cast<size_t>(t)]);
        targets.push_back(t + 1 < kSeqLen ? seq[static_cast<size_t>(t + 1)]
                                          : -1);
      }
    }
    llm::core::Variable loss = llm::core::CrossEntropyLogits(
        model.ForwardLogits(inputs, B, kSeqLen), targets);
    opt.ZeroGrad();
    llm::core::Backward(loss);
    opt.Step();
    if (step % 200 == 0) {
      std::printf("step %4lld  loss %.3f\n", static_cast<long long>(step),
                  static_cast<double>(loss.value()[0]));
    }
  }

  // (1) Legal-move rate.
  std::cout << "\n== Legal-move rate of argmax predictions ==\n\n";
  Table legal({"model", "legal-move rate"});
  legal.AddRow({"trained", FormatFloat(LegalMoveRate(model, games, 40), 3)});
  legal.AddRow(
      {"untrained", FormatFloat(LegalMoveRate(untrained, games, 40), 3)});
  legal.Print(std::cout);

  // (2) Board-state probes per layer. Collect residual activations at the
  // final position of each prefix, labeled with the state of a probed
  // cell. Probe a few central cells (most often occupied early).
  std::cout << "\n== Linear probes: residual stream -> cell state ==\n"
               "(classes: empty / black / white; majority-class baseline "
               "shown)\n\n";
  const int probe_cells[] = {18, 19, 26, 29, 34, 37, 44, 45};
  const size_t kProbeGames = std::min<size_t>(sequences.size(), 400);

  // Capture activations once per game prefix.
  std::vector<llm::core::Tensor> residuals(
      static_cast<size_t>(cfg.n_layer) + 1);
  for (auto& t : residuals) {
    t = llm::core::Tensor({static_cast<int64_t>(kProbeGames), cfg.d_model});
  }
  std::vector<std::array<int8_t, 64>> final_boards(kProbeGames);
  for (size_t gi = 0; gi < kProbeGames; ++gi) {
    llm::nn::ActivationCapture cap;
    llm::nn::ForwardOptions fopts;
    fopts.capture = &cap;
    model.ForwardLogits(sequences[gi], 1, kSeqLen, fopts);
    for (size_t layer = 0; layer < residuals.size(); ++layer) {
      const llm::core::Tensor& h = cap.residual[layer].value();
      for (int64_t c = 0; c < cfg.d_model; ++c) {
        residuals[layer][static_cast<int64_t>(gi) * cfg.d_model + c] =
            h.At({0, kSeqLen - 1, c});
      }
    }
    Board board;
    for (int64_t t = 0; t < kSeqLen; ++t) {
      LLM_CHECK(board
                    .Apply(static_cast<int>(
                        sequences[gi][static_cast<size_t>(t)]))
                    .ok());
    }
    final_boards[gi] = board.Snapshot();
  }

  Table probes({"layer", "probe accuracy (mean over cells)",
                "majority baseline"});
  std::vector<std::vector<float>> best_directions;  // for intervention
  double best_layer_acc = 0;
  int best_layer = 0;
  for (size_t layer = 0; layer < residuals.size(); ++layer) {
    double acc_sum = 0, base_sum = 0;
    for (int cell : probe_cells) {
      std::vector<int64_t> labels(kProbeGames);
      std::array<int64_t, 3> counts{0, 0, 0};
      for (size_t gi = 0; gi < kProbeGames; ++gi) {
        labels[gi] = final_boards[gi][static_cast<size_t>(cell)];
        ++counts[static_cast<size_t>(labels[gi])];
      }
      llm::interp::ProbeConfig pcfg;
      pcfg.input_dim = cfg.d_model;
      pcfg.num_classes = 3;
      pcfg.steps = 300;
      llm::interp::Probe probe(pcfg);
      probe.Fit(residuals[layer], labels);
      acc_sum += probe.Accuracy(residuals[layer], labels);
      base_sum += static_cast<double>(
                      *std::max_element(counts.begin(), counts.end())) /
                  static_cast<double>(kProbeGames);
    }
    const double acc = acc_sum / std::size(probe_cells);
    if (acc > best_layer_acc) {
      best_layer_acc = acc;
      best_layer = static_cast<int>(layer);
    }
    probes.AddRow({layer == 0 ? "embedding" : "block " +
                                                  std::to_string(layer - 1),
                   FormatFloat(acc, 3),
                   FormatFloat(base_sum / std::size(probe_cells), 3)});
  }
  probes.Print(std::cout);

  // (3) Intervention: for one game, flip the probed state of a cell in
  // the residual stream at the best layer and measure how much the
  // next-move distribution moves (total variation), vs a random edit of
  // the same norm.
  std::cout << "\n== Intervention at " <<
      (best_layer == 0 ? std::string("embedding")
                       : "block " + std::to_string(best_layer - 1))
            << " ==\n\n";
  const int cell = 19;
  // Retrain a probe for this cell at the best layer to get directions.
  std::vector<int64_t> labels(kProbeGames);
  for (size_t gi = 0; gi < kProbeGames; ++gi) {
    labels[gi] = final_boards[gi][static_cast<size_t>(cell)];
  }
  llm::interp::ProbeConfig pcfg;
  pcfg.input_dim = cfg.d_model;
  pcfg.num_classes = 3;
  pcfg.steps = 400;
  llm::interp::Probe probe(pcfg);
  probe.Fit(residuals[static_cast<size_t>(best_layer)], labels);

  double tv_intervened = 0, tv_random = 0;
  int counted = 0;
  llm::util::Rng irng(33);
  for (size_t gi = 0; gi < 20; ++gi) {
    const int8_t state = final_boards[gi][static_cast<size_t>(cell)];
    if (state == 0) continue;  // only flip occupied cells black<->white
    const int64_t from = state, to = state == 1 ? 2 : 1;
    llm::nn::ActivationCapture cap;
    llm::nn::ForwardOptions fopts;
    fopts.capture = &cap;
    llm::core::Tensor before =
        model.ForwardLogits(sequences[gi], 1, kSeqLen, fopts).value();

    llm::core::Tensor edited =
        cap.residual[static_cast<size_t>(best_layer)].value();
    std::vector<float> h(static_cast<size_t>(cfg.d_model));
    for (int64_t c = 0; c < cfg.d_model; ++c) {
      h[static_cast<size_t>(c)] = edited.At({0, kSeqLen - 1, c});
    }
    const float kAlpha = 6.0f;
    auto h_rand = h;
    llm::interp::ApplyInterventionEdit(&h, probe.ClassDirection(from),
                                       probe.ClassDirection(to), kAlpha);
    // Random direction control with the same magnitude.
    std::vector<float> r0(h.size(), 0.0f), r1(h.size());
    for (auto& v : r1) v = static_cast<float>(irng.Normal());
    llm::interp::ApplyInterventionEdit(&h_rand, r0, r1, kAlpha);

    auto run_edit = [&](const std::vector<float>& hv) {
      llm::core::Tensor e = edited;
      for (int64_t c = 0; c < cfg.d_model; ++c) {
        e.At({0, kSeqLen - 1, c}) = hv[static_cast<size_t>(c)];
      }
      return model.ForwardFromLayer(llm::core::Variable(e), best_layer)
          .value();
    };
    llm::core::Tensor after = run_edit(h);
    llm::core::Tensor after_rand = run_edit(h_rand);

    // Total variation between next-move distributions at the last
    // position.
    auto tv = [&](const llm::core::Tensor& a, const llm::core::Tensor& b) {
      llm::sample::SamplerOptions sopts;
      auto pa = llm::sample::DistributionFromLogits(
          a.data() + (kSeqLen - 1) * 64, 64, sopts);
      auto pb = llm::sample::DistributionFromLogits(
          b.data() + (kSeqLen - 1) * 64, 64, sopts);
      double s = 0;
      for (int v = 0; v < 64; ++v) {
        s += std::fabs(pa[static_cast<size_t>(v)] -
                       pb[static_cast<size_t>(v)]);
      }
      return 0.5 * s;
    };
    tv_intervened += tv(before, after);
    tv_random += tv(before, after_rand);
    ++counted;
  }
  std::printf("next-move distribution shift (total variation, mean over "
              "%d games):\n  probe-direction edit: %.3f\n  random edit of "
              "equal norm: %.3f\n",
              counted, tv_intervened / counted, tv_random / counted);
  std::cout << "\nExpected shape (paper §7 / [78]): trained legal-move\n"
               "rate >> untrained; probes beat the majority baseline and\n"
               "improve with depth; probe-direction edits move the policy\n"
               "more than random edits of equal size.\n";
  return 0;
}
