// Experiment X16 — search-augmented decoding (paper §8: planning/search
// as a missing component, tree-of-thoughts [142]; self-consistency over
// chains of thought). On the chain-of-thought word-problem model, compare
// answer accuracy under: greedy decoding, single temperature sample, beam
// search over whole chains, and majority-vote self-consistency.
#include <cstdio>
#include <iostream>

#include "data/word_problems.h"
#include "nn/transformer.h"
#include "sample/sampler.h"
#include "sample/search.h"
#include "train/optimizer.h"
#include "util/table.h"

namespace {
using llm::util::FormatFloat;
using llm::util::Table;

int64_t ExtractAnswer(const llm::data::WordProblemDataset& ds,
                      const std::vector<int64_t>& out) {
  int64_t answer = -1;
  for (int64_t t : out) {
    if (t < ds.options().modulus) answer = t;
    if (t == ds.end_token()) break;
  }
  return answer;
}
}  // namespace

int main() {
  llm::data::WordProblemOptions opts;
  opts.modulus = 11;
  opts.terms = 5;
  opts.chain_of_thought = true;
  llm::data::WordProblemDataset ds(opts);

  llm::util::Rng rng(8);
  llm::nn::GPTConfig cfg;
  cfg.vocab_size = ds.vocab_size();
  cfg.max_seq_len = 2 * ds.seq_len();
  cfg.d_model = 64;
  cfg.n_layer = 2;
  cfg.n_head = 4;
  llm::nn::GPTModel model(cfg, &rng);

  // Deliberately *undertrained* so decoding strategy matters: a saturated
  // model is right under any decoder.
  std::puts("training a (deliberately under-trained) CoT model...");
  llm::train::AdamWOptions aopts;
  aopts.lr = 2e-3f;
  llm::train::AdamW opt(model.Parameters(), aopts);
  for (int step = 0; step < 700; ++step) {
    std::vector<int64_t> in, tg;
    ds.SampleBatch(&rng, 16, &in, &tg);
    llm::core::Variable loss = llm::core::CrossEntropyLogits(
        model.ForwardLogits(in, 16, ds.seq_len()), tg);
    opt.ZeroGrad();
    llm::core::Backward(loss);
    opt.Step();
  }

  const int kProblems = 80;
  int greedy_ok = 0, sample_ok = 0, beam_ok = 0, sc_ok = 0;
  llm::util::Rng eval_rng(99);
  for (int i = 0; i < kProblems; ++i) {
    const auto problem = ds.SampleProblem(&eval_rng);
    const std::vector<int64_t> prompt = ds.EncodePrompt(problem);

    // Greedy.
    llm::sample::GenerateOptions greedy;
    greedy.max_new_tokens = ds.seq_len();
    greedy.sampler.temperature = 0.0f;
    greedy.stop_token = ds.end_token();
    if (ExtractAnswer(ds, llm::sample::Generate(model, prompt, greedy,
                                                &eval_rng)) ==
        problem.answer) {
      ++greedy_ok;
    }

    // One temperature sample.
    llm::sample::GenerateOptions one = greedy;
    one.sampler.temperature = 0.8f;
    if (ExtractAnswer(ds, llm::sample::Generate(model, prompt, one,
                                                &eval_rng)) ==
        problem.answer) {
      ++sample_ok;
    }

    // Beam search over whole chains.
    llm::sample::BeamSearchOptions bopts;
    bopts.beam_width = 4;
    bopts.max_new_tokens = ds.seq_len();
    bopts.stop_token = ds.end_token();
    auto beams = llm::sample::BeamSearch(model, prompt, bopts);
    if (!beams.empty() &&
        ExtractAnswer(ds, beams[0].tokens) == problem.answer) {
      ++beam_ok;
    }

    // Self-consistency.
    llm::sample::SelfConsistencyOptions scopts;
    scopts.num_samples = 9;
    scopts.temperature = 0.8f;
    scopts.max_new_tokens = ds.seq_len();
    scopts.stop_token = ds.end_token();
    if (llm::sample::SelfConsistentAnswer(
            model, prompt,
            [&](const std::vector<int64_t>& out) {
              return ExtractAnswer(ds, out);
            },
            scopts, &eval_rng) == problem.answer) {
      ++sc_ok;
    }
  }

  std::cout << "\n== Answer accuracy by decoding strategy ("
            << kProblems << " problems, k = " << opts.terms
            << " terms, CoT model) ==\n\n";
  Table t({"strategy", "accuracy"});
  t.AddRow({"single sample (T = 0.8)",
            FormatFloat(static_cast<double>(sample_ok) / kProblems, 3)});
  t.AddRow({"greedy",
            FormatFloat(static_cast<double>(greedy_ok) / kProblems, 3)});
  t.AddRow({"beam search (width 4)",
            FormatFloat(static_cast<double>(beam_ok) / kProblems, 3)});
  t.AddRow({"self-consistency (9 samples)",
            FormatFloat(static_cast<double>(sc_ok) / kProblems, 3)});
  t.Print(std::cout);
  std::cout << "\nExpected shape (paper §8): search over model outputs\n"
               "buys accuracy a bigger model would otherwise provide —\n"
               "greedy > single sample, and beam / self-consistency >=\n"
               "greedy, with majority voting the most robust on noisy\n"
               "chains.\n";
  return 0;
}
