// Experiment F1 — the toy-scale analogue of Figure 1 (Minerva solving
// multi-step word problems) and the paper's §3 discussion of
// chain-of-thought prompting: "a device for improving [reasoning] is to
// give examples with some intermediate reasoning steps spelled out."
//
// Task: compute (a1 + ... + ak) mod M from a next-token model. Training
// sequences either contain only the final answer (no CoT) or spell out
// the running partial sums (CoT). At evaluation the model greedily
// generates from the "=" prompt and we score the *final* answer token.
//
// Paper-shape target: CoT >> no-CoT as the number of reasoning steps k
// grows; both near-perfect for trivial k.
#include <cstdio>
#include <iostream>

#include "data/word_problems.h"
#include "nn/transformer.h"
#include "sample/sampler.h"
#include "train/trainer.h"
#include "util/table.h"

namespace {

using llm::data::WordProblemDataset;
using llm::data::WordProblemOptions;
using llm::util::FormatFloat;
using llm::util::Table;

/// Greedy-decodes the answer for `problem`; returns true if the token
/// right before END equals the true answer.
bool SolvesProblem(const llm::nn::GPTModel& model,
                   const WordProblemDataset& ds,
                   const WordProblemDataset::Problem& problem,
                   llm::util::Rng* rng) {
  llm::sample::GenerateOptions gopts;
  gopts.max_new_tokens = ds.seq_len();
  gopts.sampler.temperature = 0.0f;
  gopts.stop_token = ds.end_token();
  std::vector<int64_t> out =
      llm::sample::Generate(model, ds.EncodePrompt(problem), gopts, rng);
  // Find the last number token before END (or the last token generated).
  int64_t answer = -1;
  for (int64_t t : out) {
    if (t < ds.options().modulus) answer = t;
    if (t == ds.end_token()) break;
  }
  return answer == problem.answer;
}

double TrainAndScore(const WordProblemOptions& opts, int64_t steps,
                     uint64_t seed) {
  WordProblemDataset ds(opts);
  llm::util::Rng rng(seed);
  llm::nn::GPTConfig cfg;
  cfg.vocab_size = ds.vocab_size();
  cfg.max_seq_len = 2 * ds.seq_len();  // headroom for generation
  cfg.d_model = 64;
  cfg.n_layer = 2;
  cfg.n_head = 4;
  llm::nn::GPTModel model(cfg, &rng);

  llm::train::AdamWOptions aopts;
  aopts.lr = 2e-3f;
  llm::train::AdamW opt(model.Parameters(), aopts);
  llm::train::TrainerOptions topts;
  topts.max_steps = steps;
  topts.clip_norm = 1.0f;
  llm::train::Trainer trainer(&opt, topts);
  const int64_t B = 16;
  const int64_t T = ds.seq_len();
  trainer.Run([&] {
    std::vector<int64_t> inputs, targets;
    ds.SampleBatch(&rng, B, &inputs, &targets);
    return llm::core::CrossEntropyLogits(
        model.ForwardLogits(inputs, B, T), targets);
  });

  int solved = 0;
  const int kEvalProblems = 100;
  for (int i = 0; i < kEvalProblems; ++i) {
    if (SolvesProblem(model, ds, ds.SampleProblem(&rng), &rng)) ++solved;
  }
  return static_cast<double>(solved) / kEvalProblems;
}

}  // namespace

int main() {
  std::cout << "== Fig. 1 analogue: multi-step word problems, with vs "
               "without chain of thought ==\n\n";
  Table t({"terms k", "steps", "accuracy (no CoT)", "accuracy (CoT)"});
  for (int k : {2, 4, 6}) {
    // Longer problems get proportionally more optimization steps — both
    // variants receive the same budget, so the comparison stays fair.
    const int64_t steps = 350 * k;
    WordProblemOptions base;
    base.modulus = 11;
    base.terms = k;
    base.chain_of_thought = false;
    const double plain = TrainAndScore(base, steps, 100 + k);
    base.chain_of_thought = true;
    const double cot = TrainAndScore(base, steps, 200 + k);
    t.AddRow({std::to_string(k), std::to_string(steps),
              FormatFloat(plain, 2), FormatFloat(cot, 2)});
  }
  t.Print(std::cout);
  std::cout << "\nExpected shape (paper Fig. 1 / §3): chain-of-thought\n"
               "supervision turns one hard k-step prediction into k easy\n"
               "one-step predictions; its advantage grows with k. Random\n"
               "guessing is 1/11 = 0.09.\n";
  return 0;
}
