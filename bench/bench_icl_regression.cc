// Experiment X3 — in-context learning of linear regression (paper §4,
// Garg et al. [48]; §7 computational-model comparison, Akyurek et al.
// [2]): train a continuous-input transformer across many regression
// episodes, then measure query MSE as a function of the number of
// in-context examples, against exact least squares and ridge baselines.
//
// Paper-shape target: the trained transformer's MSE-vs-#examples curve
// tracks the least-squares curve (dropping sharply once #examples >= dim)
// while an untrained model stays flat near the trivial error E[y^2] = dim.
#include <cstdio>
#include <iostream>

#include "data/icl_regression.h"
#include "nn/icl_regressor.h"
#include "train/trainer.h"
#include "util/table.h"

namespace {
using llm::util::FormatFloat;
using llm::util::Table;

constexpr int kDim = 2;
constexpr int64_t kMaxPairs = 12;

/// Mean squared error of the model's prediction at the *last* (query)
/// position, over `episodes` fresh episodes with n_pairs total pairs.
double ModelQueryMse(const llm::nn::InContextRegressor& model, int n_pairs,
                     int episodes, llm::util::Rng* rng) {
  llm::data::IclRegressionOptions opts;
  opts.dim = kDim;
  double total = 0;
  for (int e = 0; e < episodes; ++e) {
    auto ep = llm::data::SampleIclEpisode(opts, n_pairs, rng);
    llm::core::Variable pred =
        model.Predict(ep.xs, ep.ys, 1, n_pairs);  // [1, n_pairs]
    const double err = static_cast<double>(pred.value()[n_pairs - 1]) -
                       static_cast<double>(ep.ys.back());
    total += err * err;
  }
  return total / episodes;
}

double BaselineQueryMse(bool ridge, double lambda, int n_pairs,
                        int episodes, llm::util::Rng* rng) {
  llm::data::IclRegressionOptions opts;
  opts.dim = kDim;
  double total = 0;
  for (int e = 0; e < episodes; ++e) {
    auto ep = llm::data::SampleIclEpisode(opts, n_pairs, rng);
    const double pred = ridge ? llm::data::RidgePredict(ep, lambda)
                              : llm::data::LeastSquaresPredict(ep);
    const double err = pred - static_cast<double>(ep.ys.back());
    total += err * err;
  }
  return total / episodes;
}
}  // namespace

int main() {
  llm::util::Rng rng(11);
  llm::nn::IclRegressorConfig cfg;
  cfg.dim = kDim;
  cfg.max_pairs = kMaxPairs;
  cfg.d_model = 64;
  cfg.n_layer = 3;
  cfg.n_head = 2;
  llm::nn::InContextRegressor model(cfg, &rng);
  llm::nn::InContextRegressor untrained(cfg, &rng);
  std::printf("model: %lld parameters, dim %d\n",
              static_cast<long long>(model.NumParameters()), kDim);

  // Train across episodes with random context lengths.
  llm::train::AdamWOptions aopts;
  aopts.lr = 1e-3f;
  llm::train::AdamW opt(model.Parameters(), aopts);
  llm::train::WarmupCosineLr sched(1e-3f, 100, 2500, 1e-4f);
  llm::train::TrainerOptions topts;
  topts.schedule = &sched;
  topts.max_steps = 2500;
  topts.clip_norm = 1.0f;
  topts.log_every = 300;
  llm::train::Trainer trainer(&opt, topts);
  const int64_t B = 16;
  llm::data::IclRegressionOptions dopts;
  dopts.dim = kDim;
  trainer.Run([&] {
    const int n_pairs =
        3 + static_cast<int>(rng.UniformInt(kMaxPairs - 2));
    std::vector<float> xs, ys;
    for (int64_t b = 0; b < B; ++b) {
      auto ep = llm::data::SampleIclEpisode(dopts, n_pairs, &rng);
      xs.insert(xs.end(), ep.xs.begin(), ep.xs.end());
      ys.insert(ys.end(), ep.ys.begin(), ep.ys.end());
    }
    return model.Loss(xs, ys, B, n_pairs);
  });

  std::cout << "\n== Query MSE vs number of in-context examples ==\n"
               "(dim = 2; trivial predictor MSE = E[y^2] = 2)\n\n";
  Table t({"context examples", "transformer", "least squares",
           "ridge (0.1)", "untrained"});
  const int kEval = 200;
  for (int ctx : {1, 2, 3, 4, 6, 8, 11}) {
    const int n_pairs = ctx + 1;  // + query
    llm::util::Rng eval_rng(777 + static_cast<uint64_t>(ctx));
    llm::util::Rng r2 = eval_rng, r3 = eval_rng, r4 = eval_rng;
    t.AddRow({std::to_string(ctx),
              FormatFloat(ModelQueryMse(model, n_pairs, kEval, &eval_rng),
                          3),
              FormatFloat(BaselineQueryMse(false, 0, n_pairs, kEval, &r2),
                          3),
              FormatFloat(BaselineQueryMse(true, 0.1, n_pairs, kEval, &r3),
                          3),
              FormatFloat(ModelQueryMse(untrained, n_pairs, kEval, &r4),
                          3)});
  }
  t.Print(std::cout);
  std::cout << "\nExpected shape (paper §4 / [48]): the trained transformer\n"
               "tracks least squares — error collapses once the context\n"
               "determines w (>= dim examples) — while the untrained model\n"
               "stays near the trivial MSE. This is 'learning to learn':\n"
               "no weights change between episodes.\n";
  return 0;
}
