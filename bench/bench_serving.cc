// Experiment X26 — batched serving throughput (paper §6: production
// inference batches concurrent requests so every weight row streamed from
// memory is reused across the batch).
//
// Offered-load sweep over the continuous-batching InferenceServer: at each
// load L the server gets L KV slots and 8 requests; the baseline is the
// same 8 requests run one after another on a dedicated single-stream
// session (sample::GenerateCached). Two properties are on trial:
//
//  1. Throughput: aggregate tokens/sec at batch 8 must be >= 3x the
//     sequential single-stream rate — on a single core, so the win comes
//     from the fused batched step (weight reuse + lane-vectorized
//     unembedding), not thread fan-out.
//  2. Determinism: every request's tokens must be bit-identical to its
//     dedicated single-stream run, whatever the batch composition.
//
// Each sweep point prints one machine-readable JSON line.
//
// A final overload stage pushes offered load past capacity (more
// concurrent requests than queue + slots, a slice of them on tight
// deadlines, plus a low-rate injected poisoned-lane fault) and reports the
// shed rate, failure isolation counts, and tail latency as a
// `BENCH_SERVING` JSON line — the degradation curve under pressure, not
// just the happy-path speedup.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "sample/sampler.h"
#include "serve/inference_server.h"
#include "util/fault.h"

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// GPT-2-small-proportioned toy: BPE-scale vocabulary, narrow trunk. The
// wide tied unembedding dominates per-token cost exactly as in real
// models, which is what makes the serving comparison honest.
llm::nn::GPTConfig ServingConfig() {
  llm::nn::GPTConfig cfg;
  cfg.vocab_size = 32768;
  cfg.max_seq_len = 48;
  cfg.d_model = 256;
  cfg.n_layer = 2;
  cfg.n_head = 8;
  cfg.tie_embeddings = true;
  return cfg;
}

std::vector<llm::serve::GenerateRequest> MakeWorkload() {
  std::vector<llm::serve::GenerateRequest> requests;
  for (uint64_t i = 0; i < 8; ++i) {
    llm::serve::GenerateRequest request;
    request.prompt = {static_cast<int64_t>(1 + 97 * i),
                      static_cast<int64_t>(5 + 131 * i),
                      static_cast<int64_t>(11 + 17 * i)};
    request.max_new_tokens = 40;
    request.seed = 1000 + i;
    request.sampler.temperature = 0.8f;  // plain temperature sampling
    requests.push_back(std::move(request));
  }
  return requests;
}

// One full batch-8 workload pass with telemetry either fully on (flight
// recorder + profiling timers + a per-request trace) or fully off.
// Returns aggregate tokens/sec; sets *exact if outputs matched the
// single-stream reference.
double RunTelemetryRep(const llm::nn::GPTModel& model,
                       const std::vector<llm::serve::GenerateRequest>& requests,
                       const std::vector<std::vector<int64_t>>& reference,
                       bool telemetry, bool* exact) {
  llm::obs::FlightRecorder::Global().SetEnabled(telemetry);
  llm::obs::EnableProfiling(telemetry);
  llm::serve::ServerOptions options;
  options.max_batch_size = 8;
  options.num_workers = 1;
  options.queue_capacity = 16;
  llm::serve::InferenceServer server(&model, options);
  server.Start();
  const auto start = Clock::now();
  std::vector<llm::serve::RequestId> ids;
  for (auto request : requests) {
    request.trace = telemetry;
    auto id = server.Submit(std::move(request));
    if (!id.ok()) return 0.0;
    ids.push_back(id.value());
  }
  int64_t tokens = 0;
  for (size_t i = 0; i < ids.size(); ++i) {
    auto result = server.Wait(ids[i]);
    if (!result.ok() || !result.value().status.ok()) return 0.0;
    tokens += static_cast<int64_t>(result.value().tokens.size());
    *exact = *exact && result.value().tokens == reference[i];
  }
  return static_cast<double>(tokens) / SecondsSince(start);
}

}  // namespace

int main() {
  llm::util::Rng rng(3);
  const llm::nn::GPTConfig cfg = ServingConfig();
  llm::nn::GPTModel model(cfg, &rng);
  std::printf(
      "serving bench: %lld params, vocab %lld, d_model %lld, window %lld\n\n",
      static_cast<long long>(model.NumParameters()),
      static_cast<long long>(cfg.vocab_size),
      static_cast<long long>(cfg.d_model),
      static_cast<long long>(cfg.max_seq_len));

  const std::vector<llm::serve::GenerateRequest> requests = MakeWorkload();

  // Baseline: the 8 requests served one at a time, each on its own
  // dedicated session — what a batch-less server would do.
  std::vector<std::vector<int64_t>> reference;
  int64_t baseline_tokens = 0;
  const auto baseline_start = Clock::now();
  for (const auto& request : requests) {
    llm::sample::GenerateOptions opts;
    opts.max_new_tokens = request.max_new_tokens;
    opts.sampler = request.sampler;
    opts.stop_token = request.stop_token;
    llm::util::Rng request_rng(request.seed);
    reference.push_back(
        llm::sample::GenerateCached(model, request.prompt, opts, &request_rng));
    baseline_tokens += static_cast<int64_t>(reference.back().size());
  }
  const double baseline_secs = SecondsSince(baseline_start);
  const double baseline_tps =
      static_cast<double>(baseline_tokens) / baseline_secs;
  std::printf(
      "{\"bench\":\"serving\",\"mode\":\"single_stream\",\"requests\":%zu,"
      "\"tokens\":%lld,\"seconds\":%.3f,\"tokens_per_sec\":%.1f}\n",
      requests.size(), static_cast<long long>(baseline_tokens), baseline_secs,
      baseline_tps);

  // Offered-load sweep: same 8 requests, L KV slots.
  double speedup_at_8 = 0.0;
  bool all_exact = true;
  for (int64_t load : {1, 2, 4, 8}) {
    llm::serve::ServerOptions options;
    options.max_batch_size = load;
    options.num_workers = 1;
    options.queue_capacity = 16;
    llm::serve::InferenceServer server(&model, options);
    server.Start();

    const auto start = Clock::now();
    std::vector<llm::serve::RequestId> ids;
    for (const auto& request : requests) {
      auto id = server.Submit(request);
      if (!id.ok()) {
        std::fprintf(stderr, "submit failed: %s\n",
                     id.status().ToString().c_str());
        return 1;
      }
      ids.push_back(id.value());
    }
    int64_t tokens = 0;
    bool exact = true;
    for (size_t i = 0; i < ids.size(); ++i) {
      auto result = server.Wait(ids[i]);
      if (!result.ok() || !result.value().status.ok()) {
        std::fprintf(stderr, "request %zu failed\n", i);
        return 1;
      }
      tokens += static_cast<int64_t>(result.value().tokens.size());
      exact = exact && result.value().tokens == reference[i];
    }
    const double secs = SecondsSince(start);
    const double tps = static_cast<double>(tokens) / secs;
    const double speedup = tps / baseline_tps;
    if (load == 8) speedup_at_8 = speedup;
    all_exact = all_exact && exact;
    const llm::serve::ServerStats stats = server.Stats();
    std::printf(
        "{\"bench\":\"serving\",\"mode\":\"continuous_batching\","
        "\"offered_load\":%lld,\"requests\":%zu,\"tokens\":%lld,"
        "\"seconds\":%.3f,\"tokens_per_sec\":%.1f,"
        "\"speedup_vs_single_stream\":%.2f,\"p50_ms\":%.1f,\"p95_ms\":%.1f,"
        "\"p99_ms\":%.1f,\"exact_match\":%s}\n",
        static_cast<long long>(load), requests.size(),
        static_cast<long long>(tokens), secs, tps, speedup,
        stats.p50_latency_ms, stats.p95_latency_ms, stats.p99_latency_ms,
        exact ? "true" : "false");
  }

  std::printf("\nbatch-8 aggregate speedup vs sequential single-stream: "
              "%.2fx (target >= 3x), outputs %s\n",
              speedup_at_8, all_exact ? "bit-identical" : "MISMATCH (bug!)");
  if (!all_exact) return 1;

  // Telemetry overhead stage: the same batch-8 workload with the whole
  // observability stack hot (flight recorder, profiling timers, a span
  // tree per request) vs everything off. Reps alternate off/on so thermal
  // and cache drift hits both arms equally; best-of is compared, since
  // the minimum is the least noisy estimator of attainable throughput.
  {
    bool telemetry_exact = true;
    double best_off = 0.0, best_on = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      best_off = std::max(best_off, RunTelemetryRep(model, requests, reference,
                                                    false, &telemetry_exact));
      best_on = std::max(best_on, RunTelemetryRep(model, requests, reference,
                                                  true, &telemetry_exact));
    }
    llm::obs::FlightRecorder::Global().SetEnabled(true);
    llm::obs::EnableProfiling(false);
    if (best_off <= 0.0 || best_on <= 0.0 || !telemetry_exact) {
      std::fprintf(stderr, "telemetry overhead stage failed\n");
      return 1;
    }
    const double overhead_pct = (best_off - best_on) / best_off * 100.0;
    std::printf(
        "{\"bench\":\"serving\",\"mode\":\"telemetry_overhead\","
        "\"tokens_per_sec_off\":%.1f,\"tokens_per_sec_on\":%.1f,"
        "\"overhead_pct\":%.2f,\"target_pct\":2.0,\"exact_match\":true}\n",
        best_off, best_on, overhead_pct);
    std::printf("telemetry overhead: %.2f%% (target < 2%%)%s\n", overhead_pct,
                overhead_pct < 2.0 ? "" : "  ** OVER TARGET **");
  }

  // Overload stage: 32 requests thrown at a 4-slot server with an 8-deep
  // queue as fast as the client can submit — offered load far past
  // capacity, so bounded admission must shed. A quarter of the requests
  // carry deadlines too tight to always make it, and kDecodeNaN fires at a
  // 2% rate to exercise poisoned-lane isolation under pressure. The
  // interesting outputs: how much load was shed at the door, how many
  // faults were isolated, and what the p99 looked like for the survivors.
  {
    llm::util::FaultInjector::Global().ArmRandom(
        llm::util::FaultSite::kDecodeNaN, 0.02, 11);
    llm::serve::ServerOptions options;
    options.max_batch_size = 4;
    options.num_workers = 1;
    options.queue_capacity = 8;
    llm::serve::InferenceServer server(&model, options);
    server.Start();

    constexpr int kOffered = 32;
    std::vector<llm::serve::RequestId> ids;
    const auto start = Clock::now();
    for (int i = 0; i < kOffered; ++i) {
      llm::serve::GenerateRequest request;
      request.prompt = {static_cast<int64_t>(1 + 97 * i) % cfg.vocab_size,
                        static_cast<int64_t>(5 + 131 * i) % cfg.vocab_size};
      request.max_new_tokens = 16;
      request.seed = 5000 + static_cast<uint64_t>(i);
      request.sampler.temperature = 0.8f;
      if (i % 4 == 0) request.timeout = std::chrono::milliseconds(400);
      auto id = server.Submit(request);
      if (id.ok()) ids.push_back(id.value());
    }
    for (llm::serve::RequestId id : ids) {
      auto result = server.Wait(id);
      if (!result.ok()) {
        std::fprintf(stderr, "overload: Wait failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
    }
    const double secs = SecondsSince(start);
    const llm::serve::ServerStats stats = server.Stats();
    // Snapshot fault activity into the registry before Disarm resets it.
    llm::obs::PublishFaultMetrics(&llm::obs::MetricsRegistry::Global());
    llm::util::FaultInjector::Global().Disarm();

    const uint64_t offered = stats.submitted + stats.rejected;
    const double shed_rate =
        offered > 0 ? static_cast<double>(stats.rejected) /
                          static_cast<double>(offered)
                    : 0.0;
    std::printf(
        "BENCH_SERVING {\"bench\":\"serving\",\"mode\":\"overload\","
        "\"offered\":%llu,\"accepted\":%llu,\"rejected\":%llu,"
        "\"shed_rate\":%.3f,\"completed\":%llu,\"expired\":%llu,"
        "\"failed\":%llu,\"seconds\":%.3f,\"tokens_per_sec\":%.1f,"
        "\"p50_ms\":%.1f,\"p99_ms\":%.1f,\"health\":\"%s\"}\n",
        static_cast<unsigned long long>(offered),
        static_cast<unsigned long long>(stats.submitted),
        static_cast<unsigned long long>(stats.rejected), shed_rate,
        static_cast<unsigned long long>(stats.completed),
        static_cast<unsigned long long>(stats.expired),
        static_cast<unsigned long long>(stats.failed), secs,
        stats.tokens_per_sec, stats.p50_latency_ms, stats.p99_latency_ms,
        llm::serve::ServerHealthName(stats.health));

    // Conservation must hold even at the edge of capacity.
    if (stats.submitted != stats.completed + stats.cancelled + stats.expired +
                               stats.failed + stats.preempted) {
      std::fprintf(stderr, "overload: conservation invariant violated\n");
      return 1;
    }

    // Everything the registry accumulated over the run — overload-stage
    // server stats as gauges, tick/decode histograms, fault activity —
    // as one machine-readable line.
    llm::serve::ExportServerStats(stats, "serve",
                                  &llm::obs::MetricsRegistry::Global());
    std::printf("METRICS %s\n",
                llm::obs::MetricsRegistry::Global().JsonSnapshot().c_str());
  }
  return 0;
}
