// Experiment X26 — batched serving throughput (paper §6: production
// inference batches concurrent requests so every weight row streamed from
// memory is reused across the batch).
//
// Offered-load sweep over the continuous-batching InferenceServer: at each
// load L the server gets L KV slots and 8 requests; the baseline is the
// same 8 requests run one after another on a dedicated single-stream
// session (sample::GenerateCached). Two properties are on trial:
//
//  1. Throughput: aggregate tokens/sec at batch 8 must be >= 3x the
//     sequential single-stream rate — on a single core, so the win comes
//     from the fused batched step (weight reuse + lane-vectorized
//     unembedding), not thread fan-out.
//  2. Determinism: every request's tokens must be bit-identical to its
//     dedicated single-stream run, whatever the batch composition.
//
// Each sweep point prints one machine-readable JSON line.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "sample/sampler.h"
#include "serve/inference_server.h"

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// GPT-2-small-proportioned toy: BPE-scale vocabulary, narrow trunk. The
// wide tied unembedding dominates per-token cost exactly as in real
// models, which is what makes the serving comparison honest.
llm::nn::GPTConfig ServingConfig() {
  llm::nn::GPTConfig cfg;
  cfg.vocab_size = 32768;
  cfg.max_seq_len = 48;
  cfg.d_model = 256;
  cfg.n_layer = 2;
  cfg.n_head = 8;
  cfg.tie_embeddings = true;
  return cfg;
}

std::vector<llm::serve::GenerateRequest> MakeWorkload() {
  std::vector<llm::serve::GenerateRequest> requests;
  for (uint64_t i = 0; i < 8; ++i) {
    llm::serve::GenerateRequest request;
    request.prompt = {static_cast<int64_t>(1 + 97 * i),
                      static_cast<int64_t>(5 + 131 * i),
                      static_cast<int64_t>(11 + 17 * i)};
    request.max_new_tokens = 40;
    request.seed = 1000 + i;
    request.sampler.temperature = 0.8f;  // plain temperature sampling
    requests.push_back(std::move(request));
  }
  return requests;
}

}  // namespace

int main() {
  llm::util::Rng rng(3);
  const llm::nn::GPTConfig cfg = ServingConfig();
  llm::nn::GPTModel model(cfg, &rng);
  std::printf(
      "serving bench: %lld params, vocab %lld, d_model %lld, window %lld\n\n",
      static_cast<long long>(model.NumParameters()),
      static_cast<long long>(cfg.vocab_size),
      static_cast<long long>(cfg.d_model),
      static_cast<long long>(cfg.max_seq_len));

  const std::vector<llm::serve::GenerateRequest> requests = MakeWorkload();

  // Baseline: the 8 requests served one at a time, each on its own
  // dedicated session — what a batch-less server would do.
  std::vector<std::vector<int64_t>> reference;
  int64_t baseline_tokens = 0;
  const auto baseline_start = Clock::now();
  for (const auto& request : requests) {
    llm::sample::GenerateOptions opts;
    opts.max_new_tokens = request.max_new_tokens;
    opts.sampler = request.sampler;
    opts.stop_token = request.stop_token;
    llm::util::Rng request_rng(request.seed);
    reference.push_back(
        llm::sample::GenerateCached(model, request.prompt, opts, &request_rng));
    baseline_tokens += static_cast<int64_t>(reference.back().size());
  }
  const double baseline_secs = SecondsSince(baseline_start);
  const double baseline_tps =
      static_cast<double>(baseline_tokens) / baseline_secs;
  std::printf(
      "{\"bench\":\"serving\",\"mode\":\"single_stream\",\"requests\":%zu,"
      "\"tokens\":%lld,\"seconds\":%.3f,\"tokens_per_sec\":%.1f}\n",
      requests.size(), static_cast<long long>(baseline_tokens), baseline_secs,
      baseline_tps);

  // Offered-load sweep: same 8 requests, L KV slots.
  double speedup_at_8 = 0.0;
  bool all_exact = true;
  for (int64_t load : {1, 2, 4, 8}) {
    llm::serve::ServerOptions options;
    options.max_batch_size = load;
    options.num_workers = 1;
    options.queue_capacity = 16;
    llm::serve::InferenceServer server(&model, options);
    server.Start();

    const auto start = Clock::now();
    std::vector<llm::serve::RequestId> ids;
    for (const auto& request : requests) {
      auto id = server.Submit(request);
      if (!id.ok()) {
        std::fprintf(stderr, "submit failed: %s\n",
                     id.status().ToString().c_str());
        return 1;
      }
      ids.push_back(id.value());
    }
    int64_t tokens = 0;
    bool exact = true;
    for (size_t i = 0; i < ids.size(); ++i) {
      auto result = server.Wait(ids[i]);
      if (!result.ok() || !result.value().status.ok()) {
        std::fprintf(stderr, "request %zu failed\n", i);
        return 1;
      }
      tokens += static_cast<int64_t>(result.value().tokens.size());
      exact = exact && result.value().tokens == reference[i];
    }
    const double secs = SecondsSince(start);
    const double tps = static_cast<double>(tokens) / secs;
    const double speedup = tps / baseline_tps;
    if (load == 8) speedup_at_8 = speedup;
    all_exact = all_exact && exact;
    const llm::serve::ServerStats stats = server.Stats();
    std::printf(
        "{\"bench\":\"serving\",\"mode\":\"continuous_batching\","
        "\"offered_load\":%lld,\"requests\":%zu,\"tokens\":%lld,"
        "\"seconds\":%.3f,\"tokens_per_sec\":%.1f,"
        "\"speedup_vs_single_stream\":%.2f,\"p50_ms\":%.1f,\"p95_ms\":%.1f,"
        "\"p99_ms\":%.1f,\"exact_match\":%s}\n",
        static_cast<long long>(load), requests.size(),
        static_cast<long long>(tokens), secs, tps, speedup,
        stats.p50_latency_ms, stats.p95_latency_ms, stats.p99_latency_ms,
        exact ? "true" : "false");
  }

  std::printf("\nbatch-8 aggregate speedup vs sequential single-stream: "
              "%.2fx (target >= 3x), outputs %s\n",
              speedup_at_8, all_exact ? "bit-identical" : "MISMATCH (bug!)");
  if (!all_exact) return 1;
  return 0;
}
