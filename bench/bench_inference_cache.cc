// Experiment X15 — inference cost and the KV cache (paper §6: attention
// costs O(L^2) per forward pass, so naive generation is O(L^3) while a
// key/value cache makes it O(L^2) total). Wall-clock comparison of
// full-recompute generation vs the cached incremental session, plus an
// equivalence check (greedy outputs must match token for token).
#include <chrono>
#include <cstdio>
#include <iostream>

#include "nn/gpt_inference.h"
#include "sample/sampler.h"
#include "util/table.h"

namespace {
using llm::util::FormatFloat;
using llm::util::Table;

double Seconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}
}  // namespace

int main() {
  llm::util::Rng rng(3);
  llm::nn::GPTConfig cfg;
  cfg.vocab_size = 64;
  cfg.max_seq_len = 256;
  cfg.d_model = 64;
  cfg.n_layer = 2;
  cfg.n_head = 4;
  llm::nn::GPTModel model(cfg, &rng);
  std::printf("model: %lld params, window %lld\n\n",
              static_cast<long long>(model.NumParameters()),
              static_cast<long long>(cfg.max_seq_len));

  // Equivalence: greedy cached == greedy uncached.
  {
    llm::sample::GenerateOptions gopts;
    gopts.max_new_tokens = 48;
    gopts.sampler.temperature = 0.0f;
    llm::util::Rng r1(1), r2(1);
    auto slow = llm::sample::Generate(model, {1, 2, 3}, gopts, &r1);
    auto fast = llm::nn::GenerateCached(model, {1, 2, 3}, 48, 0.0f, &r2);
    std::printf("greedy equivalence over 48 tokens: %s\n\n",
                slow == fast ? "IDENTICAL" : "MISMATCH (bug!)");
    if (slow != fast) return 1;
  }

  std::cout << "== Generation wall-clock: full recompute vs KV cache ==\n\n";
  Table t({"new tokens", "recompute (s)", "cached (s)", "speedup"});
  for (int64_t n : {16, 32, 64, 128, 240}) {
    llm::util::Rng r1(7), r2(7);
    const double slow = Seconds([&] {
      llm::sample::GenerateOptions gopts;
      gopts.max_new_tokens = n;
      gopts.sampler.temperature = 1.0f;
      llm::sample::Generate(model, {1}, gopts, &r1);
    });
    const double fast = Seconds([&] {
      llm::nn::GenerateCached(model, {1}, n, 1.0f, &r2);
    });
    t.AddRow({std::to_string(n), FormatFloat(slow, 3),
              FormatFloat(fast, 3), FormatFloat(slow / fast, 1) + "x"});
  }
  t.Print(std::cout);
  std::cout << "\nExpected shape (paper §6): recompute cost grows ~cubically\n"
               "with generated length (each step re-runs O(L^2) attention\n"
               "plus rebuilds the whole graph); the cached path pays O(L)\n"
               "attention per token, so the speedup widens with length.\n";

  // Session reuse: a fresh GptInferenceSession per request re-allocates
  // the KV slab every time; Reset() keeps the capacity, so a reused
  // session leaves the allocator alone in steady state (the same property
  // serve::KvCachePool gives the batched server).
  std::cout << "\n== Session reuse: fresh session vs Reset() ==\n\n";
  // Short requests make the per-request setup cost visible: each fresh
  // session allocates and zero-fills the full-window KV slab before the
  // first token.
  constexpr int kRequests = 512;
  llm::sample::GenerateOptions gopts;
  gopts.max_new_tokens = 1;
  std::vector<int64_t> fresh_out, reused_out;
  const double fresh_secs = Seconds([&] {
    for (int i = 0; i < kRequests; ++i) {
      llm::util::Rng r(11);
      fresh_out = llm::sample::GenerateCached(model, {1, 2, 3}, gopts, &r);
    }
  });
  llm::nn::GptInferenceSession session(&model);
  const double reused_secs = Seconds([&] {
    for (int i = 0; i < kRequests; ++i) {
      llm::util::Rng r(11);
      reused_out =
          llm::sample::GenerateWithSession(&session, {1, 2, 3}, gopts, &r);
    }
  });
  std::printf("%d short requests  fresh sessions: %.3fs   reused session: "
              "%.3fs   (%.2fx, outputs %s)\n",
              kRequests, fresh_secs, reused_secs, fresh_secs / reused_secs,
              fresh_out == reused_out ? "identical" : "MISMATCH (bug!)");
  if (fresh_out != reused_out) return 1;

  // Machine-readable summary: cached-vs-uncached throughput at the longest
  // generation length plus the session-reuse ratio.
  {
    const int64_t n = 240;
    llm::util::Rng r1(7), r2(7);
    const double slow = Seconds([&] {
      llm::sample::GenerateOptions opts;
      opts.max_new_tokens = n;
      llm::sample::Generate(model, {1}, opts, &r1);
    });
    const double fast = Seconds([&] {
      llm::nn::GenerateCached(model, {1}, n, 1.0f, &r2);
    });
    std::printf(
        "{\"bench\":\"inference_cache\",\"new_tokens\":%lld,"
        "\"tokens_per_sec\":%.1f,\"speedup_vs_uncached\":%.2f,"
        "\"session_reuse_speedup\":%.2f}\n",
        static_cast<long long>(n), static_cast<double>(n) / fast, slow / fast,
        fresh_secs / reused_secs);
  }
  return 0;
}
