// Experiment X15 — inference cost and the KV cache (paper §6: attention
// costs O(L^2) per forward pass, so naive generation is O(L^3) while a
// key/value cache makes it O(L^2) total). Wall-clock comparison of
// full-recompute generation vs the cached incremental session, plus an
// equivalence check (greedy outputs must match token for token).
#include <chrono>
#include <cstdio>
#include <iostream>

#include "nn/gpt_inference.h"
#include "sample/sampler.h"
#include "util/table.h"

namespace {
using llm::util::FormatFloat;
using llm::util::Table;

double Seconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}
}  // namespace

int main() {
  llm::util::Rng rng(3);
  llm::nn::GPTConfig cfg;
  cfg.vocab_size = 64;
  cfg.max_seq_len = 256;
  cfg.d_model = 64;
  cfg.n_layer = 2;
  cfg.n_head = 4;
  llm::nn::GPTModel model(cfg, &rng);
  std::printf("model: %lld params, window %lld\n\n",
              static_cast<long long>(model.NumParameters()),
              static_cast<long long>(cfg.max_seq_len));

  // Equivalence: greedy cached == greedy uncached.
  {
    llm::sample::GenerateOptions gopts;
    gopts.max_new_tokens = 48;
    gopts.sampler.temperature = 0.0f;
    llm::util::Rng r1(1), r2(1);
    auto slow = llm::sample::Generate(model, {1, 2, 3}, gopts, &r1);
    auto fast = llm::nn::GenerateCached(model, {1, 2, 3}, 48, 0.0f, &r2);
    std::printf("greedy equivalence over 48 tokens: %s\n\n",
                slow == fast ? "IDENTICAL" : "MISMATCH (bug!)");
    if (slow != fast) return 1;
  }

  std::cout << "== Generation wall-clock: full recompute vs KV cache ==\n\n";
  Table t({"new tokens", "recompute (s)", "cached (s)", "speedup"});
  for (int64_t n : {16, 32, 64, 128, 240}) {
    llm::util::Rng r1(7), r2(7);
    const double slow = Seconds([&] {
      llm::sample::GenerateOptions gopts;
      gopts.max_new_tokens = n;
      gopts.sampler.temperature = 1.0f;
      llm::sample::Generate(model, {1}, gopts, &r1);
    });
    const double fast = Seconds([&] {
      llm::nn::GenerateCached(model, {1}, n, 1.0f, &r2);
    });
    t.AddRow({std::to_string(n), FormatFloat(slow, 3),
              FormatFloat(fast, 3), FormatFloat(slow / fast, 1) + "x"});
  }
  t.Print(std::cout);
  std::cout << "\nExpected shape (paper §6): recompute cost grows ~cubically\n"
               "with generated length (each step re-runs O(L^2) attention\n"
               "plus rebuilds the whole graph); the cached path pays O(L)\n"
               "attention per token, so the speedup widens with length.\n";
  return 0;
}
