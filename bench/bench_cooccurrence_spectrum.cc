// Experiment X10 — the spectral structure behind §4's scaling-law
// theories (Maloney et al. [85]: "the spectral density of the data
// covariance falls off as a power law") and §5's PCA step: eigenvalue
// decay of the PPMI co-occurrence matrix of the PCFG corpus, and
// low-rank reconstruction error vs rank.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "data/pcfg_corpus.h"
#include "embed/cooccurrence.h"
#include "eval/power_law.h"
#include "util/table.h"

namespace {
using llm::util::FormatFloat;
using llm::util::Table;
}  // namespace

int main() {
  llm::util::Rng rng(3);
  llm::grammar::Grammar g = llm::data::ToyEnglishGrammar();
  llm::data::PcfgCorpusOptions copts;
  copts.num_sentences = 6000;
  auto corpus = llm::data::SamplePcfgCorpus(g, copts, &rng);
  std::vector<int64_t> stream =
      llm::data::FlattenToStream(corpus, g.num_terminals());
  const int64_t V = g.num_terminals() + 1;
  llm::embed::CooccurrenceMatrix cooc(V, /*window=*/4);
  cooc.Fit(stream);
  llm::core::Tensor ppmi = cooc.Ppmi();
  std::printf("corpus: %zu tokens, vocab %lld\n\n", stream.size(),
              static_cast<long long>(V));

  llm::embed::EigenResult eig = llm::embed::JacobiEigen(ppmi);
  // Rank by magnitude (JacobiEigen sorts by signed value).
  std::vector<double> mags;
  for (int64_t k = 0; k < V; ++k) {
    mags.push_back(std::fabs(eig.eigenvalues[k]));
  }
  std::sort(mags.rbegin(), mags.rend());

  std::cout << "== Eigenvalue spectrum of the PPMI co-occurrence matrix "
               "==\n\n";
  Table t({"rank index k", "|eigenvalue_k|"});
  std::vector<double> ks, vals;
  for (int64_t k = 0; k < V; ++k) {
    const double v = mags[static_cast<size_t>(k)];
    if (k < 12 || k % 8 == 0) {
      t.AddRow({std::to_string(k + 1), FormatFloat(v, 4)});
    }
    if (v > 1e-6 && k >= 1) {  // skip the top outlier for the tail fit
      ks.push_back(static_cast<double>(k + 1));
      vals.push_back(v);
    }
  }
  t.Print(std::cout);
  auto fit = llm::eval::FitPowerLaw(ks, vals);
  if (fit.ok()) {
    std::printf("\npower-law tail fit |lambda_k| ~ k^alpha: alpha = %.2f, "
                "R^2 = %.3f\n",
                fit->b, fit->r2);
  }

  // Low-rank reconstruction: fraction of spectral mass captured.
  std::cout << "\n== Low-rank reconstruction (the §5 PCA step) ==\n\n";
  double total_mass = 0;
  for (int64_t k = 0; k < V; ++k) {
    total_mass += eig.eigenvalues[k] * eig.eigenvalues[k];
  }
  Table rec({"rank r", "captured spectral mass"});
  for (int r : {1, 2, 4, 8, 16, 32}) {
    double mass = 0;
    for (int k = 0; k < r && k < static_cast<int>(mags.size()); ++k) {
      mass += mags[static_cast<size_t>(k)] * mags[static_cast<size_t>(k)];
    }
    rec.AddRow({std::to_string(r), FormatFloat(mass / total_mass, 3)});
  }
  rec.Print(std::cout);
  std::cout << "\nExpected shape (paper §4 / [85]): eigenvalues fall off\n"
               "roughly as a power law past the leading mode, so a small\n"
               "rank captures most of the structure — the premise of both\n"
               "the §5 embedding compression and the random-feature\n"
               "scaling-law derivation.\n";
  return 0;
}
