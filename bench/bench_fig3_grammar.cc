// Experiment F3 — Figure 3 and Appendix A of the paper: the arithmetic-
// expression grammar, parsing (including the y + 1 * x precedence
// exercise), PCFG sampling, sentence probabilities via the inside
// algorithm, grammar learning with Inside-Outside EM, and parser
// throughput.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "grammar/cnf.h"
#include "grammar/earley.h"
#include "util/table.h"

namespace {
using llm::grammar::ArithmeticGrammar;
using llm::grammar::EarleyParser;
using llm::grammar::Grammar;
using llm::util::FormatFloat;
using llm::util::Table;
}  // namespace

int main() {
  Grammar g = ArithmeticGrammar();
  EarleyParser parser(&g);

  // -------------------------------------------------------------------
  // The precedence exercise.
  // -------------------------------------------------------------------
  std::cout << "== Appendix A exercise: parse tree for \"y + 1 * x\" ==\n\n";
  auto ids = parser.TerminalIds("y + 1 * x");
  auto tree = parser.Parse(*ids);
  std::cout << g.TreeToString(**tree) << "\n\n";
  std::cout << "Multiplication takes precedence: \"1 * x\" forms a TERM\n"
               "nested inside the top-level EXPR -> TERM + EXPR.\n\n";

  // -------------------------------------------------------------------
  // Membership table for a few strings.
  // -------------------------------------------------------------------
  std::cout << "== Recognition ==\n\n";
  Table rec({"sentence", "grammatical"});
  for (const char* s :
       {"y + 1 * x", "( x )", "x * ( y + 1 )", "y + * x", "( y + x",
        "x y"}) {
    auto tids = parser.TerminalIds(s);
    rec.AddRow({s, tids.ok() && parser.Recognize(*tids) ? "yes" : "no"});
  }
  rec.Print(std::cout);

  // -------------------------------------------------------------------
  // PCFG sampling + inside probabilities.
  // -------------------------------------------------------------------
  std::cout << "\n== PCFG samples with exact probabilities ==\n\n";
  auto cnf = llm::grammar::ToCnf(g);
  llm::util::Rng rng(1);
  Table samples({"sample", "log P (tree)", "log P (sentence)"});
  for (int i = 0; i < 5; ++i) {
    auto t = g.SampleTree(&rng, 30);
    if (!t.ok()) continue;
    auto leaves = Grammar::TreeLeaves(**t);
    if (leaves.size() > 12) continue;
    samples.AddRow({g.TreeYield(**t), FormatFloat(g.TreeLogProb(**t), 3),
                    FormatFloat(llm::grammar::InsideLogProb(*cnf, leaves),
                                3)});
  }
  samples.Print(std::cout);
  std::cout << "\n(Sentence probability >= tree probability: the inside\n"
               "algorithm sums over all derivations.)\n\n";

  // -------------------------------------------------------------------
  // Grammar learning: Inside-Outside EM from a corrupted start point.
  // -------------------------------------------------------------------
  std::cout << "== Inside-Outside EM (learning rule probabilities) ==\n\n";
  std::vector<std::vector<int>> corpus;
  for (int i = 0; i < 300; ++i) {
    auto t = g.SampleTree(&rng, 40);
    if (!t.ok()) continue;
    auto leaves = Grammar::TreeLeaves(**t);
    if (leaves.size() <= 14) corpus.push_back(leaves);
  }
  // Corrupt: uniform probabilities over each lhs's rules.
  llm::grammar::CnfGrammar learned = *cnf;
  std::vector<double> mass(static_cast<size_t>(learned.num_nonterminals()),
                           0.0);
  for (const auto& r : learned.binary) ++mass[static_cast<size_t>(r.lhs)];
  for (const auto& r : learned.lexical) ++mass[static_cast<size_t>(r.lhs)];
  for (auto& r : learned.binary) {
    r.prob = 1.0 / mass[static_cast<size_t>(r.lhs)];
  }
  for (auto& r : learned.lexical) {
    r.prob = 1.0 / mass[static_cast<size_t>(r.lhs)];
  }
  llm::grammar::EmOptions em;
  em.iterations = 12;
  auto stats = llm::grammar::FitInsideOutside(&learned, corpus, em);
  Table emt({"iteration", "corpus log-likelihood"});
  for (size_t i = 0; i < stats->log_likelihood.size(); ++i) {
    if (i % 2 == 0 || i + 1 == stats->log_likelihood.size()) {
      emt.AddRow({std::to_string(i),
                  FormatFloat(stats->log_likelihood[i], 1)});
    }
  }
  emt.Print(std::cout);
  auto true_ce = llm::grammar::CorpusCrossEntropy(*cnf, corpus);
  auto learned_ce = llm::grammar::CorpusCrossEntropy(learned, corpus);
  std::printf("\ncross-entropy (nats/token): true grammar %.4f, "
              "EM-learned %.4f\n\n",
              *true_ce, *learned_ce);

  // -------------------------------------------------------------------
  // Parser throughput.
  // -------------------------------------------------------------------
  std::cout << "== Earley parser throughput ==\n\n";
  std::vector<std::vector<int>> bench_sents;
  int64_t total_tokens = 0;
  for (int i = 0; i < 200; ++i) {
    auto t = g.SampleTree(&rng, 40);
    if (!t.ok()) continue;
    auto leaves = Grammar::TreeLeaves(**t);
    if (leaves.size() > 20) continue;
    total_tokens += static_cast<int64_t>(leaves.size());
    bench_sents.push_back(std::move(leaves));
  }
  const auto start = std::chrono::steady_clock::now();
  int accepted = 0;
  for (const auto& s : bench_sents) {
    if (parser.Recognize(s)) ++accepted;
  }
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  std::printf("parsed %zu sentences (%lld tokens) in %.3fs: %.0f tokens/s; "
              "%d/%zu accepted (all sampled sentences must parse)\n",
              bench_sents.size(), static_cast<long long>(total_tokens),
              elapsed, static_cast<double>(total_tokens) / elapsed, accepted,
              bench_sents.size());
  return accepted == static_cast<int>(bench_sents.size()) ? 0 : 1;
}
