// Experiment X27 — replicated serving fleet (paper §6: production serving
// runs N model replicas behind a router; availability and tail latency
// come from failover, circuit breakers, hedged requests, and rolling
// weight rolls, not from any single server).
//
// Four stages over a ReplicaRouter fronting 2 independent replicas:
//
//  1. Clean throughput: aggregate tokens/sec and fleet p99 with no
//     faults and no hedging — the baseline the resilience features must
//     not regress.
//  2. Stragglers, unhedged: a seeded worker-stall plan (each stall wedges
//     one scheduler tick for ~30ms) is armed and the same workload rerun.
//     The p99 absorbs the stalls.
//  3. Stragglers, hedged: the identical stall plan (same seed) with
//     hedging on — a request whose only attempt outlives the hedge delay
//     gets a second, same-seeded attempt on the other replica; first
//     completion wins and the loser's output is checked bit-identical
//     against the winner (determinism contract). p99 must come back down
//     and hedge_mismatches must stay 0.
//  4. Rolling reload under live traffic: two submitter threads stream
//     requests while the fleet rolls a validated checkpoint across both
//     replicas, one at a time. Zero-downtime means zero failed requests.
//
// Emits one machine-readable `BENCH_FLEET` JSON line at the end.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "serve/fleet/replica_router.h"
#include "train/checkpoint.h"
#include "util/fault.h"

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// BPE-scale tied vocabulary over a narrow trunk: the wide unembedding
// dominates per-token cost as in real models, so fleet latencies are
// dominated by real decode work rather than scheduling overhead.
llm::nn::GPTConfig FleetConfig() {
  llm::nn::GPTConfig cfg;
  cfg.vocab_size = 8192;
  cfg.max_seq_len = 32;
  cfg.d_model = 128;
  cfg.n_layer = 2;
  cfg.n_head = 4;
  cfg.tie_embeddings = true;
  return cfg;
}

std::vector<llm::serve::GenerateRequest> MakeWorkload(int n, int64_t max_new) {
  std::vector<llm::serve::GenerateRequest> requests;
  for (int i = 0; i < n; ++i) {
    llm::serve::GenerateRequest request;
    request.prompt = {static_cast<int64_t>(1 + 37 * i),
                      static_cast<int64_t>(3 + 101 * i),
                      static_cast<int64_t>(7 + 13 * i)};
    request.max_new_tokens = max_new;
    request.seed = 9000 + static_cast<uint64_t>(i);
    request.sampler.temperature = 0.8f;
    requests.push_back(std::move(request));
  }
  return requests;
}

struct StageResult {
  double seconds = 0.0;
  uint64_t tokens = 0;
  double p99_ms = 0.0;
  llm::serve::FleetStats stats;
};

// Exact q-th percentile (sorted samples, linear interpolation between
// order statistics). The router's own p99_latency_ms comes from the
// bucketed obs histogram — ~19% resolution, too coarse to separate the
// hedged and unhedged tails, so the bench keeps its own exact view from
// the per-request total_ms it already collects.
double ExactPercentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = q * static_cast<double>(samples.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples.size() - 1);
  return samples[lo] +
         (samples[hi] - samples[lo]) * (rank - static_cast<double>(lo));
}

// Runs the workload through a fresh fleet, `wave` requests at a time
// (wave == workload size gives one deep-queue burst). Wave submission
// keeps the admission queue shallow so per-request latency measures
// decode time and injected stalls, not queue depth.
StageResult RunStage(const llm::nn::GPTModel& model,
                     const llm::serve::FleetOptions& options,
                     const std::vector<llm::serve::GenerateRequest>& workload,
                     size_t wave) {
  llm::serve::ReplicaRouter fleet(model, options);
  fleet.Start();
  StageResult out;
  std::vector<double> latencies_ms;
  const Clock::time_point start = Clock::now();
  for (size_t begin = 0; begin < workload.size(); begin += wave) {
    std::vector<llm::serve::RequestId> ids;
    for (size_t i = begin; i < std::min(begin + wave, workload.size()); ++i) {
      auto id = fleet.Submit(workload[i]);
      if (!id.ok()) {
        std::fprintf(stderr, "submit failed: %s\n",
                     id.status().ToString().c_str());
        continue;
      }
      ids.push_back(id.value());
    }
    for (llm::serve::RequestId id : ids) {
      auto result = fleet.Wait(id);
      if (result.ok() && result.value().status.ok()) {
        out.tokens += result.value().tokens.size();
        latencies_ms.push_back(result.value().total_ms);
      }
    }
  }
  out.seconds = SecondsSince(start);
  out.p99_ms = ExactPercentile(std::move(latencies_ms), 0.99);
  out.stats = fleet.Stats();
  fleet.Shutdown();
  return out;
}

}  // namespace

int main() {
  llm::util::Rng rng(7);
  const llm::nn::GPTConfig cfg = FleetConfig();
  llm::nn::GPTModel model(cfg, &rng);
  std::printf("fleet bench: %lld params per replica, 2 replicas\n\n",
              static_cast<long long>(model.NumParameters()));

  llm::serve::FleetOptions base;
  base.num_replicas = 2;
  base.server.max_batch_size = 4;
  base.server.queue_capacity = 64;
  base.server.num_workers = 1;
  auto& injector = llm::util::FaultInjector::Global();

  // Stage 1: clean throughput — one deep burst of 32 long requests, no
  // hedging. Latency here is queue depth by construction; only the
  // aggregate token rate is meaningful.
  const auto burst = MakeWorkload(32, 20);
  const StageResult clean = RunStage(model, base, burst, burst.size());
  const double tok_per_sec =
      static_cast<double>(clean.tokens) / clean.seconds;
  std::printf("throughput (32-deep burst): %5.0f tok/s\n", tok_per_sec);

  // Latency stages: 6 waves of 8 short requests, fleet capacity 8, so a
  // request's latency is its own decode time — a few ms — plus whatever
  // stalls wedge its scheduler. One injected stall (30ms) dwarfs clean
  // service time, which is exactly when hedging should rescue the tail.
  const auto waves = MakeWorkload(48, 6);
  const StageResult quiet = RunStage(model, base, waves, 8);
  std::printf("waves, clean:               p99 %6.1fms\n", quiet.p99_ms);

  // Stage 2: seeded straggler plan, hedging off. The p99 eats every
  // straggler in full.
  const uint64_t kStallSeed = 0xFEED5EEDull;
  const double kStallRate = 0.25;
  injector.ArmRandom(llm::util::FaultSite::kWorkerStall, kStallRate,
                     kStallSeed);
  const StageResult stalled = RunStage(model, base, waves, 8);
  injector.Disarm();
  std::printf("waves, stalls, unhedged:    p99 %6.1fms\n", stalled.p99_ms);

  // Stage 3: the identical stall plan, hedging on. The hedge threshold
  // sits above clean service time plus one stall, so only multi-stall
  // stragglers re-dispatch; the hedge samples the sibling's independent
  // stall draw and the min of the two trims the tail.
  llm::serve::FleetOptions hedged_options = base;
  hedged_options.hedge_delay = std::chrono::milliseconds(45);
  injector.ArmRandom(llm::util::FaultSite::kWorkerStall, kStallRate,
                     kStallSeed);
  const StageResult hedged = RunStage(model, hedged_options, waves, 8);
  injector.Disarm();
  const double hedge_rate =
      hedged.stats.submitted == 0
          ? 0.0
          : static_cast<double>(hedged.stats.hedges_launched) /
                static_cast<double>(hedged.stats.submitted);
  std::printf("waves, stalls, hedged:      p99 %6.1fms  (hedge rate %.2f, "
              "won %llu, mismatches %llu)\n",
              hedged.p99_ms, hedge_rate,
              static_cast<unsigned long long>(hedged.stats.hedges_won),
              static_cast<unsigned long long>(hedged.stats.hedge_mismatches));

  // Stage 4: rolling reload under live traffic. Zero-downtime = zero
  // failed requests while both replicas swap weights.
  namespace fs = std::filesystem;
  const std::string ckpt_dir =
      (fs::temp_directory_path() / "tfmr_bench_fleet").string();
  fs::remove_all(ckpt_dir);
  fs::create_directories(ckpt_dir);
  const std::string ckpt =
      ckpt_dir + "/" + llm::train::CheckpointFileName(0);
  if (!llm::train::SaveCheckpoint(model, ckpt).ok()) {
    std::fprintf(stderr, "checkpoint save failed\n");
    return 1;
  }
  llm::serve::FleetStats reload_stats;
  {
    llm::serve::ReplicaRouter fleet(model, base);
    fleet.Start();
    std::atomic<int> client_failures{0};
    auto submit_half = [&](int begin) {
      for (size_t i = static_cast<size_t>(begin); i < burst.size(); i += 2) {
        auto result = fleet.GenerateBlocking(burst[i]);
        if (!result.status.ok()) client_failures.fetch_add(1);
      }
    };
    std::thread a([&] { submit_half(0); });
    std::thread b([&] { submit_half(1); });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    const llm::util::Status rolled = fleet.ReloadModel(ckpt);
    a.join();
    b.join();
    const llm::util::Status drained =
        fleet.Drain(std::chrono::seconds(30));
    reload_stats = fleet.Stats();
    std::printf("rolling reload:   %s, failed %llu of %llu "
                "(client-visible failures %d), drain %s\n",
                rolled.ok() ? "ok" : rolled.ToString().c_str(),
                static_cast<unsigned long long>(reload_stats.failed),
                static_cast<unsigned long long>(reload_stats.submitted),
                client_failures.load(), drained.ok() ? "clean" : "timed out");
  }
  fs::remove_all(ckpt_dir);

  std::printf(
      "\nBENCH_FLEET {\"bench\":\"fleet\",\"replicas\":2,"
      "\"tokens_per_sec\":%.1f,\"p99_ms_clean\":%.2f,"
      "\"p99_ms_stalled_unhedged\":%.2f,\"p99_ms_stalled_hedged\":%.2f,"
      "\"hedge_rate\":%.3f,\"hedges_won\":%llu,\"hedge_mismatches\":%llu,"
      "\"reloads\":%llu,\"reload_failed_requests\":%llu}\n",
      tok_per_sec, quiet.p99_ms, stalled.p99_ms, hedged.p99_ms, hedge_rate,
      static_cast<unsigned long long>(hedged.stats.hedges_won),
      static_cast<unsigned long long>(hedged.stats.hedge_mismatches),
      static_cast<unsigned long long>(reload_stats.reloads),
      static_cast<unsigned long long>(reload_stats.failed));

  // Fleet counters from the final (reload) stage plus whatever the
  // registry's histograms accumulated across the whole bench.
  llm::serve::ExportFleetStats(reload_stats, "fleet",
                               &llm::obs::MetricsRegistry::Global());
  std::printf("METRICS %s\n",
              llm::obs::MetricsRegistry::Global().JsonSnapshot().c_str());
  return 0;
}
