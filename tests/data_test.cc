// Tests for the synthetic-world generators: modular arithmetic, induction
// sequences, PCFG corpora, the analogy corpus, word problems, and ICL
// regression episodes with their closed-form baselines.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/analogy.h"
#include "data/icl_regression.h"
#include "data/induction.h"
#include "data/modular.h"
#include "data/pcfg_corpus.h"
#include "data/fewshot.h"
#include "data/word_problems.h"

namespace llm::data {
namespace {

TEST(ModularTest, SplitCoversFullTable) {
  ModularDatasetOptions opts;
  opts.modulus = 13;
  opts.train_fraction = 0.6;
  ModularDataset ds(opts);
  EXPECT_EQ(ds.train().size() + ds.test().size(), 13u * 13u);
  EXPECT_NEAR(static_cast<double>(ds.train().size()), 0.6 * 169, 1.0);
  // Train and test are disjoint.
  std::set<std::pair<int64_t, int64_t>> seen;
  for (const auto& e : ds.train()) seen.insert({e.a, e.b});
  for (const auto& e : ds.test()) {
    EXPECT_FALSE(seen.count({e.a, e.b}));
  }
}

TEST(ModularTest, AnswersCorrectPerOp) {
  for (auto op : {ModularOp::kAdd, ModularOp::kSub, ModularOp::kMul}) {
    ModularDatasetOptions opts;
    opts.modulus = 7;
    opts.op = op;
    ModularDataset ds(opts);
    for (const auto& e : ds.train()) {
      int64_t expect = 0;
      if (op == ModularOp::kAdd) expect = (e.a + e.b) % 7;
      if (op == ModularOp::kSub) expect = ((e.a - e.b) % 7 + 7) % 7;
      if (op == ModularOp::kMul) expect = (e.a * e.b) % 7;
      EXPECT_EQ(e.c, expect);
    }
  }
}

TEST(ModularTest, EncodingLayout) {
  ModularDatasetOptions opts;
  opts.modulus = 5;
  ModularDataset ds(opts);
  std::vector<int64_t> in, tg;
  ds.EncodeExamples({{2, 3, 0}}, &in, &tg);
  EXPECT_EQ(in, (std::vector<int64_t>{2, 5, 3, 6}));  // a op b =
  EXPECT_EQ(tg, (std::vector<int64_t>{-1, -1, -1, 0}));
}

TEST(ModularTest, DeterministicSplitForSeed) {
  ModularDatasetOptions opts;
  opts.modulus = 11;
  ModularDataset a(opts), b(opts);
  ASSERT_EQ(a.train().size(), b.train().size());
  for (size_t i = 0; i < a.train().size(); ++i) {
    EXPECT_EQ(a.train()[i].a, b.train()[i].a);
    EXPECT_EQ(a.train()[i].b, b.train()[i].b);
  }
}

TEST(InductionTest, SequenceRepeatsPrefixCyclically) {
  InductionOptions opts;
  opts.vocab_size = 10;
  opts.seq_len = 16;
  util::Rng rng(1);
  std::vector<int64_t> in, tg, splits;
  SampleInductionBatch(opts, &rng, 4, &in, &tg, &splits);
  ASSERT_EQ(splits.size(), 4u);
  for (int64_t b = 0; b < 4; ++b) {
    const int64_t s = splits[static_cast<size_t>(b)];
    EXPECT_GE(s, 2);
    EXPECT_LE(s, 8);
    for (int64_t i = s; i < 16; ++i) {
      EXPECT_EQ(in[static_cast<size_t>(b * 16 + i)],
                in[static_cast<size_t>(b * 16 + i - s)]);
    }
  }
}

TEST(InductionTest, PrefixLengthsVary) {
  InductionOptions opts;
  opts.seq_len = 32;
  util::Rng rng(7);
  std::vector<int64_t> in, tg, splits;
  SampleInductionBatch(opts, &rng, 64, &in, &tg, &splits);
  std::set<int64_t> distinct(splits.begin(), splits.end());
  EXPECT_GE(distinct.size(), 3u);  // offsets vary, defeating positional hacks
}

TEST(InductionTest, TargetsMaskRandomPrefix) {
  InductionOptions opts;
  opts.seq_len = 12;
  util::Rng rng(2);
  std::vector<int64_t> in, tg, splits;
  SampleInductionBatch(opts, &rng, 1, &in, &tg, &splits);
  const int64_t s = splits[0];
  for (int64_t i = 0; i < s - 1; ++i) {
    EXPECT_EQ(tg[static_cast<size_t>(i)], -1);
  }
  for (int64_t i = s - 1; i < 11; ++i) {
    EXPECT_EQ(tg[static_cast<size_t>(i)], in[static_cast<size_t>(i + 1)]);
  }
  EXPECT_EQ(tg[11], -1);  // nothing to predict at the end
}

TEST(InductionTest, ScoreIsOneForPerfectInductionPattern) {
  // Hand-build attention that always looks at the induction target.
  const int64_t B = 1, H = 2, T = 8;
  std::vector<int64_t> splits = {4};
  std::vector<float> probs(static_cast<size_t>(B * H * T * T), 0.0f);
  for (int64_t h = 0; h < H; ++h) {
    for (int64_t i = 4; i < T; ++i) {
      const int64_t j = i - 4 + 1;
      probs[static_cast<size_t>(((0 * H + h) * T + i) * T + j)] = 1.0f;
    }
  }
  auto scores = InductionScores(splits, B, T, probs.data(), H);
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_NEAR(scores[0], 1.0, 1e-9);
  EXPECT_NEAR(scores[1], 1.0, 1e-9);
}

TEST(PcfgCorpusTest, RespectsLengthBounds) {
  grammar::Grammar g = ToyEnglishGrammar();
  PcfgCorpusOptions opts;
  opts.num_sentences = 100;
  opts.min_length = 3;
  opts.max_length = 10;
  util::Rng rng(3);
  auto samples = SamplePcfgCorpus(g, opts, &rng);
  ASSERT_EQ(samples.size(), 100u);
  for (const auto& s : samples) {
    EXPECT_GE(s.terminals.size(), 3u);
    EXPECT_LE(s.terminals.size(), 10u);
    ASSERT_TRUE(s.tree != nullptr);
    EXPECT_EQ(grammar::Grammar::TreeLeaves(*s.tree).size(),
              s.terminals.size());
  }
}

TEST(PcfgCorpusTest, StreamHasSeparators) {
  grammar::Grammar g = ToyEnglishGrammar();
  PcfgCorpusOptions opts;
  opts.num_sentences = 10;
  util::Rng rng(4);
  auto samples = SamplePcfgCorpus(g, opts, &rng);
  const int sep = g.num_terminals();
  auto stream = FlattenToStream(samples, sep);
  int64_t seps = 0;
  for (int64_t t : stream) {
    if (t == sep) ++seps;
  }
  EXPECT_EQ(seps, 10);
  EXPECT_EQ(stream.back(), sep);
}

TEST(AnalogyTest, QuadsAreValidWords) {
  AnalogyCorpus corpus;
  EXPECT_GE(corpus.quads().size(), 8u);
  for (const auto& q : corpus.quads()) {
    EXPECT_LT(q.a, corpus.vocab_size());
    EXPECT_LT(q.d, corpus.vocab_size());
  }
  EXPECT_EQ(corpus.QuadToString(corpus.quads()[0]),
            "man : king :: woman : queen");
}

TEST(AnalogyTest, GeneratesAllEntities) {
  AnalogyCorpus corpus;
  util::Rng rng(5);
  auto stream = corpus.Generate(2000, &rng);
  std::set<int64_t> seen(stream.begin(), stream.end());
  // All 12 entity words (ids 0..11 by construction) must appear.
  for (int64_t w = 0; w < 12; ++w) EXPECT_TRUE(seen.count(w)) << w;
}

TEST(WordProblemTest, PartialSumsAndAnswer) {
  WordProblemOptions opts;
  opts.modulus = 10;
  opts.terms = 3;
  WordProblemDataset ds(opts);
  util::Rng rng(6);
  for (int i = 0; i < 20; ++i) {
    auto p = ds.SampleProblem(&rng);
    int64_t sum = 0;
    for (int64_t t : p.terms) sum = (sum + t) % 10;
    EXPECT_EQ(p.answer, sum);
    EXPECT_EQ(p.partials.back(), p.answer);
    EXPECT_EQ(p.partials.size(), 2u);
  }
}

TEST(WordProblemTest, EncodingLengths) {
  for (bool cot : {false, true}) {
    WordProblemOptions opts;
    opts.modulus = 7;
    opts.terms = 4;
    opts.chain_of_thought = cot;
    WordProblemDataset ds(opts);
    util::Rng rng(7);
    auto seq = ds.Encode(ds.SampleProblem(&rng));
    EXPECT_EQ(static_cast<int64_t>(seq.size()), ds.seq_len());
    EXPECT_EQ(seq.back(), ds.end_token());
  }
}

TEST(WordProblemTest, PromptIsPrefixOfEncoding) {
  WordProblemOptions opts;
  opts.chain_of_thought = true;
  WordProblemDataset ds(opts);
  util::Rng rng(8);
  auto p = ds.SampleProblem(&rng);
  auto prompt = ds.EncodePrompt(p);
  auto full = ds.Encode(p);
  ASSERT_LT(prompt.size(), full.size());
  for (size_t i = 0; i < prompt.size(); ++i) {
    EXPECT_EQ(prompt[i], full[i]);
  }
  EXPECT_EQ(prompt.back(), ds.eq_token());
}

TEST(WordProblemTest, BatchMasksPrompt) {
  WordProblemOptions opts;
  opts.terms = 3;
  WordProblemDataset ds(opts);
  util::Rng rng(9);
  std::vector<int64_t> in, tg;
  ds.SampleBatch(&rng, 2, &in, &tg);
  const int64_t T = ds.seq_len();
  ASSERT_EQ(static_cast<int64_t>(in.size()), 2 * T);
  // Positions before the '=' transition carry no loss.
  for (int64_t i = 0; i + 1 < 2 * opts.terms - 1; ++i) {
    EXPECT_EQ(tg[static_cast<size_t>(i)], -1);
  }
  // The '=' position predicts the answer.
  EXPECT_NE(tg[static_cast<size_t>(2 * opts.terms - 1)], -1);
}

TEST(FewShotTest, TasksAreDistinctBijections) {
  FewShotTasks tasks(8, 6, 1);
  EXPECT_EQ(tasks.num_tasks(), 8);
  for (int t = 0; t < 8; ++t) {
    std::set<int64_t> image;
    for (int64_t i = 0; i < 6; ++i) image.insert(tasks.Apply(t, i));
    EXPECT_EQ(image.size(), 6u) << "task " << t << " not a bijection";
  }
  // Distinctness: some item maps differently between any two tasks.
  for (int a = 0; a < 8; ++a) {
    for (int b = a + 1; b < 8; ++b) {
      bool differ = false;
      for (int64_t i = 0; i < 6; ++i) {
        if (tasks.Apply(a, i) != tasks.Apply(b, i)) differ = true;
      }
      EXPECT_TRUE(differ) << a << " vs " << b;
    }
  }
}

TEST(FewShotTest, BatchConsistentWithLatentTask) {
  FewShotTasks tasks(4, 8, 2);
  util::Rng rng(3);
  std::vector<int64_t> in, tg;
  std::vector<int> latent;
  tasks.SampleBatch(&rng, 8, 5, &in, &tg, &latent);
  const int64_t T = 10;
  for (int64_t b = 0; b < 8; ++b) {
    for (int s = 0; s < 5; ++s) {
      const int64_t x = in[static_cast<size_t>(b * T + 2 * s)];
      const int64_t y = in[static_cast<size_t>(b * T + 2 * s + 1)];
      EXPECT_EQ(y, tasks.Apply(latent[static_cast<size_t>(b)], x));
      EXPECT_EQ(tg[static_cast<size_t>(b * T + 2 * s)], y);
      EXPECT_EQ(tg[static_cast<size_t>(b * T + 2 * s + 1)], -1);
    }
  }
}

TEST(IclTest, EpisodeIsLinear) {
  IclRegressionOptions opts;
  opts.dim = 3;
  util::Rng rng(10);
  auto ep = SampleIclEpisode(opts, 8, &rng);
  for (int i = 0; i < 8; ++i) {
    double y = 0;
    for (int j = 0; j < 3; ++j) {
      y += ep.w[static_cast<size_t>(j)] *
           ep.xs[static_cast<size_t>(i * 3 + j)];
    }
    EXPECT_NEAR(ep.ys[static_cast<size_t>(i)], y, 1e-4);
  }
}

TEST(IclTest, LeastSquaresExactWithEnoughContext) {
  IclRegressionOptions opts;
  opts.dim = 4;
  util::Rng rng(11);
  // 9 pairs: 8 context (> dim) + query: noiseless LS is exact.
  for (int trial = 0; trial < 10; ++trial) {
    auto ep = SampleIclEpisode(opts, 9, &rng);
    const double pred = LeastSquaresPredict(ep);
    EXPECT_NEAR(pred, ep.ys.back(), 1e-3);
  }
}

TEST(IclTest, RidgeShrinksTowardZero) {
  IclRegressionOptions opts;
  opts.dim = 4;
  util::Rng rng(12);
  auto ep = SampleIclEpisode(opts, 9, &rng);
  const double strong = RidgePredict(ep, 1e6);
  EXPECT_NEAR(strong, 0.0, 1e-2);
}

TEST(IclTest, UnderdeterminedStillPredicts) {
  IclRegressionOptions opts;
  opts.dim = 8;
  util::Rng rng(13);
  auto ep = SampleIclEpisode(opts, 3, &rng);  // 2 context pairs < dim
  const double pred = LeastSquaresPredict(ep);
  EXPECT_TRUE(std::isfinite(pred));
}

}  // namespace
}  // namespace llm::data
