// Forward-value and gradient-check tests for every differentiable op.
// Each analytic backward is compared against central-difference numerics.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "core/graph.h"
#include "core/ops.h"
#include "util/rng.h"

namespace llm::core {
namespace {

/// Checks d(f)/d(x) analytically vs numerically. `f` must rebuild the graph
/// (reading x's current value) on every call and return a scalar.
void ExpectGradMatches(const std::function<Variable()>& f, Variable x,
                       float tol = 3e-2f, float eps = 1e-2f) {
  x.ZeroGrad();
  Variable loss = f();
  Backward(loss);
  const Tensor analytic = x.grad();
  const Tensor numeric = NumericalGradient(f, x, eps);
  for (int64_t i = 0; i < analytic.numel(); ++i) {
    const float scale =
        std::max({1.0f, std::fabs(analytic[i]), std::fabs(numeric[i])});
    EXPECT_NEAR(analytic[i], numeric[i], tol * scale)
        << "component " << i;
  }
}

Variable RandomVar(Shape shape, uint64_t seed, float scale = 1.0f) {
  util::Rng rng(seed);
  return Variable(Tensor::RandomNormal(std::move(shape), &rng, 0.0f, scale),
                  /*requires_grad=*/true);
}

TEST(OpsForward, AddSubMul) {
  Variable a(Tensor::FromVector({2}, {1, 2}));
  Variable b(Tensor::FromVector({2}, {10, 20}));
  EXPECT_FLOAT_EQ(Add(a, b).value()[1], 22.0f);
  EXPECT_FLOAT_EQ(Sub(a, b).value()[0], -9.0f);
  EXPECT_FLOAT_EQ(Mul(a, b).value()[1], 40.0f);
  EXPECT_FLOAT_EQ(ScalarMul(a, -2.0f).value()[0], -2.0f);
  EXPECT_FLOAT_EQ(AddScalar(a, 5.0f).value()[0], 6.0f);
  EXPECT_FLOAT_EQ(Neg(a).value()[1], -2.0f);
}

TEST(OpsForward, MatMulValues) {
  Variable a(Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6}));
  Variable b(Tensor::FromVector({3, 2}, {7, 8, 9, 10, 11, 12}));
  Tensor c = MatMul(a, b).value();
  EXPECT_FLOAT_EQ(c.At({0, 0}), 58.0f);
  EXPECT_FLOAT_EQ(c.At({0, 1}), 64.0f);
  EXPECT_FLOAT_EQ(c.At({1, 0}), 139.0f);
  EXPECT_FLOAT_EQ(c.At({1, 1}), 154.0f);
}

TEST(OpsForward, TransposeValues) {
  Variable a(Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6}));
  Tensor t = Transpose2D(a).value();
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_FLOAT_EQ(t.At({2, 1}), 6.0f);
  EXPECT_FLOAT_EQ(t.At({0, 1}), 4.0f);
}

TEST(OpsForward, SoftmaxRowsSumToOne) {
  Variable x = RandomVar({4, 7}, 1);
  Tensor y = Softmax(x).value();
  for (int64_t r = 0; r < 4; ++r) {
    float sum = 0;
    for (int64_t c = 0; c < 7; ++c) sum += y.At({r, c});
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(OpsForward, SoftmaxInvariantToShift) {
  Variable x(Tensor::FromVector({1, 3}, {1, 2, 3}));
  Variable y(Tensor::FromVector({1, 3}, {101, 102, 103}));
  Tensor px = Softmax(x).value();
  Tensor py = Softmax(y).value();
  for (int64_t i = 0; i < 3; ++i) EXPECT_NEAR(px[i], py[i], 1e-5f);
}

TEST(OpsForward, CrossEntropyOfUniformIsLogV) {
  Variable logits(Tensor({5, 8}));  // all zeros -> uniform
  std::vector<int64_t> targets = {0, 1, 2, 3, 4};
  Variable loss = CrossEntropyLogits(logits, targets);
  EXPECT_NEAR(loss.value()[0], std::log(8.0f), 1e-5f);
}

TEST(OpsForward, CrossEntropyIgnoresMaskedRows) {
  util::Rng rng(2);
  Variable logits(Tensor::RandomNormal({4, 5}, &rng), true);
  std::vector<int64_t> all = {1, 2, 3, 4};
  std::vector<int64_t> masked = {1, -1, -1, 4};
  const float full = CrossEntropyLogits(logits, all).value()[0];
  const float partial = CrossEntropyLogits(logits, masked).value()[0];
  EXPECT_NE(full, partial);
  // Masked loss equals mean over the two unmasked rows.
  std::vector<int64_t> only1 = {1, -1, -1, -1};
  std::vector<int64_t> only4 = {-1, -1, -1, 4};
  const float l1 = CrossEntropyLogits(logits, only1).value()[0];
  const float l4 = CrossEntropyLogits(logits, only4).value()[0];
  EXPECT_NEAR(partial, 0.5f * (l1 + l4), 1e-5f);
}

TEST(OpsForward, EmbeddingPicksRows) {
  Variable w(Tensor::FromVector({3, 2}, {0, 1, 10, 11, 20, 21}));
  Tensor out = EmbeddingLookup(w, {2, 0, 2}).value();
  EXPECT_FLOAT_EQ(out.At({0, 1}), 21.0f);
  EXPECT_FLOAT_EQ(out.At({1, 0}), 0.0f);
  EXPECT_FLOAT_EQ(out.At({2, 0}), 20.0f);
}

TEST(OpsForward, LayerNormNormalizes) {
  Variable x = RandomVar({3, 16}, 5, 2.0f);
  Variable gamma(Tensor::Ones({16}));
  Variable beta(Tensor({16}));
  Tensor y = LayerNorm(x, gamma, beta).value();
  for (int64_t r = 0; r < 3; ++r) {
    double mean = 0, var = 0;
    for (int64_t c = 0; c < 16; ++c) mean += y.At({r, c});
    mean /= 16;
    for (int64_t c = 0; c < 16; ++c) {
      var += (y.At({r, c}) - mean) * (y.At({r, c}) - mean);
    }
    var /= 16;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(OpsForward, SliceAndConcatInverse) {
  Variable x = RandomVar({2, 6}, 6);
  Variable left = SliceLastDim(x, 0, 2);
  Variable right = SliceLastDim(x, 2, 4);
  Tensor rejoined = ConcatLastDim({left, right}).value();
  EXPECT_FLOAT_EQ(Tensor::MaxAbsDiff(rejoined, x.value()), 0.0f);
}

TEST(OpsForward, StackTimeLayout) {
  Variable t0(Tensor::FromVector({2, 2}, {1, 2, 3, 4}));
  Variable t1(Tensor::FromVector({2, 2}, {5, 6, 7, 8}));
  Tensor s = StackTime({t0, t1}).value();  // [B=2, T=2, C=2]
  EXPECT_FLOAT_EQ(s.At({0, 0, 0}), 1.0f);
  EXPECT_FLOAT_EQ(s.At({0, 1, 0}), 5.0f);
  EXPECT_FLOAT_EQ(s.At({1, 1, 1}), 8.0f);
}

TEST(OpsForward, GatherRowsSelects) {
  Variable x(Tensor::FromVector({3, 2}, {0, 1, 10, 11, 20, 21}));
  Tensor g = GatherRows(x, {1, 1, 0}).value();
  EXPECT_FLOAT_EQ(g.At({0, 0}), 10.0f);
  EXPECT_FLOAT_EQ(g.At({2, 1}), 1.0f);
}

TEST(OpsForward, DropoutTrainingMasksAndScales) {
  util::Rng rng(7);
  Variable x(Tensor::Ones({1000}), true);
  Variable y = Dropout(x, 0.25f, &rng, /*training=*/true);
  int64_t zeros = 0;
  for (int64_t i = 0; i < 1000; ++i) {
    if (y.value()[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(y.value()[i], 1.0f / 0.75f, 1e-5f);
    }
  }
  EXPECT_NEAR(zeros, 250, 60);
}

TEST(OpsForward, DropoutEvalIsIdentity) {
  util::Rng rng(7);
  Variable x = RandomVar({10}, 8);
  Variable y = Dropout(x, 0.5f, &rng, /*training=*/false);
  EXPECT_EQ(y.node().get(), x.node().get());
}

// ---------------------------------------------------------------------------
// Gradient checks.
// ---------------------------------------------------------------------------

TEST(OpsGrad, AddSubMulChain) {
  Variable a = RandomVar({2, 3}, 10);
  Variable b = RandomVar({2, 3}, 11);
  auto f = [&] { return SumAll(Mul(Add(a, b), Sub(a, b))); };
  ExpectGradMatches(f, a);
  ExpectGradMatches(f, b);
}

TEST(OpsGrad, ScalarOps) {
  Variable a = RandomVar({4}, 12);
  auto f = [&] { return MeanAll(AddScalar(ScalarMul(a, 1.7f), 0.3f)); };
  ExpectGradMatches(f, a);
}

TEST(OpsGrad, MatMulBothSides) {
  Variable a = RandomVar({3, 4}, 13, 0.5f);
  Variable b = RandomVar({4, 2}, 14, 0.5f);
  auto f = [&] { return SumAll(Mul(MatMul(a, b), MatMul(a, b))); };
  ExpectGradMatches(f, a);
  ExpectGradMatches(f, b);
}

TEST(OpsGrad, Transpose) {
  Variable a = RandomVar({2, 5}, 15);
  auto f = [&] { return SumAll(Mul(Transpose2D(a), Transpose2D(a))); };
  ExpectGradMatches(f, a);
}

TEST(OpsGrad, AddRowBroadcast) {
  Variable x = RandomVar({3, 4}, 16);
  Variable bias = RandomVar({4}, 17);
  auto f = [&] {
    Variable y = AddRowBroadcast(x, bias);
    return SumAll(Mul(y, y));
  };
  ExpectGradMatches(f, x);
  ExpectGradMatches(f, bias);
}

TEST(OpsGrad, Activations) {
  // Values away from the ReLU kink for clean numerics.
  Variable x(Tensor::FromVector({6}, {-2.0f, -0.7f, -0.2f, 0.3f, 0.9f, 1.8f}),
             true);
  ExpectGradMatches([&] { return SumAll(Relu(x)); }, x);
  ExpectGradMatches([&] { return SumAll(Gelu(x)); }, x);
  ExpectGradMatches([&] { return SumAll(Mul(TanhOp(x), TanhOp(x))); }, x);
  ExpectGradMatches([&] { return SumAll(SigmoidOp(x)); }, x);
}

TEST(OpsGrad, ReshapeSliceConcat) {
  Variable x = RandomVar({2, 6}, 18);
  auto f = [&] {
    Variable r = Reshape(x, {3, 4});
    Variable s = SliceLastDim(r, 1, 2);
    Variable c = ConcatLastDim({s, s});
    return SumAll(Mul(c, c));
  };
  ExpectGradMatches(f, x);
}

TEST(OpsGrad, StackTime) {
  Variable a = RandomVar({2, 3}, 19);
  Variable b = RandomVar({2, 3}, 20);
  auto f = [&] {
    Variable s = StackTime({a, b, a});
    return SumAll(Mul(s, s));
  };
  ExpectGradMatches(f, a);
  ExpectGradMatches(f, b);
}

TEST(OpsGrad, GatherRowsWithRepeats) {
  Variable x = RandomVar({4, 3}, 21);
  auto f = [&] {
    Variable g = GatherRows(x, {0, 2, 2, 3});
    return SumAll(Mul(g, g));
  };
  ExpectGradMatches(f, x);
}

TEST(OpsGrad, Softmax) {
  Variable x = RandomVar({3, 5}, 22);
  Variable weights = RandomVar({3, 5}, 23);
  auto f = [&] { return SumAll(Mul(Softmax(x), weights)); };
  ExpectGradMatches(f, x);
}

TEST(OpsGrad, CrossEntropy) {
  Variable logits = RandomVar({4, 6}, 24);
  std::vector<int64_t> targets = {1, 5, 0, 3};
  auto f = [&] { return CrossEntropyLogits(logits, targets); };
  ExpectGradMatches(f, logits);
}

TEST(OpsGrad, CrossEntropyWithIgnore) {
  Variable logits = RandomVar({4, 6}, 25);
  std::vector<int64_t> targets = {1, -1, 0, -1};
  auto f = [&] { return CrossEntropyLogits(logits, targets); };
  ExpectGradMatches(f, logits);
}

TEST(OpsGrad, MseLoss) {
  Variable pred = RandomVar({3, 2}, 26);
  util::Rng rng(27);
  Tensor target = Tensor::RandomNormal({3, 2}, &rng);
  auto f = [&] { return MseLoss(pred, target); };
  ExpectGradMatches(f, pred);
}

TEST(OpsGrad, Embedding) {
  Variable w = RandomVar({5, 3}, 28);
  std::vector<int64_t> ids = {0, 4, 4, 2};
  auto f = [&] {
    Variable e = EmbeddingLookup(w, ids);
    return SumAll(Mul(e, e));
  };
  ExpectGradMatches(f, w);
}

TEST(OpsGrad, LayerNormAllInputs) {
  Variable x = RandomVar({2, 8}, 29);
  Variable gamma = RandomVar({8}, 30, 0.5f);
  Variable beta = RandomVar({8}, 31, 0.5f);
  Variable weights = RandomVar({2, 8}, 32);
  auto f = [&] { return SumAll(Mul(LayerNorm(x, gamma, beta), weights)); };
  ExpectGradMatches(f, x, 4e-2f);
  ExpectGradMatches(f, gamma);
  ExpectGradMatches(f, beta);
}

TEST(OpsGrad, SharedNodeAccumulates) {
  // y = x*x + x: gradient must accumulate from both paths (2x + 1).
  Variable x(Tensor::FromVector({2}, {3.0f, -1.0f}), true);
  Variable loss = SumAll(Add(Mul(x, x), x));
  Backward(loss);
  EXPECT_NEAR(x.grad()[0], 7.0f, 1e-4f);
  EXPECT_NEAR(x.grad()[1], -1.0f, 1e-4f);
}

TEST(GraphTest, BackwardRequiresScalar) {
  Variable x = RandomVar({2, 2}, 33);
  EXPECT_DEATH(Backward(Add(x, x)), "scalar");
}

TEST(GraphTest, NoGradForFrozenLeaves) {
  Variable frozen(Tensor::Ones({3}), /*requires_grad=*/false);
  Variable live(Tensor::Ones({3}), /*requires_grad=*/true);
  Variable loss = SumAll(Mul(frozen, live));
  Backward(loss);
  EXPECT_FALSE(frozen.has_grad());
  EXPECT_TRUE(live.has_grad());
}

TEST(GraphTest, ZeroGradClears) {
  Variable x(Tensor::Ones({2}), true);
  Backward(SumAll(x));
  EXPECT_FLOAT_EQ(x.grad()[0], 1.0f);
  x.ZeroGrad();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
}

}  // namespace
}  // namespace llm::core
