// Tests for per-request tracing (src/obs/trace.h) and its integration
// with the serving stack: span-tree unit behavior, the span structure a
// single-server traced request produces, and — the satellite case — span
// parenting across a fleet failover re-dispatch (attempt 1 on the
// poisoned replica, attempt 2 on its healthy sibling, one streamed
// prefix for the client). Registered under the `obs` ctest label.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "sample/sampler.h"
#include "serve/fleet/replica_router.h"
#include "serve/inference_server.h"
#include "util/fault.h"
#include "util/rng.h"

namespace llm::serve {
namespace {

nn::GPTConfig SmallConfig() {
  nn::GPTConfig cfg;
  cfg.vocab_size = 19;
  cfg.max_seq_len = 16;
  cfg.d_model = 24;
  cfg.n_layer = 2;
  cfg.n_head = 3;
  return cfg;
}

GenerateRequest MakeRequest(std::vector<int64_t> prompt, uint64_t seed,
                            int64_t max_new = 8) {
  GenerateRequest request;
  request.prompt = std::move(prompt);
  request.seed = seed;
  request.max_new_tokens = max_new;
  request.sampler.temperature = 0.8f;
  request.sampler.top_k = 7;
  return request;
}

std::vector<int64_t> SingleStreamReference(const nn::GPTModel& model,
                                           const GenerateRequest& request) {
  sample::GenerateOptions opts;
  opts.max_new_tokens = request.max_new_tokens;
  opts.sampler = request.sampler;
  opts.stop_token = request.stop_token;
  util::Rng rng(request.seed);
  return sample::GenerateCached(model, request.prompt, opts, &rng);
}

FleetOptions SmallFleet(int replicas = 2) {
  FleetOptions options;
  options.num_replicas = replicas;
  options.server.max_batch_size = 4;
  options.server.queue_capacity = 32;
  options.server.num_workers = 0;
  return options;
}

std::vector<obs::TraceSpan> SpansNamed(
    const std::vector<obs::TraceSpan>& spans, const std::string& name) {
  std::vector<obs::TraceSpan> out;
  for (const obs::TraceSpan& s : spans) {
    if (s.name == name) out.push_back(s);
  }
  return out;
}

class TraceTest : public ::testing::Test {
 protected:
  void TearDown() override { util::FaultInjector::Global().Disarm(); }
};

// --- Trace span tree unit behavior -----------------------------------------

TEST_F(TraceTest, RootSpanOpenAtConstruction) {
  obs::Trace trace(42);
  EXPECT_EQ(trace.trace_id(), 42u);
  const auto spans = trace.Spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].id, obs::Trace::kRootSpan);
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[0].name, "request");
  EXPECT_GT(spans[0].start_ns, 0);
  EXPECT_EQ(spans[0].end_ns, 0);  // still open
}

TEST_F(TraceTest, BeginEndRecordsParentDetailAndNote) {
  obs::Trace trace(1);
  const int32_t queue = trace.BeginSpan("queue", obs::Trace::kRootSpan, 7);
  const int32_t decode = trace.BeginSpan("decode", obs::Trace::kRootSpan, 3);
  const int32_t step = trace.BeginSpan("step", decode);
  trace.EndSpan(step);
  trace.EndSpan(queue, "admitted");
  trace.EndSpan(decode, "completed");
  trace.EndSpan(obs::Trace::kRootSpan);

  const auto spans = trace.Spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[queue].parent, obs::Trace::kRootSpan);
  EXPECT_EQ(spans[queue].detail, 7);
  EXPECT_EQ(spans[queue].note, "admitted");
  EXPECT_EQ(spans[step].parent, decode);
  for (const auto& s : spans) {
    EXPECT_GT(s.end_ns, 0) << s.name;
    EXPECT_GE(s.end_ns, s.start_ns) << s.name;
  }
}

TEST_F(TraceTest, EndSpanIsIdempotentFirstEndWins) {
  obs::Trace trace(1);
  const int32_t span = trace.BeginSpan("decode");
  trace.EndSpan(span);
  const int64_t first_end = trace.Spans()[span].end_ns;
  trace.EndSpan(span, "late note");
  const auto spans = trace.Spans();
  EXPECT_EQ(spans[span].end_ns, first_end);
  // A non-empty note still lands even if it arrives after the end.
  EXPECT_EQ(spans[span].note, "late note");
  trace.EndSpan(span, "third");
  EXPECT_EQ(trace.Spans()[span].note, "late note");
}

TEST_F(TraceTest, EventIsInstantAndClosed) {
  obs::Trace trace(1);
  const int32_t ev = trace.Event("failover", obs::Trace::kRootSpan, 2, "why");
  const auto spans = trace.Spans();
  EXPECT_EQ(spans[ev].name, "failover");
  EXPECT_EQ(spans[ev].detail, 2);
  EXPECT_EQ(spans[ev].note, "why");
  EXPECT_GT(spans[ev].end_ns, 0);
}

TEST_F(TraceTest, CapsAtMaxSpansAndCountsDropped) {
  obs::Trace trace(1);
  std::vector<int32_t> ids;
  for (size_t i = 1; i < obs::Trace::kMaxSpans; ++i) {
    ids.push_back(trace.BeginSpan("s"));
  }
  EXPECT_EQ(trace.Spans().size(), obs::Trace::kMaxSpans);
  EXPECT_EQ(trace.dropped(), 0u);
  EXPECT_EQ(trace.BeginSpan("overflow"), -1);
  EXPECT_EQ(trace.Event("overflow-event"), -1);
  EXPECT_EQ(trace.dropped(), 2u);
  trace.EndSpan(-1, "no-op");  // must not crash or record
  EXPECT_EQ(trace.Spans().size(), obs::Trace::kMaxSpans);
}

TEST_F(TraceTest, FormatSpansIndentsChildrenUnderParents) {
  obs::Trace trace(99);
  const int32_t attempt = trace.BeginSpan("attempt", obs::Trace::kRootSpan, 1);
  const int32_t decode = trace.BeginSpan("decode", attempt);
  trace.EndSpan(decode, "completed");
  trace.EndSpan(attempt, "won");
  trace.EndSpan(obs::Trace::kRootSpan);
  const std::string text = obs::FormatTrace(trace);
  EXPECT_NE(text.find("request"), std::string::npos) << text;
  EXPECT_NE(text.find("attempt"), std::string::npos) << text;
  EXPECT_NE(text.find("won"), std::string::npos) << text;
  // The child is printed after (and indented under) its parent.
  EXPECT_LT(text.find("attempt"), text.find("decode")) << text;
}

// --- Single-server traced request ------------------------------------------

TEST_F(TraceTest, ServerTracedRequestHasQueueDecodeAndStepSpans) {
  util::Rng rng(7);
  nn::GPTModel model(SmallConfig(), &rng);
  ServerOptions options;
  options.num_workers = 0;
  InferenceServer server(&model, options);
  server.Start();

  GenerateRequest request = MakeRequest({5, 2}, 77, 6);
  request.trace = true;
  std::vector<int64_t> streamed;
  std::mutex streamed_mu;
  request.on_token = [&](RequestId, int64_t token) {
    std::lock_guard<std::mutex> lock(streamed_mu);
    streamed.push_back(token);
  };
  const RequestResult result = server.GenerateBlocking(request);
  ASSERT_TRUE(result.status.ok()) << result.status;
  ASSERT_NE(result.trace, nullptr);

  const auto spans = result.trace->Spans();
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(spans[0].name, "request");
  EXPECT_GT(spans[0].end_ns, 0) << "root span must be closed by Wait time";

  const auto queue = SpansNamed(spans, "queue");
  ASSERT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue[0].parent, obs::Trace::kRootSpan);
  EXPECT_EQ(queue[0].note, "admitted");
  EXPECT_GT(queue[0].end_ns, 0);

  const auto decode = SpansNamed(spans, "decode");
  ASSERT_EQ(decode.size(), 1u);
  EXPECT_EQ(decode[0].parent, obs::Trace::kRootSpan);
  EXPECT_EQ(decode[0].note, FinishReasonName(result.reason));
  EXPECT_GT(decode[0].end_ns, 0);

  // One "step" event per sampled token and one "stream" event per token
  // delivered to the callback, all under the decode span.
  const auto steps = SpansNamed(spans, "step");
  EXPECT_EQ(steps.size(), result.tokens.size());
  const auto streams = SpansNamed(spans, "stream");
  EXPECT_EQ(streams.size(), streamed.size());
  for (const auto& s : steps) EXPECT_EQ(s.parent, decode[0].id);
  for (const auto& s : streams) EXPECT_EQ(s.parent, decode[0].id);
  // Step events carry the sampled token as their detail, in order.
  for (size_t i = 0; i < steps.size(); ++i) {
    EXPECT_EQ(steps[i].detail, result.tokens[i]);
  }
  EXPECT_EQ(streamed, result.tokens);
  EXPECT_EQ(SpansNamed(spans, "finish").size(), 1u);
  EXPECT_EQ(result.trace->dropped(), 0u);
}

TEST_F(TraceTest, UntracedRequestCarriesNoTrace) {
  util::Rng rng(7);
  nn::GPTModel model(SmallConfig(), &rng);
  InferenceServer server(&model, ServerOptions{});
  server.Start();
  const RequestResult result = server.GenerateBlocking(MakeRequest({3}, 5, 4));
  ASSERT_TRUE(result.status.ok()) << result.status;
  EXPECT_EQ(result.trace, nullptr);
}

// --- Fleet failover parenting (satellite) ----------------------------------

// One traced request through a two-replica fleet whose first replica
// poisons every batch: the trace must show attempt 1 on the poisoned
// replica (annotated lost), attempt 2 on the sibling (annotated won),
// each attempt parenting its own queue/decode subtree — and the client
// must see exactly one streamed prefix despite the re-dispatch.
TEST_F(TraceTest, FleetFailoverParentsAttemptsUnderOneRoot) {
  util::Rng rng(7);
  nn::GPTModel model(SmallConfig(), &rng);
  FleetOptions options = SmallFleet(2);
  options.breaker.cooldown = std::chrono::milliseconds(60000);
  ReplicaRouter router(model, options);
  router.Start();
  router.PoisonReplica(0, true);
  obs::FlightRecorder::Global().Clear();

  GenerateRequest request = MakeRequest({6, 3, 2}, 42, 8);
  request.trace = true;
  std::vector<int64_t> streamed;
  std::mutex streamed_mu;
  request.on_token = [&](RequestId, int64_t token) {
    std::lock_guard<std::mutex> lock(streamed_mu);
    streamed.push_back(token);
  };
  const RequestResult result = router.GenerateBlocking(request);
  ASSERT_TRUE(result.status.ok()) << result.status;
  EXPECT_EQ(result.tokens, SingleStreamReference(model, request));
  EXPECT_GE(router.Stats().failovers, 1u);
  ASSERT_NE(result.trace, nullptr);

  const auto spans = result.trace->Spans();
  EXPECT_EQ(spans[0].name, "request");
  EXPECT_GT(spans[0].end_ns, 0);

  // Attempts: at least one lost on the poisoned replica, exactly one won
  // on a different replica, all direct children of the root span.
  const auto attempts = SpansNamed(spans, "attempt");
  ASSERT_GE(attempts.size(), 2u);
  std::vector<obs::TraceSpan> lost, won;
  for (const auto& a : attempts) {
    EXPECT_EQ(a.parent, obs::Trace::kRootSpan);
    EXPECT_GT(a.end_ns, 0) << "every attempt span must be closed";
    if (a.note == "won") won.push_back(a);
    if (a.note.rfind("lost:", 0) == 0) lost.push_back(a);
  }
  ASSERT_EQ(won.size(), 1u);
  ASSERT_GE(lost.size(), 1u);
  EXPECT_NE(won[0].detail, lost[0].detail)
      << "failover must re-dispatch to a different replica";

  // Each attempt parents its own server-side subtree: the winning
  // attempt has exactly one queue and one decode span under it.
  const auto queues = SpansNamed(spans, "queue");
  const auto decodes = SpansNamed(spans, "decode");
  auto under = [](const std::vector<obs::TraceSpan>& v, int32_t parent) {
    return std::count_if(v.begin(), v.end(), [parent](const auto& s) {
      return s.parent == parent;
    });
  };
  EXPECT_EQ(under(queues, won[0].id), 1);
  EXPECT_EQ(under(decodes, won[0].id), 1);
  EXPECT_GE(under(queues, lost[0].id) + under(decodes, lost[0].id), 1)
      << "the lost attempt should have recorded at least its queue span";
  // No server-side span escapes its attempt to hang off the root.
  for (const auto& s : queues) EXPECT_NE(s.parent, obs::Trace::kRootSpan);
  for (const auto& s : decodes) EXPECT_NE(s.parent, obs::Trace::kRootSpan);

  // A failover event annotated with the attempt it follows.
  const auto failovers = SpansNamed(spans, "failover");
  ASSERT_GE(failovers.size(), 1u);

  // One streamed prefix: the client saw each token exactly once even
  // though two attempts generated (part of) the sequence.
  EXPECT_EQ(streamed, result.tokens);

  // The flight recorder saw the same story: a dispatch and a failover
  // for this fleet request.
  bool saw_dispatch = false, saw_failover = false;
  for (const auto& e : obs::FlightRecorder::Global().Dump()) {
    if (e.type == obs::FlightEventType::kDispatch) saw_dispatch = true;
    if (e.type == obs::FlightEventType::kFailover) saw_failover = true;
  }
  EXPECT_TRUE(saw_dispatch);
  EXPECT_TRUE(saw_failover);

  router.Shutdown();
}

}  // namespace
}  // namespace llm::serve
