// Randomized fault-schedule harness for the data-parallel training
// runtime: seeded storms of worker kills, dropped and corrupted collective
// contributions, and stragglers, injected into full DistTrainer runs.
//
// The contract under test is total: every schedule must COMPLETE (the
// recovery machinery never wedges or gives up under a realistic fault
// rate), and because checkpoint replay is bit-exact — step-indexed
// batches, deterministic rank-ordered collectives, moments restored from
// the same v2 checkpoint — every faulted run must finish with weights and
// loss curve IDENTICAL to the unfaulted run of the same configuration.
// Faults may cost epochs; they may never cost correctness.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "nn/layers.h"
#include "obs/flight_recorder.h"
#include "obs/telemetry.h"
#include "train/checkpoint.h"
#include "train/dist/dist_trainer.h"
#include "train/dist/proc_group.h"
#include "train/dist/toy_task.h"
#include "util/fault.h"
#include "util/rng.h"

namespace llm::train::dist {
namespace {

namespace fs = std::filesystem;
using util::FaultInjector;
using util::FaultSite;
using std::chrono::milliseconds;

class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_((fs::temp_directory_path() / name).string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

constexpr int kIn = 4, kHidden = 8, kOut = 2;
constexpr int kGlobalBatch = 6;  // divisible by both world sizes below
constexpr uint64_t kDataSeed = 0xC4405ull;
constexpr int64_t kSteps = 10;

std::unique_ptr<nn::Module> MakeReplica() {
  util::Rng rng(17);
  return std::make_unique<nn::Mlp>(kIn, kHidden, kOut, &rng);
}

DistLossFn MakeDistLoss() {
  return [](nn::Module& model, const StepContext& ctx) {
    util::Rng rng(kDataSeed + 0x9E3779B97F4A7C15ull *
                                  (static_cast<uint64_t>(ctx.step) + 1));
    core::Tensor full =
        core::Tensor::RandomNormal({kGlobalBatch, kIn}, &rng);
    const int rows = kGlobalBatch / ctx.world_size;
    core::Tensor shard({rows, kIn});
    for (int i = 0; i < rows; ++i) {
      for (int j = 0; j < kIn; ++j) {
        shard[i * kIn + j] = full[(ctx.rank * rows + i) * kIn + j];
      }
    }
    core::Variable x(shard, false);
    core::Variable y = static_cast<nn::Mlp&>(model).Forward(x);
    return core::SumAll(core::Mul(y, y));
  };
}

DistTrainerOptions ChaosOptions(int world, const std::string& dir) {
  DistTrainerOptions o;
  o.world_size = world;
  o.max_steps = kSteps;
  o.adamw.lr = 1e-2f;
  o.checkpoint_dir = dir;
  o.checkpoint_every = 2;
  o.keep_last_k = 2;
  // Tight timeouts keep a drop/straggle incident cheap (~250ms), so a
  // storm of them stays inside the test budget.
  o.collective_timeout = milliseconds(250);
  o.heartbeat_timeout = milliseconds(3000);
  o.monitor_poll = milliseconds(2);
  // Recovery replays at most kSteps cheap steps, so a generous budget is
  // bounded wall-clock; schedules average only a handful of incidents.
  o.max_recoveries = 40;
  return o;
}

float MaxParamDiff(const nn::Module& a, const nn::Module& b) {
  auto pa = a.NamedParameters();
  auto pb = b.NamedParameters();
  EXPECT_EQ(pa.size(), pb.size());
  float worst = 0.0f;
  for (size_t i = 0; i < pa.size(); ++i) {
    worst = std::max(worst, core::Tensor::MaxAbsDiff(pa[i].second.value(),
                                                     pb[i].second.value()));
  }
  return worst;
}

TEST(DistChaosTest, SeededFaultStormsAlwaysRecoverToTheExactResult) {
  constexpr int kSchedules = 26;
  const int worlds[] = {2, 3};

  // Unfaulted reference run per world size: the ground truth every
  // faulted schedule must reproduce exactly.
  std::map<int, std::unique_ptr<DistTrainer>> reference;
  std::vector<std::unique_ptr<ScratchDir>> ref_dirs;
  for (int world : worlds) {
    ref_dirs.push_back(std::make_unique<ScratchDir>(
        "tfmr_chaos_ref_w" + std::to_string(world)));
    reference[world] = std::make_unique<DistTrainer>(
        ChaosOptions(world, ref_dirs.back()->path()), MakeReplica,
        MakeDistLoss());
    ASSERT_TRUE(reference[world]->Run().ok());
    ASSERT_EQ(reference[world]->history().size(),
              static_cast<size_t>(kSteps));
  }

  int total_recoveries = 0;
  int64_t total_kills = 0, total_drops = 0, total_corrupt = 0,
          total_straggles = 0;
  for (int schedule = 0; schedule < kSchedules; ++schedule) {
    SCOPED_TRACE("schedule " + std::to_string(schedule));
    const int world = worlds[schedule % 2];
    ScratchDir dir("tfmr_chaos_s" + std::to_string(schedule));
    DistTrainerOptions opts = ChaosOptions(world, dir.path());
    // A third of the schedules use a straggle that exceeds the collective
    // timeout (a de-facto stall); the rest a benign slowdown.
    opts.straggle_ms = (schedule % 3 == 0) ? 400 : 30;

    const uint64_t seed = 0xC0FFEEull + static_cast<uint64_t>(schedule);
    FaultInjector::Global().ArmRandom(FaultSite::kWorkerKill, 0.015,
                                      seed * 4 + 0);
    FaultInjector::Global().ArmRandom(FaultSite::kCommDrop, 0.008,
                                      seed * 4 + 1);
    FaultInjector::Global().ArmRandom(FaultSite::kCommCorrupt, 0.008,
                                      seed * 4 + 2);
    FaultInjector::Global().ArmRandom(FaultSite::kWorkerStraggle, 0.02,
                                      seed * 4 + 3);

    obs::FlightRecorder::Global().Clear();
    DistTrainer dist(opts, MakeReplica, MakeDistLoss());
    util::Status s = dist.Run();
    const auto counts = FaultInjector::Global().AllCounts();
    FaultInjector::Global().Disarm();
    ASSERT_TRUE(s.ok()) << s;

    // Exactness: the faulted run ends bit-identical to the unfaulted one.
    const DistTrainer& ref = *reference[world];
    EXPECT_EQ(MaxParamDiff(*ref.model(0), *dist.model(0)), 0.0f);
    EXPECT_EQ(MaxParamDiff(*dist.model(0), *dist.model(world - 1)), 0.0f);
    ASSERT_EQ(dist.history().size(), ref.history().size());
    for (size_t i = 0; i < ref.history().size(); ++i) {
      EXPECT_EQ(dist.history()[i].loss, ref.history()[i].loss)
          << "step " << i;
    }

    // Every observed worker death must be followed by a checkpoint-based
    // recovery in the flight recorder.
    const auto events = obs::FlightRecorder::Global().Dump();
    for (size_t i = 0; i < events.size(); ++i) {
      if (events[i].type != obs::FlightEventType::kWorkerDeath) continue;
      bool recovered = false;
      for (size_t j = i + 1; j < events.size(); ++j) {
        if (events[j].type == obs::FlightEventType::kDistRecovery) {
          recovered = true;
          break;
        }
      }
      EXPECT_TRUE(recovered)
          << "death without subsequent recovery:\n"
          << obs::FlightRecorder::Global().Format(64);
    }
    // Fired kills and recoveries line up: a kill is never absorbed
    // silently (several faults in one epoch may share one recovery).
    const auto& kills = counts[static_cast<size_t>(FaultSite::kWorkerKill)];
    if (kills.fired > 0) {
      EXPECT_GE(dist.recoveries(), 1) << "kills fired: " << kills.fired;
    }
    total_recoveries += dist.recoveries();
    total_kills += kills.fired;
    total_drops += counts[static_cast<size_t>(FaultSite::kCommDrop)].fired;
    total_corrupt +=
        counts[static_cast<size_t>(FaultSite::kCommCorrupt)].fired;
    total_straggles +=
        counts[static_cast<size_t>(FaultSite::kWorkerStraggle)].fired;
  }

  // The storm must actually have stormed: across all schedules every
  // fault class fired and recoveries happened. (Rates are seeded, so this
  // is deterministic up to thread scheduling of *which* rank draws each
  // occurrence, never of the totals' order of magnitude.)
  EXPECT_GT(total_kills, 0);
  EXPECT_GT(total_drops, 0);
  EXPECT_GT(total_corrupt, 0);
  EXPECT_GT(total_straggles, 0);
  EXPECT_GT(total_recoveries, 0);
  std::printf(
      "[dist-chaos] %d schedules: %lld kills, %lld drops, %lld corrupt, "
      "%lld straggles, %d recoveries\n",
      kSchedules, static_cast<long long>(total_kills),
      static_cast<long long>(total_drops),
      static_cast<long long>(total_corrupt),
      static_cast<long long>(total_straggles), total_recoveries);
}

// The same contract over the socket transport, under wire-level faults:
// dropped frames, payloads corrupted after the CRC was taken, stalled
// writes that blow the collective deadline, and connections torn down
// mid-send. Some of these are absorbed silently (a disconnect reconnects
// within the deadline; the server's result cache answers re-asks), some
// cost a recovery epoch — none may cost correctness.
TEST(DistChaosTest, SocketWireFaultStormsRecoverToTheExactResult) {
  constexpr int kSchedules = 16;
  const int worlds[] = {2, 3};

  std::map<int, std::unique_ptr<DistTrainer>> reference;
  std::vector<std::unique_ptr<ScratchDir>> ref_dirs;
  for (int world : worlds) {
    ref_dirs.push_back(std::make_unique<ScratchDir>(
        "tfmr_sockchaos_ref_w" + std::to_string(world)));
    reference[world] = std::make_unique<DistTrainer>(
        ChaosOptions(world, ref_dirs.back()->path()), MakeReplica,
        MakeDistLoss());
    ASSERT_TRUE(reference[world]->Run().ok());
  }

  int total_recoveries = 0;
  bool telemetry_ranks_seen[3] = {false, false, false};
  int64_t fired[4] = {0, 0, 0, 0};
  const FaultSite sites[4] = {FaultSite::kSockDrop,
                              FaultSite::kSockCorruptFrame,
                              FaultSite::kSockStallWrite,
                              FaultSite::kSockDisconnect};
  for (int schedule = 0; schedule < kSchedules; ++schedule) {
    SCOPED_TRACE("socket schedule " + std::to_string(schedule));
    const int world = worlds[schedule % 2];
    ScratchDir dir("tfmr_sockchaos_s" + std::to_string(schedule));
    DistTrainerOptions opts = ChaosOptions(world, dir.path());
    opts.transport = CommTransport::kSocket;
    // Telemetry rides the same faulted wire; the reference ran with the
    // plane off, so the exactness checks below also prove shipping never
    // perturbs training — even under storms.
    opts.telemetry_every = 3;
    // A stalled write sleeps 400ms — past the 250ms collective deadline —
    // so every fired stall is a real partition, not a benign slowdown.
    const uint64_t seed = 0x5eedC0DEull + static_cast<uint64_t>(schedule);
    // Frame traffic is ~15x denser than step-level fault sites (every
    // heartbeat, contribution, result, and ack is a send), so per-send
    // probabilities sit well below the step-level storm's.
    FaultInjector::Global().ArmRandom(sites[0], 0.004, seed * 8 + 0);
    FaultInjector::Global().ArmRandom(sites[1], 0.004, seed * 8 + 1);
    FaultInjector::Global().ArmRandom(sites[2], 0.002, seed * 8 + 2);
    FaultInjector::Global().ArmRandom(sites[3], 0.010, seed * 8 + 3);

    obs::FlightRecorder::Global().Clear();
    DistTrainer dist(opts, MakeReplica, MakeDistLoss());
    util::Status s = dist.Run();
    const auto counts = FaultInjector::Global().AllCounts();
    FaultInjector::Global().Disarm();
    ASSERT_TRUE(s.ok()) << s << "\n" << dist.FormatIncidents();

    const DistTrainer& ref = *reference[world];
    EXPECT_EQ(MaxParamDiff(*ref.model(0), *dist.model(0)), 0.0f);
    EXPECT_EQ(MaxParamDiff(*dist.model(0), *dist.model(world - 1)), 0.0f);
    ASSERT_EQ(dist.history().size(), ref.history().size());
    for (size_t i = 0; i < ref.history().size(); ++i) {
      EXPECT_EQ(dist.history()[i].loss, ref.history()[i].loss)
          << "step " << i;
    }
    // A worker death observed through the wire must still be followed by
    // a checkpoint recovery.
    const auto events = obs::FlightRecorder::Global().Dump();
    for (size_t i = 0; i < events.size(); ++i) {
      if (events[i].type != obs::FlightEventType::kWorkerDeath) continue;
      bool recovered = false;
      for (size_t j = i + 1; j < events.size(); ++j) {
        if (events[j].type == obs::FlightEventType::kDistRecovery) {
          recovered = true;
          break;
        }
      }
      EXPECT_TRUE(recovered) << obs::FlightRecorder::Global().Format(64);
    }
    // Telemetry is best-effort under faults (ships drop, never retry),
    // but a schedule in which *no* unit ever arrived would mean the
    // plane is dead, not lossy.
    int64_t ingested = 0;
    for (int r = 0; r < world; ++r) {
      ingested += dist.telemetry().IngestCount(r);
      if (dist.telemetry().HasRank(r)) telemetry_ranks_seen[r] = true;
    }
    EXPECT_GT(ingested, 0) << "no telemetry survived the storm";
    total_recoveries += dist.recoveries();
    for (int i = 0; i < 4; ++i) {
      fired[i] += counts[static_cast<size_t>(sites[i])].fired;
    }
  }
  // Across the whole storm every rank id shipped successfully at least
  // once.
  for (int r = 0; r < 3; ++r) {
    EXPECT_TRUE(telemetry_ranks_seen[r]) << "rank " << r << " never shipped";
  }
  // Every wire fault class must actually have fired across the storm.
  for (int i = 0; i < 4; ++i) {
    EXPECT_GT(fired[i], 0) << util::FaultSiteName(sites[i]);
  }
  std::printf(
      "[dist-chaos/socket] %d schedules: %lld drops, %lld corrupt, "
      "%lld stalls, %lld disconnects, %d recoveries\n",
      kSchedules, static_cast<long long>(fired[0]),
      static_cast<long long>(fired[1]), static_cast<long long>(fired[2]),
      static_cast<long long>(fired[3]), total_recoveries);
}

#ifdef DIST_WORKER_BIN

// Real processes, real SIGKILLs. Each schedule arms a genuine
// raise(SIGKILL) inside every worker process at a different step
// boundary (one also tears connections mid-send); the gang must grind
// through the deaths and land on exactly the thread-transport weights.
TEST(DistChaosTest, RealProcessSigkillSchedulesRecoverToTheExactResult) {
  const std::vector<std::vector<std::string>> schedules = {
      {"--arm-fault=worker-kill@5"},
      {"--arm-fault=worker-kill@6"},
      {"--arm-fault=worker-kill@9"},
      {"--arm-fault=worker-kill@6", "--arm-fault=sock-disconnect@10"},
  };

  // Thread-transport reference on the toy task the worker binary runs.
  ScratchDir ref_dir("tfmr_prochaos_ref");
  DistTrainerOptions ref_opts;
  ref_opts.world_size = 2;
  ref_opts.max_steps = 24;
  ref_opts.adamw = ToyAdamWOptions();
  ref_opts.checkpoint_dir = ref_dir.path();
  ref_opts.checkpoint_every = 4;
  DistTrainer ref(ref_opts, ToyModelFactory(), ToyDistLoss());
  ASSERT_TRUE(ref.Run().ok());

  for (size_t schedule = 0; schedule < schedules.size(); ++schedule) {
    SCOPED_TRACE("proc schedule " + std::to_string(schedule));
    ScratchDir dir("tfmr_prochaos_s" + std::to_string(schedule));
    ProcGroupOptions o;
    o.world_size = 2;
    o.max_steps = 24;
    o.checkpoint_every = 4;
    o.checkpoint_dir = dir.path();
    o.worker_binary = DIST_WORKER_BIN;
    o.worker_extra_args = schedules[schedule];
    ProcGroupCoordinator gang(o, ToyModelFactory(), ToyAdamWOptions());

    obs::FlightRecorder::Global().Clear();
    util::Status s = gang.Run();
    ASSERT_TRUE(s.ok()) << s << "\n" << gang.FormatIncidents();
    EXPECT_GE(gang.recoveries(), 1);

    // Incident-report conservation: every incident produced exactly one
    // structured report (the run recovered every time, so reports ==
    // recoveries), and each report's merged timeline contains the victim
    // rank's final shipped events — the telemetry it pushed from inside
    // the dying process.
    const std::vector<obs::IncidentReport>& reports = gang.incident_reports();
    EXPECT_EQ(reports.size(), static_cast<size_t>(gang.recoveries()))
        << gang.FormatIncidents();
    for (const obs::IncidentReport& report : reports) {
      SCOPED_TRACE(report.Format());
      EXPECT_FALSE(report.kind.empty());
      bool victim_final_events = false;
      for (const obs::GangEvent& ge : report.timeline) {
        if (ge.rank == report.rank &&
            (ge.event.type == obs::FlightEventType::kTelemetryShip ||
             ge.event.type == obs::FlightEventType::kPostmortemDump)) {
          victim_final_events = true;
          break;
        }
      }
      EXPECT_TRUE(victim_final_events)
          << "victim rank " << report.rank
          << "'s final shipped events missing from the report timeline";
    }

    // Death -> recovery -> respawn, in that order, in the flight record.
    const auto events = obs::FlightRecorder::Global().Dump();
    int phase = 0;
    for (const auto& ev : events) {
      if (phase == 0 && ev.type == obs::FlightEventType::kWorkerDeath) {
        phase = 1;
      } else if (phase == 1 &&
                 ev.type == obs::FlightEventType::kDistRecovery) {
        phase = 2;
      } else if (phase == 2 &&
                 ev.type == obs::FlightEventType::kProcSpawn) {
        phase = 3;
        break;
      }
    }
    EXPECT_EQ(phase, 3) << obs::FlightRecorder::Global().Format(64);

    // The faulted multi-process run ends bit-identical to the unfaulted
    // in-process reference.
    std::unique_ptr<nn::Module> final_model = MakeToyReplica();
    auto latest = LatestCheckpoint(dir.path());
    ASSERT_TRUE(latest.ok());
    ASSERT_TRUE(
        LoadCheckpoint(final_model.get(), latest.value(), nullptr).ok());
    EXPECT_EQ(MaxParamDiff(*ref.model(0), *final_model), 0.0f);
  }
}

#endif  // DIST_WORKER_BIN

}  // namespace
}  // namespace llm::train::dist
