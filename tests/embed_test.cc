// Tests for co-occurrence statistics, PPMI, Jacobi eigendecomposition,
// spectral embeddings, and the analogy solver (Eq. 9 / Eq. 10).
#include <gtest/gtest.h>

#include <cmath>

#include "data/analogy.h"
#include "embed/cooccurrence.h"

namespace llm::embed {
namespace {

TEST(CooccurrenceTest, CountsWithinWindow) {
  CooccurrenceMatrix m(4, /*window=*/1);
  m.Fit({0, 1, 2, 3});
  // Adjacent pairs only: (0,1), (1,2), (2,3), symmetric.
  EXPECT_FLOAT_EQ(m.counts().At({0, 1}), 1.0f);
  EXPECT_FLOAT_EQ(m.counts().At({1, 0}), 1.0f);
  EXPECT_FLOAT_EQ(m.counts().At({0, 2}), 0.0f);
  EXPECT_FLOAT_EQ(m.counts().At({2, 3}), 1.0f);
}

TEST(CooccurrenceTest, WiderWindowCountsMore) {
  CooccurrenceMatrix m(4, /*window=*/2);
  m.Fit({0, 1, 2, 3});
  EXPECT_FLOAT_EQ(m.counts().At({0, 2}), 1.0f);
  EXPECT_FLOAT_EQ(m.counts().At({0, 3}), 0.0f);
}

TEST(PpmiTest, IndependentWordsHaveZeroPmi) {
  // Long uniform random stream: all pairs near-independent, PPMI ~ 0.
  util::Rng rng(1);
  std::vector<int64_t> stream;
  for (int i = 0; i < 50000; ++i) {
    stream.push_back(static_cast<int64_t>(rng.UniformInt(5)));
  }
  CooccurrenceMatrix m(5, 2);
  m.Fit(stream);
  core::Tensor ppmi = m.Ppmi();
  EXPECT_LT(ppmi.MaxAbs(), 0.1f);
}

TEST(PpmiTest, AssociatedPairsPositive) {
  // Tokens 0 and 1 always adjacent; 2 appears apart.
  std::vector<int64_t> stream;
  for (int i = 0; i < 200; ++i) {
    stream.push_back(0);
    stream.push_back(1);
    stream.push_back(2);
    stream.push_back(2);
    stream.push_back(2);
  }
  CooccurrenceMatrix m(3, 1);
  m.Fit(stream);
  core::Tensor ppmi = m.Ppmi();
  EXPECT_GT(ppmi.At({0, 1}), 0.5f);
}

TEST(JacobiTest, RecoverseKnownEigensystem) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  core::Tensor m = core::Tensor::FromVector({2, 2}, {2, 1, 1, 2});
  EigenResult eig = JacobiEigen(m);
  EXPECT_NEAR(eig.eigenvalues[0], 3.0f, 1e-5f);
  EXPECT_NEAR(eig.eigenvalues[1], 1.0f, 1e-5f);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  const float v0 = eig.eigenvectors.At({0, 0});
  const float v1 = eig.eigenvectors.At({1, 0});
  EXPECT_NEAR(std::fabs(v0), std::sqrt(0.5f), 1e-4f);
  EXPECT_NEAR(v0, v1, 1e-4f);
}

TEST(JacobiTest, ReconstructsMatrix) {
  util::Rng rng(2);
  const int64_t n = 8;
  core::Tensor sym({n, n});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i; j < n; ++j) {
      const float v = static_cast<float>(rng.Normal());
      sym[i * n + j] = v;
      sym[j * n + i] = v;
    }
  }
  EigenResult eig = JacobiEigen(sym);
  // Check A = V diag(lambda) V^T entrywise.
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0;
      for (int64_t k = 0; k < n; ++k) {
        acc += eig.eigenvectors[i * n + k] * eig.eigenvalues[k] *
               eig.eigenvectors[j * n + k];
      }
      EXPECT_NEAR(acc, sym[i * n + j], 1e-4);
    }
  }
}

TEST(SpectralEmbeddingTest, GramMatrixApproximation) {
  // For a PSD matrix, rank-n embedding reproduces it exactly as a Gram
  // matrix E E^T.
  core::Tensor m = core::Tensor::FromVector({2, 2}, {2, 1, 1, 2});
  core::Tensor e = SpectralEmbedding(m, 2);
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t j = 0; j < 2; ++j) {
      double dot = 0;
      for (int64_t k = 0; k < 2; ++k) dot += e[i * 2 + k] * e[j * 2 + k];
      EXPECT_NEAR(dot, m[i * 2 + j], 1e-4);
    }
  }
}

TEST(WordEmbeddingsTest, CosineAndNearest) {
  core::Tensor vecs = core::Tensor::FromVector(
      {3, 2}, {1, 0, 0, 1, 1, 0.1f});
  WordEmbeddings emb(vecs);
  EXPECT_NEAR(emb.Cosine(0, 2), 1.0 / std::sqrt(1.01), 1e-4);
  EXPECT_LT(emb.Cosine(0, 1), 0.01);
  EXPECT_EQ(emb.Nearest({1.0f, 0.0f}, {0}), 2);  // excludes word 0
}

TEST(AnalogyEndToEnd, RecoversGridStructure) {
  // The full §5 pipeline on the synthetic corpus: co-occurrence -> PPMI ->
  // spectral embedding -> offset analogies.
  llm::data::AnalogyCorpus corpus;
  util::Rng rng(3);
  std::vector<int64_t> stream = corpus.Generate(12000, &rng);
  CooccurrenceMatrix m(corpus.vocab_size(), /*window=*/5);
  m.Fit(stream);
  core::Tensor emb_matrix = SpectralEmbedding(m.Ppmi(), 16);
  WordEmbeddings emb(emb_matrix);
  int correct = 0;
  for (const auto& q : corpus.quads()) {
    if (emb.Analogy(q.a, q.b, q.c) == q.d) ++correct;
  }
  // The paper's claim is qualitative; at toy scale most analogies resolve.
  EXPECT_GE(correct, static_cast<int>(corpus.quads().size() * 0.6))
      << correct << "/" << corpus.quads().size();
}

}  // namespace
}  // namespace llm::embed
