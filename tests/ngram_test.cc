// Tests for the N-gram language models (Eq. 1, 5, 6) and smoothing.
#include <gtest/gtest.h>

#include <cmath>

#include "ngram/ngram.h"

namespace llm::ngram {
namespace {

TEST(UnigramTest, MatchesFrequencies) {
  // Eq. 1: P(w) = count / total (up to smoothing).
  NgramModel model(1, 4, /*add_k=*/1e-9);
  model.Fit({0, 0, 0, 1});  // P(0) ~ 3/4, P(1) ~ 1/4
  EXPECT_NEAR(model.CondProb({}, 0), 0.75, 1e-6);
  EXPECT_NEAR(model.CondProb({}, 1), 0.25, 1e-6);
}

TEST(BigramTest, ConditionalCounts) {
  // Stream 0 1 0 1 0 1: after 0 always 1; after 1 always 0.
  NgramModel model(2, 3, 1e-9);
  model.Fit({0, 1, 0, 1, 0, 1});
  EXPECT_NEAR(model.CondProb({0}, 1), 1.0, 1e-6);
  EXPECT_NEAR(model.CondProb({1}, 0), 1.0, 1e-6);
}

TEST(BigramTest, UsesOnlyLastContextToken) {
  NgramModel model(2, 3, 1e-9);
  model.Fit({0, 1, 0, 1});
  EXPECT_NEAR(model.CondProb({2, 2, 0}, 1), model.CondProb({0}, 1), 1e-12);
}

TEST(SmoothingTest, UnseenContextIsUniform) {
  NgramModel model(2, 10, 0.5);
  model.Fit({0, 1});
  // Context 7 never seen: add-k gives uniform 1/10.
  EXPECT_NEAR(model.CondProb({7}, 3), 0.1, 1e-9);
}

TEST(SmoothingTest, ProbabilitiesSumToOne) {
  NgramModel model(2, 5, 0.1);
  model.Fit({0, 1, 2, 3, 4, 0, 2, 4, 1, 3});
  for (int64_t ctx = 0; ctx < 5; ++ctx) {
    double sum = 0;
    for (int64_t w = 0; w < 5; ++w) sum += model.CondProb({ctx}, w);
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(PerplexityTest, DeterministicStreamApproachesOne) {
  NgramModel model(2, 3, 1e-6);
  std::vector<int64_t> stream;
  for (int i = 0; i < 500; ++i) stream.push_back(i % 2);
  model.Fit(stream);
  EXPECT_NEAR(model.Perplexity(stream), 1.0, 0.01);
}

TEST(PerplexityTest, UniformRandomApproachesVocab) {
  util::Rng rng(1);
  std::vector<int64_t> stream;
  for (int i = 0; i < 20000; ++i) {
    stream.push_back(static_cast<int64_t>(rng.UniformInt(8)));
  }
  NgramModel model(1, 8, 0.01);
  model.Fit(stream);
  EXPECT_NEAR(model.Perplexity(stream), 8.0, 0.25);
}

TEST(PerplexityTest, HigherOrderWinsOnMarkovData) {
  // Second-order data: next = (prev + prev2) mod 5.
  std::vector<int64_t> stream = {0, 1};
  for (int i = 2; i < 3000; ++i) {
    stream.push_back((stream[i - 1] + stream[i - 2]) % 5);
  }
  NgramModel uni(1, 5, 0.01);
  NgramModel tri(3, 5, 0.01);
  uni.Fit(stream);
  tri.Fit(stream);
  EXPECT_LT(tri.Perplexity(stream), uni.Perplexity(stream) * 0.5);
}

TEST(GenerateTest, ReproducesPattern) {
  NgramModel model(2, 2, 1e-6);
  model.Fit({0, 1, 0, 1, 0, 1, 0, 1});
  util::Rng rng(2);
  auto out = model.Generate({0}, 10, &rng);
  ASSERT_EQ(out.size(), 11u);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_NE(out[i], out[i - 1]);  // alternating
  }
}

TEST(InterpolatedTest, WeightsMustSumToOne) {
  EXPECT_DEATH(InterpolatedNgram(2, 5, 0.01, {0.9, 0.9}), "sum to 1");
}

TEST(InterpolatedTest, BeatsPureHighOrderOnSparseData) {
  // Short corpus: trigram contexts are mostly unseen at test time, so
  // interpolation with lower orders helps.
  util::Rng rng(3);
  std::vector<int64_t> train, test;
  for (int i = 0; i < 300; ++i) {
    train.push_back(static_cast<int64_t>(rng.UniformInt(6)));
  }
  for (int i = 0; i < 300; ++i) {
    test.push_back(static_cast<int64_t>(rng.UniformInt(6)));
  }
  NgramModel pure(3, 6, 0.01);
  InterpolatedNgram mixed(3, 6, 0.01);
  pure.Fit(train);
  mixed.Fit(train);
  EXPECT_LT(mixed.Perplexity(test), pure.Perplexity(test));
}

TEST(InterpolatedTest, CondProbIsConvexCombination) {
  InterpolatedNgram mixed(2, 4, 0.1, {0.5, 0.5});
  mixed.Fit({0, 1, 2, 3, 0, 1});
  double sum = 0;
  for (int64_t w = 0; w < 4; ++w) sum += mixed.CondProb({1}, w);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(NgramTest, ContextCountGrowth) {
  NgramModel model(3, 10, 0.01);
  model.Fit({0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  EXPECT_EQ(model.num_contexts(), 8);  // 10 - 2 distinct 2-contexts
}

}  // namespace
}  // namespace llm::ngram
