// End-to-end tests for the fault-tolerant training runtime: crash-safe v2
// checkpoints, bit-exact kill-and-resume, divergence rollback/skip
// recovery, and the deterministic fault-injection layer that drives them.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "nn/layers.h"
#include "train/checkpoint.h"
#include "train/optimizer.h"
#include "train/trainer.h"
#include "util/fault.h"
#include "util/rng.h"

namespace llm::train {
namespace {

namespace fs = std::filesystem;
using util::FaultInjector;
using util::FaultSite;

/// Fresh scratch directory per test; removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_((fs::temp_directory_path() / name).string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Every test must leave the global injector disarmed.
class FaultToleranceTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().Disarm(); }
};

/// Stochastic regression loss: the batch comes from `rng`, so bit-exact
/// resume requires restoring the RNG stream, not just the weights.
std::function<core::Variable()> MakeLossFn(nn::Mlp* model, util::Rng* rng) {
  return [model, rng] {
    core::Variable x(core::Tensor::RandomNormal({2, 4}, rng), false);
    core::Variable y = model->Forward(x);
    return core::SumAll(core::Mul(y, y));
  };
}

float MaxParamDiff(const nn::Module& a, const nn::Module& b) {
  auto pa = a.NamedParameters();
  auto pb = b.NamedParameters();
  EXPECT_EQ(pa.size(), pb.size());
  float worst = 0.0f;
  for (size_t i = 0; i < pa.size(); ++i) {
    worst = std::max(worst, core::Tensor::MaxAbsDiff(pa[i].second.value(),
                                                     pb[i].second.value()));
  }
  return worst;
}

// ---------------------------------------------------------------------------
// Checkpoint format v2: atomicity and corruption detection.
// ---------------------------------------------------------------------------

TEST_F(FaultToleranceTest, TornWriteNeverCorruptsDestination) {
  ScratchDir dir("tfmr_torn_write");
  const std::string path = dir.path() + "/ckpt_000000000.tfmr";
  util::Rng rng(7);
  nn::Mlp model(4, 8, 2, &rng);
  ASSERT_TRUE(SaveCheckpoint(model, path).ok());

  // Change the weights, then crash mid-write of the second save.
  model.NamedParameters()[0].second.mutable_value().Fill(123.0f);
  FaultInjector::Global().ArmAt(FaultSite::kCheckpointWrite, {0});
  util::Status torn = SaveCheckpoint(model, path);
  EXPECT_EQ(torn.code(), util::StatusCode::kIOError);
  FaultInjector::Global().Disarm();

  // The destination still holds the complete first snapshot.
  nn::Mlp restored(4, 8, 2, &rng);
  ASSERT_TRUE(LoadCheckpoint(&restored, path).ok());
  EXPECT_NE(restored.NamedParameters()[0].second.value()[0], 123.0f);

  // And a later save (fault cleared) goes through over the stale tmp file.
  ASSERT_TRUE(SaveCheckpoint(model, path).ok());
  ASSERT_TRUE(LoadCheckpoint(&restored, path).ok());
  EXPECT_EQ(restored.NamedParameters()[0].second.value()[0], 123.0f);
}

TEST_F(FaultToleranceTest, ChecksumCorruptionRejected) {
  ScratchDir dir("tfmr_crc");
  const std::string path = dir.path() + "/ckpt_000000000.tfmr";
  util::Rng rng(8);
  nn::Mlp model(4, 8, 2, &rng);
  ASSERT_TRUE(SaveCheckpoint(model, path).ok());

  // Flip one byte inside the last tensor's data (just before the footer).
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(0, std::ios::end);
    const auto size = static_cast<int64_t>(f.tellg());
    f.seekp(size - 10);
    char b = 0;
    f.seekg(size - 10);
    f.read(&b, 1);
    b ^= 0x5A;
    f.seekp(size - 10);
    f.write(&b, 1);
  }
  nn::Mlp victim(4, 8, 2, &rng);
  util::Status s = LoadCheckpoint(&victim, path);
  EXPECT_EQ(s.code(), util::StatusCode::kFailedPrecondition);
  EXPECT_NE(s.message().find("checksum mismatch"), std::string::npos) << s;
}

TEST_F(FaultToleranceTest, TruncationRejectedAsIOError) {
  ScratchDir dir("tfmr_trunc");
  const std::string path = dir.path() + "/ckpt_000000000.tfmr";
  util::Rng rng(9);
  nn::Mlp model(4, 8, 2, &rng);
  ASSERT_TRUE(SaveCheckpoint(model, path).ok());
  fs::resize_file(path, fs::file_size(path) - 20);
  util::Status s = LoadCheckpoint(&model, path);
  EXPECT_EQ(s.code(), util::StatusCode::kIOError);
  EXPECT_NE(s.message().find("truncated"), std::string::npos) << s;
}

TEST_F(FaultToleranceTest, BadMagicRejectedAsFailedPrecondition) {
  ScratchDir dir("tfmr_magic");
  const std::string path = dir.path() + "/bogus.tfmr";
  {
    std::ofstream f(path, std::ios::binary);
    f << "NOTACKPTxxxxxxxxxxxxxxxxxxxxxxxx";
  }
  util::Rng rng(10);
  nn::Mlp model(4, 8, 2, &rng);
  util::Status s = LoadCheckpoint(&model, path);
  EXPECT_EQ(s.code(), util::StatusCode::kFailedPrecondition);
  EXPECT_NE(s.message().find("magic"), std::string::npos) << s;
}

TEST_F(FaultToleranceTest, ShapeDriftRejected) {
  ScratchDir dir("tfmr_drift");
  const std::string path = dir.path() + "/ckpt_000000000.tfmr";
  util::Rng rng(11);
  nn::Mlp model(4, 8, 2, &rng);
  ASSERT_TRUE(SaveCheckpoint(model, path).ok());
  nn::Mlp wider(4, 16, 2, &rng);
  util::Status s = LoadCheckpoint(&wider, path);
  EXPECT_EQ(s.code(), util::StatusCode::kFailedPrecondition);
}

TEST_F(FaultToleranceTest, V1CheckpointStillLoadsWeightsOnly) {
  ScratchDir dir("tfmr_v1");
  const std::string path = dir.path() + "/legacy.bin";
  util::Rng rng(12);
  nn::Mlp model(4, 8, 2, &rng);

  // Hand-write the legacy v1 layout (no version, no checksums).
  {
    std::ofstream out(path, std::ios::binary);
    out.write("TFMRCKPT", 8);
    const nn::NamedParams params = model.NamedParameters();
    const uint64_t count = params.size();
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
    for (const auto& [name, var] : params) {
      const auto name_len = static_cast<uint32_t>(name.size());
      out.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
      out.write(name.data(), name_len);
      const core::Tensor& t = var.value();
      const auto ndim = static_cast<uint32_t>(t.ndim());
      out.write(reinterpret_cast<const char*>(&ndim), sizeof(ndim));
      for (int i = 0; i < t.ndim(); ++i) {
        const int64_t d = t.dim(i);
        out.write(reinterpret_cast<const char*>(&d), sizeof(d));
      }
      out.write(reinterpret_cast<const char*>(t.data()),
                static_cast<std::streamsize>(t.numel() * sizeof(float)));
    }
  }

  nn::Mlp restored(4, 8, 2, &rng);  // different init
  TrainState state;
  ASSERT_TRUE(LoadCheckpoint(&restored, path, &state).ok());
  EXPECT_EQ(MaxParamDiff(model, restored), 0.0f);
  EXPECT_FALSE(state.has_optimizer);
  EXPECT_FALSE(state.has_rng);
  EXPECT_FALSE(state.has_trainer);

  // But resuming *training* from a weights-only file is refused.
  Sgd opt(restored.Parameters(), 0.1f);
  TrainerOptions topts;
  topts.model = &restored;
  Trainer trainer(&opt, topts);
  EXPECT_EQ(trainer.ResumeFrom(path).code(),
            util::StatusCode::kFailedPrecondition);
}

TEST_F(FaultToleranceTest, LatestCheckpointFindsNewest) {
  ScratchDir dir("tfmr_latest");
  EXPECT_EQ(LatestCheckpoint(dir.path()).status().code(),
            util::StatusCode::kNotFound);
  util::Rng rng(13);
  nn::Mlp model(4, 8, 2, &rng);
  ASSERT_TRUE(
      SaveCheckpoint(model, dir.path() + "/" + CheckpointFileName(3)).ok());
  ASSERT_TRUE(
      SaveCheckpoint(model, dir.path() + "/" + CheckpointFileName(12)).ok());
  auto latest = LatestCheckpoint(dir.path());
  ASSERT_TRUE(latest.ok());
  EXPECT_NE(latest.value().find(CheckpointFileName(12)), std::string::npos);
}

TEST_F(FaultToleranceTest, LatestCheckpointEdgeCasesReturnNotFoundCleanly) {
  // Missing directory: NotFound, not a crash or an IOError.
  EXPECT_EQ(LatestCheckpoint("/nonexistent/tfmr_no_such_dir").status().code(),
            util::StatusCode::kNotFound);

  // Path that exists but is a file, not a directory.
  ScratchDir dir("tfmr_latest_edges");
  const std::string file_path = dir.path() + "/not_a_dir";
  { std::ofstream f(file_path); f << "x"; }
  EXPECT_EQ(LatestCheckpoint(file_path).status().code(),
            util::StatusCode::kNotFound);

  // Empty directory.
  EXPECT_EQ(LatestCheckpoint(dir.path()).status().code(),
            util::StatusCode::kNotFound);

  // Directory with non-checkpoint junk only: still NotFound.
  { std::ofstream f(dir.path() + "/README.txt"); f << "notes"; }
  { std::ofstream f(dir.path() + "/ckpt_abc.tfmr"); f << "bad step"; }
  { std::ofstream f(dir.path() + "/ckpt_.tfmr"); f << "no step"; }
  { std::ofstream f(dir.path() + "/ckpt_000000007.bak"); f << "bad ext"; }
  fs::create_directories(dir.path() + "/ckpt_000000099.tfmr.d");
  EXPECT_EQ(LatestCheckpoint(dir.path()).status().code(),
            util::StatusCode::kNotFound);

  // A real checkpoint among the junk is found, junk ignored.
  util::Rng rng(14);
  nn::Mlp model(4, 8, 2, &rng);
  ASSERT_TRUE(
      SaveCheckpoint(model, dir.path() + "/" + CheckpointFileName(5)).ok());
  auto latest = LatestCheckpoint(dir.path());
  ASSERT_TRUE(latest.ok()) << latest.status();
  EXPECT_NE(latest.value().find(CheckpointFileName(5)), std::string::npos);
}

// ---------------------------------------------------------------------------
// ValidateCheckpoint: the serving fleet's pre-swap gate.
// ---------------------------------------------------------------------------

TEST_F(FaultToleranceTest, ValidateCheckpointAcceptsGoodFileAndChecksArch) {
  ScratchDir dir("tfmr_validate");
  const std::string path = dir.path() + "/ckpt_000000000.tfmr";
  util::Rng rng(15);
  nn::Mlp model(4, 8, 2, &rng);
  ASSERT_TRUE(SaveCheckpoint(model, path).ok());

  // Structure-only validation, and validation against the right module.
  EXPECT_TRUE(ValidateCheckpoint(path).ok());
  EXPECT_TRUE(ValidateCheckpoint(path, &model).ok());

  // Architecture mismatch is caught without touching anything.
  nn::Mlp wider(4, 16, 2, &rng);
  util::Status s = ValidateCheckpoint(path, &wider);
  EXPECT_EQ(s.code(), util::StatusCode::kFailedPrecondition);

  // Missing file.
  EXPECT_FALSE(ValidateCheckpoint(dir.path() + "/absent.tfmr").ok());
}

TEST_F(FaultToleranceTest, ValidateCheckpointCatchesCorruptionAndTruncation) {
  ScratchDir dir("tfmr_validate_bad");
  const std::string path = dir.path() + "/ckpt_000000000.tfmr";
  util::Rng rng(16);
  nn::Mlp model(4, 8, 2, &rng);
  ASSERT_TRUE(SaveCheckpoint(model, path).ok());

  const std::string corrupt = dir.path() + "/corrupt.tfmr";
  fs::copy_file(path, corrupt);
  {
    std::fstream f(corrupt, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(0, std::ios::end);
    const auto size = static_cast<int64_t>(f.tellg());
    char b = 0;
    f.seekg(size - 10);
    f.read(&b, 1);
    b ^= 0x5A;
    f.seekp(size - 10);
    f.write(&b, 1);
  }
  EXPECT_EQ(ValidateCheckpoint(corrupt).code(),
            util::StatusCode::kFailedPrecondition);

  const std::string truncated = dir.path() + "/truncated.tfmr";
  fs::copy_file(path, truncated);
  fs::resize_file(truncated, fs::file_size(truncated) - 20);
  EXPECT_EQ(ValidateCheckpoint(truncated).code(),
            util::StatusCode::kIOError);
}

TEST_F(FaultToleranceTest, RejectedLoadNeverHalfMutatesTheModule) {
  ScratchDir dir("tfmr_atomic_load");
  const std::string path = dir.path() + "/ckpt_000000000.tfmr";
  util::Rng rng(17);
  nn::Mlp source(4, 8, 2, &rng);
  ASSERT_TRUE(SaveCheckpoint(source, path).ok());

  // A module whose FIRST parameter matches the file but whose later ones
  // don't: a per-entry validate-while-copying loader would mutate the
  // early parameters before noticing. Load must be all-or-nothing.
  nn::Mlp victim(4, 8, 4, &rng);
  std::vector<std::vector<float>> before;
  for (const auto& [name, param] : victim.NamedParameters()) {
    before.emplace_back(param.value().data(),
                        param.value().data() + param.value().numel());
  }
  ASSERT_FALSE(LoadCheckpoint(&victim, path).ok());
  size_t k = 0;
  for (const auto& [name, param] : victim.NamedParameters()) {
    const std::vector<float> after(param.value().data(),
                                   param.value().data() +
                                       param.value().numel());
    EXPECT_EQ(after, before[k]) << "parameter " << name
                                << " mutated by a rejected load";
    ++k;
  }
}

// ---------------------------------------------------------------------------
// Optimizer state round-trip (AdamW moments).
// ---------------------------------------------------------------------------

TEST_F(FaultToleranceTest, AdamWStateRoundTripIsBitExact) {
  const uint64_t kInitSeed = 21, kDataSeed = 22;
  auto make_model = [](uint64_t seed) {
    util::Rng r(seed);
    return nn::Mlp(4, 8, 2, &r);
  };

  // Reference: 3 warmup steps, snapshot, then 2 more uninterrupted steps.
  nn::Mlp ref = make_model(kInitSeed);
  AdamWOptions aopts;
  aopts.lr = 1e-2f;
  aopts.weight_decay = 0.1f;
  AdamW ref_opt(ref.Parameters(), aopts);
  util::Rng ref_rng(kDataSeed);
  auto ref_loss = MakeLossFn(&ref, &ref_rng);
  auto one_step = [](const std::function<core::Variable()>& loss_fn,
                     Optimizer* opt) {
    core::Variable loss = loss_fn();
    opt->ZeroGrad();
    core::Backward(loss);
    opt->Step();
  };
  for (int i = 0; i < 3; ++i) one_step(ref_loss, &ref_opt);

  ScratchDir dir("tfmr_adamw_rt");
  const std::string path = dir.path() + "/" + CheckpointFileName(3);
  TrainState state;
  state.has_optimizer = true;
  state.optimizer = ref_opt.ExportState();
  state.has_rng = true;
  state.rng = ref_rng.SaveState();
  state.has_trainer = true;
  state.next_step = 3;
  ASSERT_TRUE(SaveCheckpoint(ref, path, &state).ok());

  for (int i = 0; i < 2; ++i) one_step(ref_loss, &ref_opt);

  // Restore into a *differently initialized* model + fresh optimizer.
  nn::Mlp resumed = make_model(kInitSeed + 100);
  AdamW resumed_opt(resumed.Parameters(), aopts);
  util::Rng resumed_rng(0);
  TrainState loaded;
  ASSERT_TRUE(LoadCheckpoint(&resumed, path, &loaded).ok());
  ASSERT_TRUE(loaded.has_optimizer);
  ASSERT_TRUE(resumed_opt.ImportState(loaded.optimizer).ok());
  EXPECT_EQ(resumed_opt.step_count(), 3);
  resumed_rng.RestoreState(loaded.rng);

  auto resumed_loss = MakeLossFn(&resumed, &resumed_rng);
  for (int i = 0; i < 2; ++i) one_step(resumed_loss, &resumed_opt);

  // Same batches, same moments, same bias correction -> identical bits.
  EXPECT_EQ(MaxParamDiff(ref, resumed), 0.0f);
}

TEST_F(FaultToleranceTest, ImportStateRejectsWrongOptimizer) {
  util::Rng rng(31);
  nn::Mlp model(4, 8, 2, &rng);
  AdamWOptions aopts;
  AdamW adamw(model.Parameters(), aopts);
  Sgd sgd(model.Parameters(), 0.1f, 0.9f);
  OptimizerState state = adamw.ExportState();
  EXPECT_EQ(sgd.ImportState(state).code(),
            util::StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Trainer: kill-and-resume and divergence recovery.
// ---------------------------------------------------------------------------

struct TrainRig {
  std::unique_ptr<nn::Mlp> model;
  std::unique_ptr<AdamW> opt;
  std::unique_ptr<util::Rng> data_rng;
  std::unique_ptr<Trainer> trainer;
};

TrainRig MakeRun(uint64_t init_seed, const TrainerOptions& base,
            const std::string& ckpt_dir) {
  TrainRig r;
  util::Rng init(init_seed);
  r.model = std::make_unique<nn::Mlp>(4, 8, 2, &init);
  AdamWOptions aopts;
  aopts.lr = 1e-2f;
  r.opt = std::make_unique<AdamW>(r.model->Parameters(), aopts);
  r.data_rng = std::make_unique<util::Rng>(99);
  TrainerOptions topts = base;
  topts.checkpoint_dir = ckpt_dir;
  topts.model = r.model.get();
  topts.data_rng = r.data_rng.get();
  r.trainer = std::make_unique<Trainer>(r.opt.get(), topts);
  return r;
}

TEST_F(FaultToleranceTest, KillAndResumeIsBitExact) {
  TrainerOptions base;
  base.max_steps = 10;
  base.checkpoint_every = 3;
  base.keep_last_k = 2;

  // A: uninterrupted 10 steps.
  ScratchDir dir_a("tfmr_resume_a");
  TrainRig a = MakeRun(41, base, dir_a.path());
  ASSERT_TRUE(
      a.trainer->Run(MakeLossFn(a.model.get(), a.data_rng.get())).ok());

  // B: identical run killed after 6 steps (max_steps=6 stands in for the
  // kill; the final checkpoint at next_step=6 is what a crash would leave
  // from the periodic save).
  ScratchDir dir_b("tfmr_resume_b");
  TrainerOptions interrupted = base;
  interrupted.max_steps = 6;
  TrainRig b = MakeRun(41, interrupted, dir_b.path());
  ASSERT_TRUE(
      b.trainer->Run(MakeLossFn(b.model.get(), b.data_rng.get())).ok());

  // C: fresh process — different init, default RNG — resumed from B's
  // last checkpoint, finishing the 10 steps.
  TrainRig c = MakeRun(4141, base, dir_b.path());
  auto latest = LatestCheckpoint(dir_b.path());
  ASSERT_TRUE(latest.ok()) << latest.status();
  ASSERT_TRUE(c.trainer->ResumeFrom(latest.value()).ok());
  EXPECT_EQ(c.trainer->start_step(), 6);
  ASSERT_TRUE(
      c.trainer->Run(MakeLossFn(c.model.get(), c.data_rng.get())).ok());

  // The resumed run reproduces the uninterrupted one bit for bit: same
  // weights, same loss curve, same grad norms.
  EXPECT_EQ(MaxParamDiff(*a.model, *c.model), 0.0f);
  ASSERT_EQ(c.trainer->history().size(), a.trainer->history().size());
  for (size_t i = 0; i < a.trainer->history().size(); ++i) {
    EXPECT_EQ(a.trainer->history()[i].step, c.trainer->history()[i].step);
    EXPECT_EQ(a.trainer->history()[i].loss, c.trainer->history()[i].loss)
        << "step " << i;
    EXPECT_EQ(a.trainer->history()[i].grad_norm,
              c.trainer->history()[i].grad_norm);
  }
}

TEST_F(FaultToleranceTest, CheckpointRotationKeepsLastK) {
  ScratchDir dir("tfmr_rotate");
  TrainerOptions base;
  base.max_steps = 9;
  base.checkpoint_every = 2;
  base.keep_last_k = 2;
  TrainRig r = MakeRun(43, base, dir.path());
  ASSERT_TRUE(
      r.trainer->Run(MakeLossFn(r.model.get(), r.data_rng.get())).ok());
  size_t kept = 0;
  for (const auto& e : fs::directory_iterator(dir.path())) {
    if (e.path().filename().string().rfind("ckpt_", 0) == 0) ++kept;
  }
  EXPECT_EQ(kept, 2u);
}

TEST_F(FaultToleranceTest, NaNLossRollsBackAndFinishes) {
  ScratchDir dir("tfmr_nan");
  TrainerOptions base;
  base.max_steps = 8;
  base.checkpoint_every = 2;
  base.max_recoveries = 2;
  base.lr_backoff = 0.5f;
  TrainRig r = MakeRun(44, base, dir.path());

  FaultInjector::Global().ArmAt(FaultSite::kLossNaN, {4});
  util::Status s =
      r.trainer->Run(MakeLossFn(r.model.get(), r.data_rng.get()));
  ASSERT_TRUE(s.ok()) << s;

  ASSERT_EQ(r.trainer->incidents().size(), 1u);
  const Incident& inc = r.trainer->incidents()[0];
  EXPECT_EQ(inc.kind, "nan-loss");
  EXPECT_EQ(inc.step, 4);
  EXPECT_NE(inc.action.find("rollback to step 4"), std::string::npos);
  EXPECT_FLOAT_EQ(inc.lr_scale_after, 0.5f);

  // The history is complete and contiguous despite the divergence...
  ASSERT_EQ(r.trainer->history().size(), 8u);
  for (int64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(r.trainer->history()[static_cast<size_t>(i)].step, i);
  }
  // ...the re-run step is flagged, and later steps ran at the backed-off
  // learning rate.
  EXPECT_EQ(r.trainer->history()[4].event,
            static_cast<uint8_t>(StepEvent::kRecovered));
  EXPECT_FLOAT_EQ(r.trainer->history()[7].lr, 1e-2f * 0.5f);
}

TEST_F(FaultToleranceTest, GradExplosionSkipsStepWithoutCheckpoints) {
  TrainerOptions base;
  base.max_steps = 6;
  base.grad_explode_threshold = 1e6f;
  base.max_recoveries = 1;
  TrainRig r = MakeRun(45, base, /*ckpt_dir=*/"");

  FaultInjector::Global().ArmAt(FaultSite::kGradExplode, {2});
  util::Status s =
      r.trainer->Run(MakeLossFn(r.model.get(), r.data_rng.get()));
  ASSERT_TRUE(s.ok()) << s;
  ASSERT_EQ(r.trainer->incidents().size(), 1u);
  EXPECT_EQ(r.trainer->incidents()[0].kind, "grad-explosion");
  EXPECT_EQ(r.trainer->incidents()[0].action, "skip-step");
  ASSERT_EQ(r.trainer->history().size(), 6u);
  for (const StepRecord& rec : r.trainer->history()) {
    EXPECT_LT(rec.grad_norm, 1e6f);
  }
}

TEST_F(FaultToleranceTest, ExhaustedRecoveryBudgetSurfacesIncidentLog) {
  TrainerOptions base;
  base.max_steps = 6;
  base.max_recoveries = 2;
  TrainRig r = MakeRun(46, base, /*ckpt_dir=*/"");

  // Every attempt at the loss produces NaN: two recoveries, then give up.
  FaultInjector::Global().ArmAt(FaultSite::kLossNaN,
                                {0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  util::Status s =
      r.trainer->Run(MakeLossFn(r.model.get(), r.data_rng.get()));
  EXPECT_EQ(s.code(), util::StatusCode::kInternal);
  EXPECT_NE(s.message().find("incident log"), std::string::npos) << s;
  EXPECT_NE(s.message().find("nan-loss"), std::string::npos) << s;
  EXPECT_EQ(r.trainer->incidents().size(), 3u);  // 2 recoveries + final
}

TEST_F(FaultToleranceTest, RollbackSkipsUnreadableCheckpoint) {
  ScratchDir dir("tfmr_skip_corrupt");
  TrainerOptions base;
  base.max_steps = 6;
  base.checkpoint_every = 2;
  base.keep_last_k = 3;
  base.max_recoveries = 1;
  TrainRig r = MakeRun(47, base, dir.path());

  // Step 5 diverges; the newest checkpoint (step 4) is unreadable, so the
  // rollback must fall back to the one before it (step 2).
  FaultInjector::Global().ArmAt(FaultSite::kLossNaN, {5});
  FaultInjector::Global().ArmAt(FaultSite::kCheckpointRead, {0});
  util::Status s =
      r.trainer->Run(MakeLossFn(r.model.get(), r.data_rng.get()));
  ASSERT_TRUE(s.ok()) << s;
  ASSERT_EQ(r.trainer->incidents().size(), 1u);
  EXPECT_NE(r.trainer->incidents()[0].action.find("rollback to step 2"),
            std::string::npos)
      << r.trainer->incidents()[0].action;
  ASSERT_EQ(r.trainer->history().size(), 6u);
}

TEST_F(FaultToleranceTest, TrainerSurvivesInjectedCheckpointWriteFailure) {
  ScratchDir dir("tfmr_ckpt_fail");
  TrainerOptions base;
  base.max_steps = 6;
  base.checkpoint_every = 2;
  TrainRig r = MakeRun(48, base, dir.path());

  // The save after step 2 tears (save #0 is the initial checkpoint, #1 is
  // at step 2); training must continue on the last good checkpoint.
  FaultInjector::Global().ArmAt(FaultSite::kCheckpointWrite, {1});
  util::Status s =
      r.trainer->Run(MakeLossFn(r.model.get(), r.data_rng.get()));
  ASSERT_TRUE(s.ok()) << s;
  ASSERT_EQ(r.trainer->history().size(), 6u);
  ASSERT_EQ(r.trainer->incidents().size(), 1u);
  EXPECT_EQ(r.trainer->incidents()[0].kind, "checkpoint-write");
  // The final (successful) checkpoint is resumable.
  auto latest = LatestCheckpoint(dir.path());
  ASSERT_TRUE(latest.ok());
  TrainRig fresh = MakeRun(480, base, dir.path());
  EXPECT_TRUE(fresh.trainer->ResumeFrom(latest.value()).ok());
  EXPECT_EQ(fresh.trainer->start_step(), 6);
}

// ---------------------------------------------------------------------------
// Injector thread safety: serving fires sites from scheduler, worker, and
// watchdog threads concurrently.
// ---------------------------------------------------------------------------

TEST_F(FaultToleranceTest, InjectorCountsExactlyUnderConcurrentFire) {
  // Four threads hammer one site 10k times each. Interleaving is free to
  // vary, but the occurrence count must be exact and the number of firings
  // must match the armed plan precisely.
  FaultInjector::Global().ArmAt(FaultSite::kDecodeNaN,
                                {0, 999, 20000, 39999, 400000});
  constexpr int kThreads = 4;
  constexpr int64_t kFiresPerThread = 10000;
  std::atomic<int64_t> fired{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int64_t i = 0; i < kFiresPerThread; ++i) {
        if (util::MaybeInjectFault(FaultSite::kDecodeNaN)) {
          fired.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(FaultInjector::Global().Occurrences(FaultSite::kDecodeNaN),
            kThreads * kFiresPerThread);
  // 400000 is past the end of the run; the other four indices must fire.
  EXPECT_EQ(fired.load(), 4);
  EXPECT_EQ(FaultInjector::Global().Fired(FaultSite::kDecodeNaN), 4);
}

TEST_F(FaultToleranceTest, InjectorRandomPlanCountsExactlyAcrossThreads) {
  FaultInjector::Global().ArmRandom(FaultSite::kSlotLeak, 0.25, 77);
  constexpr int kThreads = 4;
  constexpr int64_t kFiresPerThread = 10000;
  std::atomic<int64_t> fired{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int64_t i = 0; i < kFiresPerThread; ++i) {
        if (util::MaybeInjectFault(FaultSite::kSlotLeak)) fired.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const int64_t total = kThreads * kFiresPerThread;
  EXPECT_EQ(FaultInjector::Global().Occurrences(FaultSite::kSlotLeak), total);
  // Bernoulli(0.25) over 40k draws: the observed rate must be close, and
  // the injector's own tally must agree with what callers saw.
  EXPECT_EQ(FaultInjector::Global().Fired(FaultSite::kSlotLeak),
            fired.load());
  EXPECT_NEAR(static_cast<double>(fired.load()) / static_cast<double>(total),
              0.25, 0.02);
}

TEST_F(FaultToleranceTest, ServingFaultSitesHaveNames) {
  EXPECT_STREQ(util::FaultSiteName(FaultSite::kDecodeNaN), "decode-nan");
  EXPECT_STREQ(util::FaultSiteName(FaultSite::kWorkerStall), "worker-stall");
  EXPECT_STREQ(util::FaultSiteName(FaultSite::kSlotLeak), "slot-leak");
  EXPECT_STREQ(util::FaultSiteName(FaultSite::kOnTokenThrow),
               "on-token-throw");
}

// ---------------------------------------------------------------------------
// Distributed-training fault sites (kCommDrop, kCommCorrupt, kWorkerKill,
// kWorkerStraggle) and the checkpoint-rotation site (kCheckpointPrune):
// naming, counter exactness via AllCounts, and concurrency-safe arming.
// ---------------------------------------------------------------------------

TEST_F(FaultToleranceTest, DistFaultSitesHaveNames) {
  EXPECT_STREQ(util::FaultSiteName(FaultSite::kCommDrop), "comm-drop");
  EXPECT_STREQ(util::FaultSiteName(FaultSite::kCommCorrupt), "comm-corrupt");
  EXPECT_STREQ(util::FaultSiteName(FaultSite::kWorkerKill), "worker-kill");
  EXPECT_STREQ(util::FaultSiteName(FaultSite::kWorkerStraggle),
               "worker-straggle");
  EXPECT_STREQ(util::FaultSiteName(FaultSite::kCheckpointPrune),
               "checkpoint-prune");
  // Existing site numbering is stable: the dist sites appended after the
  // fleet sites, never renumbering them.
  EXPECT_EQ(static_cast<int>(FaultSite::kReplicaCanary), 9);
  EXPECT_EQ(static_cast<int>(FaultSite::kCommDrop), 10);
  EXPECT_EQ(static_cast<int>(FaultSite::kCheckpointPrune), 14);
}

TEST_F(FaultToleranceTest, DistSitesCountIndependentlyInAllCounts) {
  // Arm all four dist sites at once; firing one must not disturb the
  // counters of the others, and AllCounts must report each exactly.
  FaultInjector::Global().ArmAt(FaultSite::kCommDrop, {1});
  FaultInjector::Global().ArmAt(FaultSite::kCommCorrupt, {0, 2});
  FaultInjector::Global().ArmAt(FaultSite::kWorkerKill, {5});
  FaultInjector::Global().ArmAt(FaultSite::kWorkerStraggle, {0});
  for (int i = 0; i < 3; ++i) {
    util::MaybeInjectFault(FaultSite::kCommDrop);      // fires at 1
    util::MaybeInjectFault(FaultSite::kCommCorrupt);   // fires at 0, 2
  }
  util::MaybeInjectFault(FaultSite::kWorkerStraggle);  // fires at 0
  // kWorkerKill armed but never reached.

  const auto counts = FaultInjector::Global().AllCounts();
  ASSERT_EQ(counts.size(), static_cast<size_t>(util::kNumFaultSites));
  const auto& drop = counts[static_cast<size_t>(FaultSite::kCommDrop)];
  const auto& corrupt = counts[static_cast<size_t>(FaultSite::kCommCorrupt)];
  const auto& kill = counts[static_cast<size_t>(FaultSite::kWorkerKill)];
  const auto& straggle =
      counts[static_cast<size_t>(FaultSite::kWorkerStraggle)];
  EXPECT_EQ(drop.site, FaultSite::kCommDrop);
  EXPECT_EQ(drop.seen, 3);
  EXPECT_EQ(drop.fired, 1);
  EXPECT_EQ(corrupt.seen, 3);
  EXPECT_EQ(corrupt.fired, 2);
  EXPECT_EQ(kill.seen, 0);
  EXPECT_EQ(kill.fired, 0);
  EXPECT_EQ(straggle.seen, 1);
  EXPECT_EQ(straggle.fired, 1);
}

TEST_F(FaultToleranceTest, DistSiteCountsStayExactUnderConcurrentFire) {
  // Worker threads fire kWorkerKill concurrently, the way N training
  // ranks reach the step-boundary site in parallel.
  FaultInjector::Global().ArmAt(FaultSite::kWorkerKill, {0, 1000, 3999});
  constexpr int kThreads = 4;
  constexpr int64_t kFiresPerThread = 1000;
  std::atomic<int64_t> fired{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int64_t i = 0; i < kFiresPerThread; ++i) {
        if (util::MaybeInjectFault(FaultSite::kWorkerKill)) {
          fired.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto counts = FaultInjector::Global().AllCounts();
  const auto& kill = counts[static_cast<size_t>(FaultSite::kWorkerKill)];
  EXPECT_EQ(kill.seen, kThreads * kFiresPerThread);
  EXPECT_EQ(kill.fired, 3);
  EXPECT_EQ(fired.load(), 3);
}

// ---------------------------------------------------------------------------
// Checkpoint rotation: PruneCheckpoints and crash-mid-prune robustness.
// ---------------------------------------------------------------------------

TEST_F(FaultToleranceTest, PruneKeepsNewestAndSweepsStaleTmpFiles) {
  ScratchDir dir("tfmr_prune");
  util::Rng rng(12);
  nn::Mlp model(4, 8, 2, &rng);
  for (int64_t step : {0, 2, 4, 6}) {
    ASSERT_TRUE(
        SaveCheckpoint(model, dir.path() + "/" + CheckpointFileName(step))
            .ok());
  }
  // Torn-write debris and an unrelated file: the former is swept, the
  // latter untouched.
  { std::ofstream(dir.path() + "/ckpt_000000008.tfmr.tmp") << "torn"; }
  { std::ofstream(dir.path() + "/notes.txt") << "keep me"; }

  ASSERT_TRUE(PruneCheckpoints(dir.path(), 2).ok());

  std::vector<std::string> left;
  for (const auto& e : fs::directory_iterator(dir.path())) {
    left.push_back(e.path().filename().string());
  }
  std::sort(left.begin(), left.end());
  EXPECT_EQ(left, (std::vector<std::string>{
                      "ckpt_000000004.tfmr", "ckpt_000000006.tfmr",
                      "notes.txt"}));
}

TEST_F(FaultToleranceTest, CrashMidPruneNeverConfusesLatestCheckpoint) {
  ScratchDir dir("tfmr_prune_crash");
  util::Rng rng(13);
  nn::Mlp model(4, 8, 2, &rng);
  for (int64_t step : {0, 2, 4, 6}) {
    ASSERT_TRUE(
        SaveCheckpoint(model, dir.path() + "/" + CheckpointFileName(step))
            .ok());
  }
  // The sweep dies on its second unlink: step 0 is gone, step 2 survives.
  FaultInjector::Global().ArmAt(FaultSite::kCheckpointPrune, {1});
  util::Status s = PruneCheckpoints(dir.path(), 1);
  EXPECT_EQ(s.code(), util::StatusCode::kIOError);
  FaultInjector::Global().Disarm();

  // Oldest-first deletion means the newest checkpoint is always intact,
  // and the leftovers are all loadable checkpoints — no partial state.
  auto latest = LatestCheckpoint(dir.path());
  ASSERT_TRUE(latest.ok());
  EXPECT_NE(latest.value().find("ckpt_000000006.tfmr"), std::string::npos);
  EXPECT_TRUE(ValidateCheckpoint(latest.value()).ok());
  EXPECT_FALSE(fs::exists(dir.path() + "/" + CheckpointFileName(0)));
  EXPECT_TRUE(fs::exists(dir.path() + "/" + CheckpointFileName(2)));

  // The next (un-faulted) prune finishes the job.
  ASSERT_TRUE(PruneCheckpoints(dir.path(), 1).ok());
  size_t kept = 0;
  for (const auto& e : fs::directory_iterator(dir.path())) {
    (void)e;
    ++kept;
  }
  EXPECT_EQ(kept, 1u);
}

TEST_F(FaultToleranceTest, TrainerRotationSurvivesCrashMidPrune) {
  ScratchDir dir("tfmr_prune_trainer");
  TrainerOptions base;
  base.max_steps = 6;
  base.checkpoint_every = 2;
  base.keep_last_k = 2;
  TrainRig r = MakeRun(49, base, dir.path());

  // Saves land at steps 0, 2, 4, 6; the first over-budget unlink happens
  // during the save at step 4 and is made to crash. The run must finish,
  // the incident must be recorded, and the final state must be resumable.
  FaultInjector::Global().ArmAt(FaultSite::kCheckpointPrune, {0});
  util::Status s =
      r.trainer->Run(MakeLossFn(r.model.get(), r.data_rng.get()));
  ASSERT_TRUE(s.ok()) << s;
  ASSERT_EQ(r.trainer->incidents().size(), 1u);
  EXPECT_EQ(r.trainer->incidents()[0].kind, "checkpoint-write");
  EXPECT_NE(r.trainer->incidents()[0].detail.find("kCheckpointPrune"),
            std::string::npos)
      << r.trainer->incidents()[0].detail;
  ASSERT_EQ(r.trainer->history().size(), 6u);

  // The later prune (step 6's save) finished the rotation; the newest
  // checkpoint is the final one and loads cleanly.
  auto latest = LatestCheckpoint(dir.path());
  ASSERT_TRUE(latest.ok());
  TrainRig fresh = MakeRun(490, base, dir.path());
  ASSERT_TRUE(fresh.trainer->ResumeFrom(latest.value()).ok());
  EXPECT_EQ(fresh.trainer->start_step(), 6);
  size_t kept = 0;
  for (const auto& e : fs::directory_iterator(dir.path())) {
    if (e.path().filename().string().rfind("ckpt_", 0) == 0) ++kept;
  }
  EXPECT_EQ(kept, 2u);
}

}  // namespace
}  // namespace llm::train
