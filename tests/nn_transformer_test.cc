// Tests for the GPT model: config validation, shapes, causality at the
// model level, activation capture, interventions, weight tying, parameter
// accounting, and trainability (loss decreases on a memorizable task).
#include <gtest/gtest.h>

#include "nn/param_count.h"
#include "nn/transformer.h"
#include "train/optimizer.h"

namespace llm::nn {
namespace {

GPTConfig TinyConfig() {
  GPTConfig cfg;
  cfg.vocab_size = 11;
  cfg.max_seq_len = 8;
  cfg.d_model = 16;
  cfg.n_layer = 2;
  cfg.n_head = 2;
  return cfg;
}

TEST(GPTConfigTest, ValidatesDimensions) {
  GPTConfig cfg = TinyConfig();
  EXPECT_TRUE(cfg.Validate().ok());
  cfg.n_head = 3;  // 16 % 3 != 0
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = TinyConfig();
  cfg.vocab_size = 0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = TinyConfig();
  cfg.dropout = 1.5f;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(GPTConfigTest, HiddenDimDefaultsTo4x) {
  GPTConfig cfg = TinyConfig();
  EXPECT_EQ(cfg.hidden_dim(), 64);
  cfg.d_hidden = 32;
  EXPECT_EQ(cfg.hidden_dim(), 32);
}

TEST(GPTModelTest, LogitsShape) {
  util::Rng rng(1);
  GPTModel model(TinyConfig(), &rng);
  std::vector<int64_t> tokens(2 * 5, 3);
  core::Variable logits = model.ForwardLogits(tokens, 2, 5);
  EXPECT_EQ(logits.shape(), (core::Shape{10, 11}));
}

TEST(GPTModelTest, CausalAtModelLevel) {
  // Changing a later token must not change earlier logits.
  util::Rng rng(2);
  GPTModel model(TinyConfig(), &rng);
  std::vector<int64_t> a = {1, 2, 3, 4, 5, 6};
  std::vector<int64_t> b = {1, 2, 3, 9, 9, 9};
  core::Tensor la = model.ForwardLogits(a, 1, 6).value();
  core::Tensor lb = model.ForwardLogits(b, 1, 6).value();
  for (int64_t r = 0; r < 3; ++r) {
    for (int64_t v = 0; v < 11; ++v) {
      EXPECT_FLOAT_EQ(la.At({r, v}), lb.At({r, v})) << r << "," << v;
    }
  }
  // ...but later logits do change.
  float diff = 0;
  for (int64_t v = 0; v < 11; ++v) {
    diff += std::fabs(la.At({4, v}) - lb.At({4, v}));
  }
  EXPECT_GT(diff, 1e-4f);
}

TEST(GPTModelTest, ParamCountMatchesAnalytic) {
  for (bool attn_only : {false, true}) {
    for (bool tied : {false, true}) {
      for (bool learned_pos : {false, true}) {
        GPTConfig cfg = TinyConfig();
        cfg.attention_only = attn_only;
        cfg.tie_embeddings = tied;
        cfg.learned_positional = learned_pos;
        util::Rng rng(3);
        GPTModel model(cfg, &rng);
        EXPECT_EQ(model.NumParameters(), AnalyticGptParamCount(cfg))
            << "attn_only=" << attn_only << " tied=" << tied
            << " learned_pos=" << learned_pos;
      }
    }
  }
}

TEST(GPTModelTest, TiedEmbeddingsShareWeights) {
  GPTConfig cfg = TinyConfig();
  cfg.tie_embeddings = true;
  util::Rng rng(4);
  GPTModel model(cfg, &rng);
  // Gradient flows into the embedding from both uses.
  std::vector<int64_t> tokens = {1, 2, 3, 4};
  std::vector<int64_t> targets = {2, 3, 4, 5};
  core::Variable loss = model.LmLoss(tokens, targets, 1, 4);
  core::Backward(loss);
  EXPECT_GT(model.token_embedding().weight().grad().MaxAbs(), 0.0f);
}

TEST(GPTModelTest, SinusoidalPositionsAreFrozen) {
  GPTConfig cfg = TinyConfig();
  cfg.learned_positional = false;
  util::Rng rng(5);
  GPTModel model(cfg, &rng);
  // NamedParameters must not include pos_emb.
  for (const auto& [name, v] : model.NamedParameters()) {
    EXPECT_EQ(name.find("pos_emb"), std::string::npos);
  }
}

TEST(GPTModelTest, ActivationCaptureShapes) {
  util::Rng rng(6);
  GPTModel model(TinyConfig(), &rng);
  ActivationCapture cap;
  cap.capture_attention = true;
  ForwardOptions opts;
  opts.capture = &cap;
  std::vector<int64_t> tokens = {1, 2, 3, 4, 5, 6};
  model.ForwardLogits(tokens, 1, 6, opts);
  ASSERT_EQ(cap.residual.size(), 3u);  // embedding + 2 blocks
  EXPECT_EQ(cap.residual[0].shape(), (core::Shape{1, 6, 16}));
  ASSERT_EQ(cap.attention.size(), 2u);
  EXPECT_EQ(cap.attention[0].shape(), (core::Shape{1, 2, 6, 6}));
}

TEST(GPTModelTest, ForwardFromLayerMatchesFullForward) {
  util::Rng rng(7);
  GPTModel model(TinyConfig(), &rng);
  std::vector<int64_t> tokens = {1, 2, 3, 4};
  ActivationCapture cap;
  ForwardOptions opts;
  opts.capture = &cap;
  core::Tensor full = model.ForwardLogits(tokens, 1, 4, opts).value();
  // Resume from the residual stream after block 0 == apply blocks 1..N.
  core::Tensor resumed =
      model.ForwardFromLayer(cap.residual[1], 1).value();
  EXPECT_LT(core::Tensor::MaxAbsDiff(full, resumed), 1e-5f);
}

TEST(GPTModelTest, InterventionChangesPredictions) {
  util::Rng rng(8);
  GPTModel model(TinyConfig(), &rng);
  std::vector<int64_t> tokens = {1, 2, 3, 4};
  ActivationCapture cap;
  ForwardOptions opts;
  opts.capture = &cap;
  core::Tensor before = model.ForwardLogits(tokens, 1, 4, opts).value();
  core::Tensor edited = cap.residual[1].value();
  // Non-uniform edit: a uniform shift would be removed by layer norm.
  for (int64_t c = 0; c < 16; ++c) {
    edited.At({0, 3, c}) += (c % 2 == 0) ? 2.0f : -2.0f;
  }
  core::Tensor after =
      model.ForwardFromLayer(core::Variable(edited), 1).value();
  EXPECT_GT(core::Tensor::MaxAbsDiff(before, after), 1e-3f);
}

TEST(GPTModelTest, LossDecreasesOnMemorization) {
  GPTConfig cfg = TinyConfig();
  cfg.d_model = 32;
  util::Rng rng(9);
  GPTModel model(cfg, &rng);
  std::vector<int64_t> tokens = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int64_t> targets = {2, 3, 4, 5, 6, 7, 8, 9};
  train::AdamWOptions aopts;
  aopts.lr = 1e-2f;
  train::AdamW opt(model.Parameters(), aopts);
  float first = 0, last = 0;
  for (int step = 0; step < 60; ++step) {
    core::Variable loss = model.LmLoss(tokens, targets, 1, 8);
    if (step == 0) first = loss.value()[0];
    last = loss.value()[0];
    opt.ZeroGrad();
    core::Backward(loss);
    opt.Step();
  }
  EXPECT_LT(last, first * 0.2f) << "first " << first << " last " << last;
}

TEST(GPTModelTest, PostLnVariantRuns) {
  GPTConfig cfg = TinyConfig();
  cfg.pre_layernorm = false;
  util::Rng rng(10);
  GPTModel model(cfg, &rng);
  std::vector<int64_t> tokens = {1, 2, 3};
  core::Variable logits = model.ForwardLogits(tokens, 1, 3);
  EXPECT_EQ(logits.shape(), (core::Shape{3, 11}));
}

TEST(GPTModelTest, WindowedAttentionVariantRuns) {
  GPTConfig cfg = TinyConfig();
  cfg.attention_window = 2;
  util::Rng rng(11);
  GPTModel model(cfg, &rng);
  std::vector<int64_t> tokens = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_EQ(model.ForwardLogits(tokens, 1, 8).shape(),
            (core::Shape{8, 11}));
}

TEST(GPTModelTest, DropoutTrainingIsStochastic) {
  GPTConfig cfg = TinyConfig();
  cfg.dropout = 0.3f;
  util::Rng rng(12);
  GPTModel model(cfg, &rng);
  std::vector<int64_t> tokens = {1, 2, 3};
  util::Rng drop_rng(13);
  ForwardOptions opts;
  opts.training = true;
  opts.rng = &drop_rng;
  core::Tensor a = model.ForwardLogits(tokens, 1, 3, opts).value();
  core::Tensor b = model.ForwardLogits(tokens, 1, 3, opts).value();
  EXPECT_GT(core::Tensor::MaxAbsDiff(a, b), 1e-5f);
  // Eval mode is deterministic.
  core::Tensor c = model.ForwardLogits(tokens, 1, 3).value();
  core::Tensor d = model.ForwardLogits(tokens, 1, 3).value();
  EXPECT_EQ(core::Tensor::MaxAbsDiff(c, d), 0.0f);
}

}  // namespace
}  // namespace llm::nn
