// Tests for ROUGE text-overlap metrics and tokenizer persistence.
#include <gtest/gtest.h>

#include <cstdio>

#include "eval/rouge.h"
#include "text/persistence.h"

namespace llm {
namespace {

TEST(RougeNTest, IdenticalSequencesScoreOne) {
  std::vector<int64_t> s = {1, 2, 3, 4, 5};
  for (int n : {1, 2, 3}) {
    auto r = eval::RougeN(s, s, n);
    ASSERT_TRUE(r.ok());
    EXPECT_DOUBLE_EQ(r->precision, 1.0);
    EXPECT_DOUBLE_EQ(r->recall, 1.0);
    EXPECT_DOUBLE_EQ(r->f1, 1.0);
  }
}

TEST(RougeNTest, DisjointSequencesScoreZero) {
  auto r = eval::RougeN({1, 2, 3}, {4, 5, 6}, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->f1, 0.0);
}

TEST(RougeNTest, UnigramCountsMatchManual) {
  // candidate: {1, 1, 2}; reference: {1, 2, 2, 3}.
  // clipped matches: min(2,1) for "1" + min(1,2) for "2" = 2.
  // precision 2/3; recall 2/4.
  auto r = eval::RougeN({1, 1, 2}, {1, 2, 2, 3}, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->precision, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(r->recall, 0.5, 1e-12);
}

TEST(RougeNTest, BigramOrderMatters) {
  // Same unigrams, different order: bigram overlap drops.
  auto uni = eval::RougeN({1, 2, 3}, {3, 2, 1}, 1);
  auto bi = eval::RougeN({1, 2, 3}, {3, 2, 1}, 2);
  ASSERT_TRUE(uni.ok() && bi.ok());
  EXPECT_DOUBLE_EQ(uni->f1, 1.0);
  EXPECT_DOUBLE_EQ(bi->f1, 0.0);
}

TEST(RougeNTest, MultiReferenceTakesBestClip) {
  std::vector<std::vector<int64_t>> refs = {{1, 2}, {3, 4}};
  auto r = eval::RougeN({1, 2, 3, 4}, refs, 2);
  ASSERT_TRUE(r.ok());
  // Candidate bigrams: (1,2), (2,3), (3,4); matches: (1,2) and (3,4).
  EXPECT_NEAR(r->precision, 2.0 / 3.0, 1e-12);
}

TEST(RougeNTest, RejectsBadInput) {
  EXPECT_FALSE(eval::RougeN({}, std::vector<int64_t>{}, 1).ok());
  EXPECT_FALSE(
      eval::RougeN({1}, std::vector<int64_t>{1}, 0).ok());
}

TEST(RougeLTest, SubsequenceNotSubstring) {
  // LCS of {1,9,2,8,3} and {1,2,3} is {1,2,3}.
  auto r = eval::RougeL({1, 9, 2, 8, 3}, {1, 2, 3});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->recall, 1.0, 1e-12);
  EXPECT_NEAR(r->precision, 3.0 / 5.0, 1e-12);
}

TEST(PersistenceTest, VocabRoundTrip) {
  text::Vocab v;
  v.Encode({"the", "cat", "sat"});
  const std::string path = "/tmp/tfmr_vocab_test.txt";
  ASSERT_TRUE(text::SaveVocab(v, path).ok());
  auto loaded = text::LoadVocab(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 3);
  EXPECT_EQ(loaded->IdOf("cat"), 1);
  EXPECT_EQ(loaded->TokenOf(2), "sat");
  std::remove(path.c_str());
}

TEST(PersistenceTest, LoadVocabMissingFileFails) {
  EXPECT_EQ(text::LoadVocab("/tmp/definitely_missing_vocab.txt")
                .status()
                .code(),
            util::StatusCode::kIOError);
}

TEST(PersistenceTest, BpeMergesRoundTripPreservesEncoding) {
  std::string corpus;
  for (int i = 0; i < 20; ++i) corpus += "low lower lowest newest ";
  text::Bpe bpe;
  bpe.Train(corpus, 25);
  const std::string path = "/tmp/tfmr_merges_test.txt";
  ASSERT_TRUE(text::SaveBpeMerges(bpe, path).ok());
  auto loaded = text::LoadBpeMerges(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->merges(), bpe.merges());
  for (const char* w : {"low", "lowest", "newest", "unseen"}) {
    EXPECT_EQ(loaded->EncodeWord(w), bpe.EncodeWord(w)) << w;
  }
  std::remove(path.c_str());
}

TEST(PersistenceTest, MalformedMergesRejected) {
  const std::string path = "/tmp/tfmr_bad_merges.txt";
  FILE* f = fopen(path.c_str(), "w");
  fputs("a b\nno_space_here\n", f);
  fclose(f);
  EXPECT_EQ(text::LoadBpeMerges(path).status().code(),
            util::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace llm
