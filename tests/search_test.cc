// Tests for beam search and self-consistency decoding.
#include <gtest/gtest.h>

#include <cmath>

#include "sample/sampler.h"
#include "sample/search.h"
#include "train/optimizer.h"

namespace llm::sample {
namespace {

nn::GPTModel TrainCycle(util::Rng* rng) {
  // Memorize the cycle 0 1 2 3 4 5 6 7 -> deterministic continuations.
  nn::GPTConfig cfg;
  cfg.vocab_size = 8;
  cfg.max_seq_len = 12;
  cfg.d_model = 32;
  cfg.n_layer = 2;
  cfg.n_head = 2;
  nn::GPTModel model(cfg, rng);
  std::vector<int64_t> tokens = {0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<int64_t> targets = {1, 2, 3, 4, 5, 6, 7, 0};
  train::AdamWOptions aopts;
  aopts.lr = 1e-2f;
  train::AdamW opt(model.Parameters(), aopts);
  for (int step = 0; step < 120; ++step) {
    core::Variable loss = model.LmLoss(tokens, targets, 1, 8);
    opt.ZeroGrad();
    core::Backward(loss);
    opt.Step();
  }
  return model;
}

TEST(BeamSearchTest, TopBeamMatchesGreedyOnPeakedModel) {
  util::Rng rng(1);
  nn::GPTModel model = TrainCycle(&rng);
  BeamSearchOptions opts;
  opts.beam_width = 3;
  opts.max_new_tokens = 5;
  auto beams = BeamSearch(model, {0}, opts);
  ASSERT_FALSE(beams.empty());
  EXPECT_EQ(beams[0].tokens, (std::vector<int64_t>{1, 2, 3, 4, 5}));
  // Beams are sorted by score.
  for (size_t i = 1; i < beams.size(); ++i) {
    EXPECT_GE(beams[i - 1].score, beams[i].score);
  }
  // Log prob of the confident path is near 0 (probability near 1).
  EXPECT_GT(beams[0].log_prob, std::log(0.5));
}

TEST(BeamSearchTest, ReturnsAtMostBeamWidth) {
  util::Rng rng(2);
  nn::GPTModel model = TrainCycle(&rng);
  BeamSearchOptions opts;
  opts.beam_width = 4;
  opts.max_new_tokens = 3;
  auto beams = BeamSearch(model, {2}, opts);
  EXPECT_LE(beams.size(), 4u);
  EXPECT_GE(beams.size(), 1u);
}

TEST(BeamSearchTest, StopTokenFinishesBeams) {
  util::Rng rng(3);
  nn::GPTModel model = TrainCycle(&rng);
  BeamSearchOptions opts;
  opts.beam_width = 2;
  opts.max_new_tokens = 6;
  opts.stop_token = 3;  // the cycle reaches 3 from prefix {0} in 3 steps
  auto beams = BeamSearch(model, {0}, opts);
  ASSERT_FALSE(beams.empty());
  EXPECT_EQ(beams[0].tokens, (std::vector<int64_t>{1, 2, 3}));
}

TEST(BeamSearchTest, LogProbsAreConsistentWithModel) {
  // Sum of per-step log-softmax values along the top beam must match the
  // beam's reported log_prob.
  util::Rng rng(4);
  nn::GPTModel model = TrainCycle(&rng);
  BeamSearchOptions opts;
  opts.beam_width = 2;
  opts.max_new_tokens = 3;
  auto beams = BeamSearch(model, {0}, opts);
  ASSERT_FALSE(beams.empty());
  std::vector<int64_t> sequence = {0};
  double manual = 0.0;
  for (int64_t tok : beams[0].tokens) {
    const auto T = static_cast<int64_t>(sequence.size());
    core::Variable logits = model.ForwardLogits(sequence, 1, T);
    const float* row = logits.value().data() + (T - 1) * 8;
    float maxv = row[0];
    for (int v = 1; v < 8; ++v) maxv = std::max(maxv, row[v]);
    double sum = 0;
    for (int v = 0; v < 8; ++v) sum += std::exp(row[v] - maxv);
    manual += row[tok] - (std::log(sum) + maxv);
    sequence.push_back(tok);
  }
  EXPECT_NEAR(beams[0].log_prob, manual, 1e-4);
}

TEST(SelfConsistencyTest, MajorityVoteOnPeakedModel) {
  util::Rng rng(5);
  nn::GPTModel model = TrainCycle(&rng);
  SelfConsistencyOptions opts;
  opts.num_samples = 7;
  opts.temperature = 0.5f;
  opts.max_new_tokens = 1;
  util::Rng sample_rng(6);
  // Answer = the single generated token; after 0 1 2 3 4 it should be 5.
  const int64_t answer = SelfConsistentAnswer(
      model, {0, 1, 2, 3, 4},
      [](const std::vector<int64_t>& out) {
        return out.empty() ? -1 : out[0];
      },
      opts, &sample_rng);
  EXPECT_EQ(answer, 5);
}

TEST(SelfConsistencyTest, NoAnswerReturnsMinusOne) {
  util::Rng rng(7);
  nn::GPTModel model = TrainCycle(&rng);
  SelfConsistencyOptions opts;
  opts.num_samples = 3;
  util::Rng sample_rng(8);
  const int64_t answer = SelfConsistentAnswer(
      model, {0}, [](const std::vector<int64_t>&) { return int64_t{-1}; },
      opts, &sample_rng);
  EXPECT_EQ(answer, -1);
}

}  // namespace
}  // namespace llm::sample
