// Tests for the replicated serving fleet (src/serve/fleet): circuit
// breaker state machine, health-routed failover, hedged-request
// bit-exactness, and zero-downtime rolling reload with rollback.
// Registered under the `fleet` ctest label; the `tsan-fleet` preset runs
// it under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "sample/sampler.h"
#include "serve/fleet/circuit_breaker.h"
#include "serve/fleet/replica_router.h"
#include "train/checkpoint.h"
#include "util/fault.h"
#include "util/rng.h"

namespace llm::serve {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;
using std::chrono::milliseconds;

nn::GPTConfig SmallConfig() {
  nn::GPTConfig cfg;
  cfg.vocab_size = 19;
  cfg.max_seq_len = 16;
  cfg.d_model = 24;
  cfg.n_layer = 2;
  cfg.n_head = 3;
  return cfg;
}

GenerateRequest MakeRequest(std::vector<int64_t> prompt, uint64_t seed,
                            int64_t max_new = 8) {
  GenerateRequest request;
  request.prompt = std::move(prompt);
  request.seed = seed;
  request.max_new_tokens = max_new;
  request.sampler.temperature = 0.8f;
  request.sampler.top_k = 7;
  return request;
}

std::vector<int64_t> SingleStreamReference(const nn::GPTModel& model,
                                           const GenerateRequest& request) {
  sample::GenerateOptions opts;
  opts.max_new_tokens = request.max_new_tokens;
  opts.sampler = request.sampler;
  opts.stop_token = request.stop_token;
  util::Rng rng(request.seed);
  return sample::GenerateCached(model, request.prompt, opts, &rng);
}

FleetOptions SmallFleet(int replicas = 2) {
  FleetOptions options;
  options.num_replicas = replicas;
  options.server.max_batch_size = 4;
  options.server.queue_capacity = 32;
  options.server.num_workers = 0;
  return options;
}

class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_((fs::temp_directory_path() / name).string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

class FleetTest : public ::testing::Test {
 protected:
  void TearDown() override { util::FaultInjector::Global().Disarm(); }
};

// --- CircuitBreaker --------------------------------------------------------

TEST(CircuitBreakerTest, TripsAtFailureRateAndCoolsDownThroughHalfOpen) {
  CircuitBreakerOptions options;
  options.window = 8;
  options.min_events = 4;
  options.failure_threshold = 0.5;
  options.cooldown = milliseconds(100);
  options.probe_successes = 2;
  CircuitBreaker breaker(options);
  const auto t0 = Clock::now();

  // Below min_events: even 100% failures don't trip.
  EXPECT_TRUE(breaker.Allow(t0));
  breaker.RecordFailure(t0);
  breaker.RecordFailure(t0);
  breaker.RecordFailure(t0);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);

  // Fourth failure: 4/4 >= 0.5 with min_events met -> open.
  breaker.RecordFailure(t0);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.opens(), 1u);
  EXPECT_FALSE(breaker.Allow(t0));
  EXPECT_FALSE(breaker.Allow(t0 + milliseconds(99)));

  // Cooldown elapsed: exactly one probe is granted.
  const auto t1 = t0 + milliseconds(101);
  EXPECT_TRUE(breaker.Allow(t1));
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_FALSE(breaker.Allow(t1));  // probe still in flight

  // Probe succeeds; a second probe is granted and also succeeds -> closed.
  breaker.RecordSuccess();
  EXPECT_TRUE(breaker.Allow(t1));
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);

  // The cleared window means the old failures don't linger.
  breaker.RecordFailure(t1);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, FailedProbeReopensAndRestartsCooldown) {
  CircuitBreakerOptions options;
  options.window = 4;
  options.min_events = 2;
  options.failure_threshold = 0.5;
  options.cooldown = milliseconds(100);
  CircuitBreaker breaker(options);
  const auto t0 = Clock::now();
  breaker.RecordFailure(t0);
  breaker.RecordFailure(t0);
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);

  const auto t1 = t0 + milliseconds(150);
  ASSERT_TRUE(breaker.Allow(t1));
  breaker.RecordFailure(t1);  // probe fails
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.opens(), 2u);
  // Cooldown restarted from t1, not t0.
  EXPECT_FALSE(breaker.Allow(t1 + milliseconds(99)));
  EXPECT_TRUE(breaker.Allow(t1 + milliseconds(101)));
}

TEST(CircuitBreakerTest, AbortProbeUnreservesTheGrant) {
  CircuitBreakerOptions options;
  options.window = 4;
  options.min_events = 2;
  options.cooldown = milliseconds(10);
  CircuitBreaker breaker(options);
  const auto t0 = Clock::now();
  breaker.RecordFailure(t0);
  breaker.RecordFailure(t0);
  const auto t1 = t0 + milliseconds(11);
  ASSERT_TRUE(breaker.Allow(t1));
  ASSERT_FALSE(breaker.Allow(t1));
  breaker.AbortProbe();  // never dispatched (e.g. queue full)
  EXPECT_TRUE(breaker.Allow(t1));  // grant is available again
}

TEST(CircuitBreakerTest, ResetReturnsToFreshClosed) {
  CircuitBreakerOptions options;
  options.window = 4;
  options.min_events = 2;
  CircuitBreaker breaker(options);
  const auto t0 = Clock::now();
  breaker.RecordFailure(t0);
  breaker.RecordFailure(t0);
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  breaker.Reset();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.Allow(t0));
  breaker.RecordFailure(t0);  // window cleared: one failure can't trip
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, SlidingWindowEvictsOldOutcomes) {
  CircuitBreakerOptions options;
  options.window = 4;
  options.min_events = 4;
  options.failure_threshold = 0.5;
  CircuitBreaker breaker(options);
  const auto t0 = Clock::now();
  // Two failures, then four successes push them out of the window.
  breaker.RecordFailure(t0);
  breaker.RecordFailure(t0);
  for (int i = 0; i < 4; ++i) breaker.RecordSuccess();
  // Window is now all-success; one more failure is 1/4 < 0.5.
  breaker.RecordFailure(t0);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

// --- Routing & bit-exactness -----------------------------------------------

TEST_F(FleetTest, FleetServesBitExactAgainstSingleStream) {
  util::Rng rng(7);
  nn::GPTModel model(SmallConfig(), &rng);
  ReplicaRouter router(model, SmallFleet(2));
  router.Start();

  std::vector<GenerateRequest> requests;
  requests.push_back(MakeRequest({3, 1, 4, 1, 5}, 1));
  requests.push_back(MakeRequest({2, 7}, 2, 10));
  requests.push_back(MakeRequest({9, 9, 8}, 3));
  requests.push_back(MakeRequest({0}, 4, 12));
  requests.push_back(MakeRequest({11, 16, 13}, 5));
  requests.push_back(MakeRequest({1}, 6, 3));

  std::vector<RequestId> ids;
  for (const auto& request : requests) {
    auto id = router.Submit(request);
    ASSERT_TRUE(id.ok()) << id.status();
    ids.push_back(id.value());
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    auto result = router.Wait(ids[i]);
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_TRUE(result.value().status.ok()) << result.value().status;
    EXPECT_EQ(result.value().tokens, SingleStreamReference(model, requests[i]))
        << "request " << i;
  }
  const FleetStats stats = router.Stats();
  EXPECT_EQ(stats.submitted, requests.size());
  EXPECT_EQ(stats.completed, requests.size());
  EXPECT_EQ(stats.failed, 0u);
  router.Shutdown();
  // Per-replica slot conservation at quiescence.
  for (int i = 0; i < router.num_replicas(); ++i) {
    const ServerStats rs = router.replica_stats(i);
    EXPECT_EQ(rs.free_slots, rs.total_slots) << "replica " << i;
  }
}

TEST_F(FleetTest, StreamingDeliversExactPrefixOnceAcrossFleet) {
  util::Rng rng(7);
  nn::GPTModel model(SmallConfig(), &rng);
  ReplicaRouter router(model, SmallFleet(2));
  router.Start();

  GenerateRequest request = MakeRequest({5, 2, 8}, 77, 10);
  std::mutex mu;
  std::vector<int64_t> streamed;
  request.on_token = [&](RequestId, int64_t token) {
    std::lock_guard<std::mutex> lock(mu);
    streamed.push_back(token);
  };
  const RequestResult result = router.GenerateBlocking(request);
  ASSERT_TRUE(result.status.ok()) << result.status;
  EXPECT_EQ(streamed, result.tokens);
}

// --- Failover --------------------------------------------------------------

TEST_F(FleetTest, KilledReplicaFailsOverWithZeroFailedRequests) {
  util::Rng rng(7);
  nn::GPTModel model(SmallConfig(), &rng);
  ReplicaRouter router(model, SmallFleet(2));
  router.Start();

  std::vector<GenerateRequest> requests;
  std::vector<RequestId> ids;
  for (int i = 0; i < 8; ++i) {
    requests.push_back(
        MakeRequest({static_cast<int64_t>(1 + i)}, 100 + i, 12));
    auto id = router.Submit(requests.back());
    ASSERT_TRUE(id.ok()) << id.status();
    ids.push_back(id.value());
  }
  router.KillReplica(0);
  EXPECT_EQ(router.replica_phase(0), ReplicaPhase::kDead);

  for (size_t i = 0; i < ids.size(); ++i) {
    auto result = router.Wait(ids[i]);
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_TRUE(result.value().status.ok())
        << "request " << i << ": " << result.value().status;
    // Failover re-runs from the seed: output is bit-identical to a run
    // that never saw the kill.
    EXPECT_EQ(result.value().tokens, SingleStreamReference(model, requests[i]))
        << "request " << i;
  }
  const FleetStats stats = router.Stats();
  EXPECT_EQ(stats.completed, 8u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST_F(FleetTest, TenantClassSurvivesFailover) {
  // Batch-class requests in flight when their replica dies must be
  // re-dispatched WITH their tenant class: if the tag were dropped, the
  // retries would land in the default (chat) lane and the surviving
  // replica's per-class accounting would drift.
  util::Rng rng(7);
  nn::GPTModel model(SmallConfig(), &rng);
  ReplicaRouter router(model, SmallFleet(2));
  router.Start();

  std::vector<GenerateRequest> requests;
  std::vector<RequestId> ids;
  for (int i = 0; i < 8; ++i) {
    GenerateRequest request =
        MakeRequest({static_cast<int64_t>(1 + i)}, 300 + i, 12);
    request.tenant = TenantClass::kBatch;
    requests.push_back(request);
    auto id = router.Submit(requests.back());
    ASSERT_TRUE(id.ok()) << id.status();
    ids.push_back(id.value());
  }
  router.KillReplica(0);

  for (size_t i = 0; i < ids.size(); ++i) {
    auto result = router.Wait(ids[i]);
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_TRUE(result.value().status.ok())
        << "request " << i << ": " << result.value().status;
    EXPECT_EQ(result.value().tokens, SingleStreamReference(model, requests[i]))
        << "request " << i;
  }
  const FleetStats stats = router.Stats();
  EXPECT_EQ(stats.completed, 8u);
  EXPECT_EQ(stats.failed, 0u);

  // Every completion is attributed to the batch class on whichever
  // replica served it; none drifted back to the default chat lane.
  uint64_t batch_completed = 0;
  uint64_t chat_completed = 0;
  for (int r = 0; r < router.num_replicas(); ++r) {
    const ServerStats replica = router.replica_stats(r);
    batch_completed +=
        replica.classes[static_cast<size_t>(TenantClass::kBatch)].completed;
    chat_completed +=
        replica.classes[static_cast<size_t>(TenantClass::kChat)].completed;
  }
  EXPECT_EQ(batch_completed, 8u);
  EXPECT_EQ(chat_completed, 0u);
}

TEST_F(FleetTest, PreemptedAttemptRetriesWithPriorityIntact) {
  // A chat arrival preempts a batch decode on the fleet's only replica.
  // The router treats the preemption as policy, not failure: no breaker
  // penalty, and the re-dispatched attempt keeps its batch class — the
  // client ends up with a completed, bit-exact result.
  util::Rng rng(8);
  nn::GPTModel model(SmallConfig(), &rng);
  FleetOptions options = SmallFleet(1);
  options.server.max_batch_size = 1;  // chat can only run by preempting
  ReplicaRouter router(model, options);
  router.Start();

  GenerateRequest batch = MakeRequest({2, 3}, 400, 12);
  batch.tenant = TenantClass::kBatch;
  const std::vector<int64_t> reference = SingleStreamReference(model, batch);
  GenerateRequest slow_batch = batch;
  slow_batch.on_token = [](RequestId, int64_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(4));
  };
  auto batch_id = router.Submit(slow_batch);
  ASSERT_TRUE(batch_id.ok()) << batch_id.status();
  std::this_thread::sleep_for(std::chrono::milliseconds(15));  // decoding

  GenerateRequest chat = MakeRequest({5}, 401, 3);
  chat.tenant = TenantClass::kChat;
  RequestResult chat_result = router.GenerateBlocking(chat);
  EXPECT_TRUE(chat_result.status.ok()) << chat_result.status.ToString();

  auto batch_result = router.Wait(batch_id.value());
  ASSERT_TRUE(batch_result.ok()) << batch_result.status();
  EXPECT_TRUE(batch_result.value().status.ok())
      << batch_result.value().status.ToString();
  EXPECT_EQ(batch_result.value().reason, FinishReason::kLength);
  // The retry re-ran from the seed: bit-identical despite the preemption.
  EXPECT_EQ(batch_result.value().tokens, reference);

  const FleetStats stats = router.Stats();
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.preempted, 0u);  // the FINAL outcome was a completion
  EXPECT_EQ(router.replica_phase(0), ReplicaPhase::kActive);  // no breaker

  const ServerStats replica = router.replica_stats(0);
  const TenantClassStats& batch_stats =
      replica.classes[static_cast<size_t>(TenantClass::kBatch)];
  EXPECT_EQ(batch_stats.preempted, 1u);   // the displaced first attempt
  EXPECT_GE(batch_stats.submitted, 2u);   // re-dispatch kept the class
  EXPECT_EQ(
      replica.classes[static_cast<size_t>(TenantClass::kChat)].completed, 1u);
}

TEST_F(FleetTest, PoisonedReplicaTripsBreakerAndReloadHeals) {
  util::Rng rng(7);
  nn::GPTModel model(SmallConfig(), &rng);
  FleetOptions options = SmallFleet(2);
  options.breaker.window = 8;
  // min_events = 1 keeps this deterministic: the first dispatch always
  // lands on idle replica 0 (index tie-break) and its fault trips the
  // breaker immediately. With a higher floor the test would depend on
  // how many dispatches beat the sticky degraded-health mark — once it
  // sets, healthy-first routing starves replica 0 of further attempts.
  // Windowing semantics are covered by the CircuitBreakerTest units.
  options.breaker.min_events = 1;
  options.breaker.failure_threshold = 0.5;
  options.breaker.cooldown = milliseconds(60000);  // no probes mid-test
  ReplicaRouter router(model, options);
  router.Start();
  router.PoisonReplica(0, true);

  // Concurrent burst: replica 0 faults everything it touches, the fleet
  // still completes everything via failover to replica 1.
  std::vector<GenerateRequest> requests;
  std::vector<RequestId> ids;
  for (int i = 0; i < 12; ++i) {
    requests.push_back(MakeRequest({static_cast<int64_t>(1 + i % 17)},
                                   200 + i, 8));
    auto id = router.Submit(requests.back());
    ASSERT_TRUE(id.ok()) << id.status();
    ids.push_back(id.value());
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    auto result = router.Wait(ids[i]);
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_TRUE(result.value().status.ok())
        << "request " << i << ": " << result.value().status;
    EXPECT_EQ(result.value().tokens,
              SingleStreamReference(model, requests[i]));
  }
  FleetStats stats = router.Stats();
  EXPECT_EQ(stats.completed, 12u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(router.breaker_state(0), BreakerState::kOpen)
      << "replica 0's breaker should have tripped on repeated faults";

  // Rolling reload rebuilds replica 0's server (clearing the poison) and
  // resets its breaker: the fleet is fully healed.
  ScratchDir dir("tfmr_fleet_heal");
  const std::string path = dir.path() + "/weights.tfmr";
  ASSERT_TRUE(train::SaveCheckpoint(model, path).ok());
  ASSERT_TRUE(router.ReloadModel(path).ok());
  EXPECT_EQ(router.breaker_state(0), BreakerState::kClosed);
  EXPECT_EQ(router.replica_weights_version(0), 2u);

  GenerateRequest after = MakeRequest({4, 4}, 999, 6);
  const RequestResult healed = router.GenerateBlocking(after);
  ASSERT_TRUE(healed.status.ok()) << healed.status;
  EXPECT_EQ(healed.tokens, SingleStreamReference(model, after));
  EXPECT_EQ(router.Stats().failed, 0u);
}

// --- Hedging ---------------------------------------------------------------

TEST_F(FleetTest, HedgeWinsOverStalledPrimaryWithExactPrefix) {
  util::Rng rng(7);
  nn::GPTModel model(SmallConfig(), &rng);
  FleetOptions options = SmallFleet(2);
  options.hedge_delay = milliseconds(2);
  ReplicaRouter router(model, options);
  router.Start();

  // The first tick with active work stalls 30ms: the primary attempt
  // outlives the hedge delay, the hedge lands on the sibling and wins.
  util::FaultInjector::Global().ArmAt(util::FaultSite::kWorkerStall, {0});
  GenerateRequest request = MakeRequest({6, 3, 2}, 42, 10);
  const RequestResult result = router.GenerateBlocking(request);
  ASSERT_TRUE(result.status.ok()) << result.status;
  EXPECT_EQ(result.tokens, SingleStreamReference(model, request));

  router.Shutdown();  // collects the cancelled loser for verification
  const FleetStats stats = router.Stats();
  EXPECT_GE(stats.hedges_launched, 1u);
  EXPECT_GE(stats.hedges_won, 1u);
  EXPECT_EQ(stats.hedge_mismatches, 0u)
      << "loser's partial output must be a bit-exact prefix of the winner";
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST_F(FleetTest, HedgeFullVerifyConfirmsBitIdenticalCompletions) {
  util::Rng rng(7);
  nn::GPTModel model(SmallConfig(), &rng);
  FleetOptions options = SmallFleet(2);
  options.hedge_delay = milliseconds(2);
  options.hedge_verify_full = true;  // loser runs to completion
  ReplicaRouter router(model, options);
  router.Start();

  util::FaultInjector::Global().ArmAt(util::FaultSite::kWorkerStall, {0});
  GenerateRequest request = MakeRequest({8, 1}, 314, 10);
  const RequestResult result = router.GenerateBlocking(request);
  ASSERT_TRUE(result.status.ok()) << result.status;
  EXPECT_EQ(result.tokens, SingleStreamReference(model, request));

  // Give the loser time to finish, then drain so it is collected.
  ASSERT_TRUE(router.Drain(milliseconds(5000)).ok());
  const FleetStats stats = router.Stats();
  EXPECT_GE(stats.hedges_launched, 1u);
  EXPECT_EQ(stats.hedge_mismatches, 0u)
      << "primary and hedge must produce bit-identical full outputs";
}

// --- Rolling reload --------------------------------------------------------

TEST_F(FleetTest, RollingReloadUnderLoadHasZeroFailedRequests) {
  util::Rng rng(7);
  nn::GPTModel model(SmallConfig(), &rng);
  ReplicaRouter router(model, SmallFleet(2));
  router.Start();

  ScratchDir dir("tfmr_fleet_reload");
  const std::string path = dir.path() + "/weights.tfmr";
  ASSERT_TRUE(train::SaveCheckpoint(model, path).ok());

  // Two submitters hammer the fleet while the weights roll.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> client_failures{0};
  auto submitter = [&](uint64_t seed_base) {
    uint64_t n = 0;
    while (!stop.load(std::memory_order_acquire)) {
      GenerateRequest request =
          MakeRequest({static_cast<int64_t>(1 + n % 17)}, seed_base + n, 6);
      const RequestResult result = router.GenerateBlocking(request);
      if (!result.status.ok()) {
        client_failures.fetch_add(1, std::memory_order_relaxed);
      }
      ++n;
    }
  };
  std::thread c1(submitter, 1000);
  std::thread c2(submitter, 2000);

  std::this_thread::sleep_for(milliseconds(30));
  ASSERT_TRUE(router.ReloadModel(path).ok());  // roll 1
  std::this_thread::sleep_for(milliseconds(30));
  ASSERT_TRUE(router.ReloadModel(path).ok());  // roll 2
  std::this_thread::sleep_for(milliseconds(30));
  stop.store(true, std::memory_order_release);
  c1.join();
  c2.join();

  const FleetStats stats = router.Stats();
  EXPECT_EQ(client_failures.load(), 0u)
      << "rolling reload must not fail a single client request";
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GT(stats.completed, 0u);
  EXPECT_EQ(stats.reloads, 4u);  // 2 replicas x 2 rolls
  EXPECT_EQ(stats.reload_failures, 0u);
  EXPECT_EQ(router.replica_weights_version(0), 3u);
  EXPECT_EQ(router.replica_weights_version(1), 3u);

  // The checkpoint held the same weights, so post-reload outputs are
  // bit-identical to the prototype's.
  GenerateRequest probe = MakeRequest({2, 9}, 555, 8);
  const RequestResult result = router.GenerateBlocking(probe);
  ASSERT_TRUE(result.status.ok()) << result.status;
  EXPECT_EQ(result.tokens, SingleStreamReference(model, probe));
}

TEST_F(FleetTest, CorruptedCheckpointIsRejectedAndRolledBack) {
  util::Rng rng(7);
  nn::GPTModel model(SmallConfig(), &rng);
  ReplicaRouter router(model, SmallFleet(2));
  router.Start();

  ScratchDir dir("tfmr_fleet_corrupt");
  const std::string path = dir.path() + "/weights.tfmr";
  ASSERT_TRUE(train::SaveCheckpoint(model, path).ok());
  // Flip one byte inside the tensor data: the per-tensor CRC32 catches it
  // during validation, before any drain or swap.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(0, std::ios::end);
    const auto size = static_cast<int64_t>(f.tellg());
    f.seekp(size / 2);
    char byte = 0;
    f.seekg(size / 2);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    f.seekp(size / 2);
    f.write(&byte, 1);
  }

  const util::Status reload = router.ReloadModel(path);
  EXPECT_FALSE(reload.ok());
  const FleetStats stats = router.Stats();
  EXPECT_EQ(stats.reload_failures, 1u);
  EXPECT_EQ(stats.reloads, 0u);
  EXPECT_EQ(router.replica_weights_version(0), 1u);

  // The fleet still serves, bit-identical to the untouched weights.
  GenerateRequest probe = MakeRequest({7, 7, 7}, 808, 8);
  const RequestResult result = router.GenerateBlocking(probe);
  ASSERT_TRUE(result.status.ok()) << result.status;
  EXPECT_EQ(result.tokens, SingleStreamReference(model, probe));
  EXPECT_EQ(router.replica_phase(0), ReplicaPhase::kActive);
  EXPECT_EQ(router.replica_phase(1), ReplicaPhase::kActive);
}

TEST_F(FleetTest, CanaryFailureRollsBackTheSwap) {
  util::Rng rng(7);
  nn::GPTModel model(SmallConfig(), &rng);
  ReplicaRouter router(model, SmallFleet(2));
  router.Start();

  ScratchDir dir("tfmr_fleet_canary");
  const std::string path = dir.path() + "/weights.tfmr";
  ASSERT_TRUE(train::SaveCheckpoint(model, path).ok());

  // The checkpoint validates and loads, but the post-swap canary fails:
  // the replica must restore its previous weights and return to service.
  util::FaultInjector::Global().ArmAt(util::FaultSite::kReplicaCanary, {0});
  const util::Status reload = router.ReloadModel(path);
  EXPECT_FALSE(reload.ok());
  EXPECT_EQ(router.replica_weights_version(0), 1u);
  EXPECT_EQ(router.Stats().reload_failures, 1u);
  util::FaultInjector::Global().Disarm();

  GenerateRequest probe = MakeRequest({12, 3}, 606, 8);
  const RequestResult result = router.GenerateBlocking(probe);
  ASSERT_TRUE(result.status.ok()) << result.status;
  EXPECT_EQ(result.tokens, SingleStreamReference(model, probe));

  // With the injection gone the same reload succeeds.
  ASSERT_TRUE(router.ReloadModel(path).ok());
  EXPECT_EQ(router.replica_weights_version(0), 2u);
  EXPECT_EQ(router.replica_weights_version(1), 2u);
}

// --- Lifecycle -------------------------------------------------------------

TEST_F(FleetTest, DrainFinishesOutstandingWorkAndClosesAdmission) {
  util::Rng rng(7);
  nn::GPTModel model(SmallConfig(), &rng);
  ReplicaRouter router(model, SmallFleet(2));
  router.Start();

  std::vector<RequestId> ids;
  for (int i = 0; i < 4; ++i) {
    auto id = router.Submit(MakeRequest({static_cast<int64_t>(2 + i)},
                                        700 + i, 10));
    ASSERT_TRUE(id.ok()) << id.status();
    ids.push_back(id.value());
  }
  ASSERT_TRUE(router.Drain(milliseconds(10000)).ok());
  EXPECT_EQ(router.Submit(MakeRequest({1}, 1)).status().code(),
            util::StatusCode::kFailedPrecondition);
  for (RequestId id : ids) {
    auto result = router.Wait(id);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_TRUE(result.value().status.ok()) << result.value().status;
  }
  const FleetStats stats = router.Stats();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.completed, 4u);
}

TEST_F(FleetTest, ShutdownReleasesEveryWaiter) {
  util::Rng rng(7);
  nn::GPTModel model(SmallConfig(), &rng);
  ReplicaRouter router(model, SmallFleet(2));
  router.Start();

  std::vector<RequestId> ids;
  for (int i = 0; i < 6; ++i) {
    auto id = router.Submit(MakeRequest({static_cast<int64_t>(3 + i)},
                                        800 + i, 12));
    ASSERT_TRUE(id.ok()) << id.status();
    ids.push_back(id.value());
  }
  router.Shutdown();
  uint64_t terminal = 0;
  for (RequestId id : ids) {
    auto result = router.Wait(id);
    ASSERT_TRUE(result.ok()) << result.status();
    ++terminal;
  }
  EXPECT_EQ(terminal, ids.size());
  const FleetStats stats = router.Stats();
  EXPECT_EQ(stats.submitted, 6u);
  EXPECT_EQ(stats.completed + stats.cancelled + stats.expired + stats.failed,
            stats.submitted);
}

}  // namespace
}  // namespace llm::serve
