// Edge-case and corner-condition tests across modules: degenerate shapes,
// unit-rule chains, multi-direction flips, CSV round trips, tie-breaking
// determinism, and boundary parameter values.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "core/ops.h"
#include "eval/power_law.h"
#include "grammar/cnf.h"
#include "grammar/earley.h"
#include "nn/param_count.h"
#include "othello/othello.h"
#include "sample/sampler.h"
#include "text/bpe.h"
#include "util/table.h"

namespace llm {
namespace {

// ---------------------------------------------------------------------------
// core: degenerate shapes.
// ---------------------------------------------------------------------------

TEST(CoreEdge, SoftmaxSingleColumnIsOne) {
  core::Variable x(core::Tensor::FromVector({3, 1}, {5.0f, -2.0f, 0.0f}));
  core::Tensor y = core::Softmax(x).value();
  for (int64_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(y[i], 1.0f);
}

TEST(CoreEdge, MatMulWithUnitDims) {
  core::Variable a(core::Tensor::FromVector({1, 3}, {1, 2, 3}));
  core::Variable b(core::Tensor::FromVector({3, 1}, {4, 5, 6}));
  core::Tensor c = core::MatMul(a, b).value();
  EXPECT_EQ(c.shape(), (core::Shape{1, 1}));
  EXPECT_FLOAT_EQ(c[0], 32.0f);
}

TEST(CoreEdge, ReshapeToScalarLikeShape) {
  core::Variable x(core::Tensor::FromVector({1, 1}, {7.0f}));
  core::Variable y = core::Reshape(x, {1});
  EXPECT_FLOAT_EQ(y.value()[0], 7.0f);
}

TEST(CoreEdge, CrossEntropyExtremeLogitsFinite) {
  core::Variable logits(
      core::Tensor::FromVector({1, 3}, {1000.0f, -1000.0f, 0.0f}), true);
  core::Variable loss = core::CrossEntropyLogits(logits, {0});
  EXPECT_TRUE(std::isfinite(loss.value()[0]));
  EXPECT_NEAR(loss.value()[0], 0.0f, 1e-5f);
  core::Backward(loss);
  EXPECT_TRUE(std::isfinite(logits.grad().MaxAbs()));
}

TEST(CoreEdge, GeluIsZeroCenteredAndMonotoneish) {
  core::Variable x(core::Tensor::FromVector({1}, {0.0f}));
  EXPECT_FLOAT_EQ(core::Gelu(x).value()[0], 0.0f);
  core::Variable big(core::Tensor::FromVector({1}, {10.0f}));
  EXPECT_NEAR(core::Gelu(big).value()[0], 10.0f, 1e-3f);
}

// ---------------------------------------------------------------------------
// grammar: unit-rule chains through CNF.
// ---------------------------------------------------------------------------

TEST(GrammarEdge, UnitChainProbabilityComposes) {
  // S -> A (1.0); A -> B (0.5) | a (0.5); B -> b (1.0).
  // P("b") = 0.5, P("a") = 0.5.
  grammar::Grammar g;
  ASSERT_TRUE(g.AddRule("S", {"A"}, 1.0).ok());
  ASSERT_TRUE(g.AddRule("A", {"B"}, 1.0).ok());
  ASSERT_TRUE(g.AddRule("A", {"a"}, 1.0).ok());
  ASSERT_TRUE(g.AddRule("B", {"b"}, 1.0).ok());
  ASSERT_TRUE(g.Finalize("S").ok());
  auto cnf = grammar::ToCnf(g);
  ASSERT_TRUE(cnf.ok());
  const int a = g.TerminalId("a"), b = g.TerminalId("b");
  EXPECT_NEAR(grammar::InsideLogProb(*cnf, {a}), std::log(0.5), 1e-9);
  EXPECT_NEAR(grammar::InsideLogProb(*cnf, {b}), std::log(0.5), 1e-9);
}

TEST(GrammarEdge, UnitCycleRejected) {
  // A -> B (1.0); B -> A (1.0): all probability mass cycles forever.
  grammar::Grammar g;
  ASSERT_TRUE(g.AddRule("A", {"B"}, 1.0).ok());
  ASSERT_TRUE(g.AddRule("B", {"A"}, 1.0).ok());
  ASSERT_TRUE(g.Finalize("A").ok());
  EXPECT_FALSE(grammar::ToCnf(g).ok());
}

TEST(GrammarEdge, LongRhsBinarizes) {
  grammar::Grammar g;
  ASSERT_TRUE(g.AddRule("S", {"a", "b", "c", "d", "e"}, 1.0).ok());
  ASSERT_TRUE(g.Finalize("S").ok());
  auto cnf = grammar::ToCnf(g);
  ASSERT_TRUE(cnf.ok());
  std::vector<int> sentence;
  for (const char* t : {"a", "b", "c", "d", "e"}) {
    sentence.push_back(g.TerminalId(t));
  }
  EXPECT_NEAR(grammar::InsideLogProb(*cnf, sentence), 0.0, 1e-9);
  // Wrong order rejected.
  std::swap(sentence[0], sentence[4]);
  EXPECT_EQ(grammar::InsideLogProb(*cnf, sentence),
            -std::numeric_limits<double>::infinity());
}

TEST(GrammarEdge, EarleySingleTokenSentence) {
  grammar::Grammar g = grammar::ArithmeticGrammar();
  grammar::EarleyParser parser(&g);
  auto ids = parser.TerminalIds("x");
  ASSERT_TRUE(ids.ok());
  EXPECT_TRUE(parser.Recognize(*ids));
  auto tree = parser.Parse(*ids);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(grammar::Grammar::TreeLeaves(**tree).size(), 1u);
}

// ---------------------------------------------------------------------------
// othello: a constructed multi-direction flip.
// ---------------------------------------------------------------------------

TEST(OthelloEdge, SequencesProduceKnownCounts) {
  // A known short opening: D3, C5, and check disc counts step by step.
  othello::Board b;
  ASSERT_TRUE(b.Apply(19).ok());  // D3 by black: flips D4
  EXPECT_EQ(b.CountDiscs(othello::Cell::kBlack), 4);
  EXPECT_EQ(b.CountDiscs(othello::Cell::kWhite), 1);
  // White C5 (index 34): flips D5 (35).
  ASSERT_TRUE(b.Apply(34).ok());
  EXPECT_EQ(b.CountDiscs(othello::Cell::kWhite), 3);
  EXPECT_EQ(b.CountDiscs(othello::Cell::kBlack), 3);
  EXPECT_EQ(b.at(35), othello::Cell::kWhite);
}

// ---------------------------------------------------------------------------
// util: CSV, formatting.
// ---------------------------------------------------------------------------

TEST(TableEdge, WriteCsvRoundTrip) {
  util::Table t({"x", "y"});
  t.AddRow({"1", "2.5"});
  t.AddRow({"3", "4.5"});
  const std::string path = "/tmp/tfmr_table_test.csv";
  ASSERT_TRUE(t.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2.5");
  std::remove(path.c_str());
}

TEST(TableEdge, RejectsCommaCells) {
  util::Table t({"a"});
  EXPECT_DEATH(t.AddRow({"has,comma"}), "separator");
}

TEST(FormatEdge, FloatPrecision) {
  EXPECT_EQ(util::FormatFloat(3.14159, 2), "3.14");
  EXPECT_EQ(util::FormatFloat(-0.5, 1), "-0.5");
}

// ---------------------------------------------------------------------------
// text: BPE determinism.
// ---------------------------------------------------------------------------

TEST(BpeEdge, TrainingIsDeterministic) {
  const std::string corpus = "ab ab abc abc abcd bc bc cd";
  text::Bpe a, b;
  a.Train(corpus, 15);
  b.Train(corpus, 15);
  EXPECT_EQ(a.merges(), b.merges());
}

TEST(BpeEdge, SingleCharWordSurvives) {
  text::Bpe bpe;
  bpe.Train("a a a b", 5);
  auto sym = bpe.EncodeWord("a");
  ASSERT_EQ(sym.size(), 1u);
  EXPECT_EQ(sym[0], std::string("a") + text::Bpe::kEndOfWord);
}

// ---------------------------------------------------------------------------
// eval: ansatz and power-law sanity at boundaries.
// ---------------------------------------------------------------------------

TEST(PowerLawEdge, AnsatzMonotoneInBothArguments) {
  eval::AnsatzFit fit;
  fit.pc = 1e4;
  fit.dc = 1e4;
  fit.alpha_p = 0.5;
  fit.alpha_d = 0.5;
  fit.floor = 1.0;
  EXPECT_GT(eval::AnsatzLoss(fit, 1e3, 1e4),
            eval::AnsatzLoss(fit, 1e5, 1e4));
  EXPECT_GT(eval::AnsatzLoss(fit, 1e4, 1e3),
            eval::AnsatzLoss(fit, 1e4, 1e5));
  EXPECT_GT(eval::AnsatzLoss(fit, 1e9, 1e9), fit.floor);
}

TEST(PowerLawEdge, FitRejectsTooFewPointsForAnsatz) {
  std::vector<eval::ScalingPoint> points = {
      {1e3, 1e3, 2.0}, {1e4, 1e4, 1.5}};
  EXPECT_FALSE(eval::FitAnsatz(points).ok());
}

// ---------------------------------------------------------------------------
// nn: Table 1 specs and the parameter rule.
// ---------------------------------------------------------------------------

TEST(ParamCountEdge, Table1SpecsWellFormed) {
  auto specs = nn::Table1Specs();
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_EQ(specs[0].name, "GPT");
  EXPECT_EQ(specs.back().name, "GPT-4");
  for (size_t i = 1; i < specs.size(); ++i) {
    EXPECT_GE(specs[i].year, specs[i - 1].year);         // Table 1 is by year
    EXPECT_GT(specs[i].reported_params, specs[i - 1].reported_params);
  }
}

TEST(ParamCountEdge, RuleWithinFortyPercentForPublished) {
  for (const auto& spec : nn::Table1Specs()) {
    if (spec.n_layer == 0) continue;
    const double est = nn::TwelveDPSquaredRule(spec.n_layer, spec.d_model);
    EXPECT_LT(std::fabs(est - spec.reported_params) / spec.reported_params,
              0.4)
        << spec.name;
  }
}

// ---------------------------------------------------------------------------
// sample: boundary temperature / truncation combos.
// ---------------------------------------------------------------------------

TEST(SamplerEdge, TopKOneIsGreedy) {
  const float logits[] = {0.1f, 3.0f, 1.0f};
  sample::SamplerOptions opts;
  opts.top_k = 1;
  auto p = sample::DistributionFromLogits(logits, 3, opts);
  EXPECT_FLOAT_EQ(p[1], 1.0f);
}

TEST(SamplerEdge, TopPTinyKeepsOnlyArgmax) {
  const float logits[] = {0.0f, 4.0f, 0.0f};
  sample::SamplerOptions opts;
  opts.top_p = 1e-6f;
  auto p = sample::DistributionFromLogits(logits, 3, opts);
  EXPECT_FLOAT_EQ(p[1], 1.0f);
}

}  // namespace
}  // namespace llm
