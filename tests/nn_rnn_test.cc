// Tests for the recurrent models (RNN / LSTM, Eq. 12) and the FFN L-gram
// model of §5.
#include <gtest/gtest.h>

#include "nn/ffn_lm.h"
#include "nn/rnn.h"
#include "train/optimizer.h"

namespace llm::nn {
namespace {

TEST(RnnCellTest, StateUpdateShapesAndBounds) {
  util::Rng rng(1);
  RnnCell cell(4, 8, &rng);
  core::Variable x(core::Tensor::Ones({2, 4}));
  core::Variable h(core::Tensor({2, 8}));
  core::Variable h2 = cell.Forward(x, h);
  EXPECT_EQ(h2.shape(), (core::Shape{2, 8}));
  EXPECT_LE(h2.value().MaxAbs(), 1.0f);  // tanh-bounded
}

TEST(LstmCellTest, GatesKeepCellBounded) {
  util::Rng rng(2);
  LstmCell cell(4, 8, &rng);
  LstmCell::State s{core::Variable(core::Tensor({1, 8})),
                    core::Variable(core::Tensor({1, 8}))};
  core::Variable x(core::Tensor::Full({1, 4}, 2.0f));
  for (int t = 0; t < 20; ++t) s = cell.Forward(x, s);
  EXPECT_LE(s.h.value().MaxAbs(), 1.0f);   // |h| <= tanh bound
  EXPECT_LE(s.c.value().MaxAbs(), 25.0f);  // cell grows at most linearly
}

TEST(RnnLmTest, LogitsShape) {
  RnnLmConfig cfg;
  cfg.vocab_size = 9;
  cfg.d_model = 12;
  util::Rng rng(3);
  RnnLm model(cfg, &rng);
  std::vector<int64_t> tokens(2 * 5, 1);
  EXPECT_EQ(model.ForwardLogits(tokens, 2, 5).shape(),
            (core::Shape{10, 9}));
}

TEST(RnnLmTest, CausalByConstruction) {
  RnnLmConfig cfg;
  cfg.vocab_size = 9;
  cfg.d_model = 12;
  util::Rng rng(4);
  RnnLm model(cfg, &rng);
  std::vector<int64_t> a = {1, 2, 3, 4};
  std::vector<int64_t> b = {1, 2, 8, 8};
  core::Tensor la = model.ForwardLogits(a, 1, 4).value();
  core::Tensor lb = model.ForwardLogits(b, 1, 4).value();
  for (int64_t v = 0; v < 9; ++v) {
    EXPECT_FLOAT_EQ(la.At({1, v}), lb.At({1, v}));
  }
}

template <typename ModelT>
float TrainRepeatingPattern(ModelT* model, int steps) {
  // Pattern ababab... is learnable by any of the sequence models.
  std::vector<int64_t> tokens = {0, 1, 0, 1, 0, 1, 0, 1};
  std::vector<int64_t> targets = {1, 0, 1, 0, 1, 0, 1, 0};
  train::AdamWOptions opts;
  opts.lr = 1e-2f;
  train::AdamW adam(model->Parameters(), opts);
  float last = 0;
  for (int s = 0; s < steps; ++s) {
    core::Variable loss = model->LmLoss(tokens, targets, 1, 8);
    last = loss.value()[0];
    adam.ZeroGrad();
    core::Backward(loss);
    adam.Step();
  }
  return last;
}

TEST(RnnLmTest, TanhRnnLearnsAlternation) {
  RnnLmConfig cfg;
  cfg.vocab_size = 4;
  cfg.d_model = 16;
  cfg.cell = RecurrentCellType::kTanhRnn;
  util::Rng rng(5);
  RnnLm model(cfg, &rng);
  EXPECT_LT(TrainRepeatingPattern(&model, 80), 0.2f);
}

TEST(RnnLmTest, LstmLearnsAlternation) {
  RnnLmConfig cfg;
  cfg.vocab_size = 4;
  cfg.d_model = 16;
  cfg.cell = RecurrentCellType::kLstm;
  util::Rng rng(6);
  RnnLm model(cfg, &rng);
  EXPECT_LT(TrainRepeatingPattern(&model, 80), 0.2f);
}

TEST(RnnLmTest, LstmHasMoreParamsThanRnn) {
  RnnLmConfig cfg;
  cfg.vocab_size = 9;
  cfg.d_model = 12;
  util::Rng rng(7);
  RnnLm rnn(cfg, &rng);
  cfg.cell = RecurrentCellType::kLstm;
  RnnLm lstm(cfg, &rng);
  EXPECT_GT(lstm.NumParameters(), rnn.NumParameters());
}

TEST(FfnLmTest, ContextWindowShapes) {
  FfnLmConfig cfg;
  cfg.vocab_size = 7;
  cfg.context = 3;
  cfg.d_embed = 4;
  cfg.d_hidden = 16;
  util::Rng rng(8);
  FfnLm model(cfg, &rng);
  std::vector<int64_t> contexts = {0, 1, 2, 3, 4, 5};  // two 3-grams
  EXPECT_EQ(model.ForwardLogits(contexts, 2).shape(), (core::Shape{2, 7}));
}

TEST(FfnLmTest, LearnsDeterministicMap) {
  // Context (a, b) -> target (a + b) mod V is learnable.
  FfnLmConfig cfg;
  cfg.vocab_size = 5;
  cfg.context = 2;
  cfg.d_embed = 8;
  cfg.d_hidden = 32;
  util::Rng rng(9);
  FfnLm model(cfg, &rng);
  std::vector<int64_t> contexts, targets;
  for (int64_t a = 0; a < 5; ++a) {
    for (int64_t b = 0; b < 5; ++b) {
      contexts.push_back(a);
      contexts.push_back(b);
      targets.push_back((a + b) % 5);
    }
  }
  train::AdamWOptions opts;
  opts.lr = 1e-2f;
  train::AdamW adam(model.Parameters(), opts);
  float last = 0;
  for (int s = 0; s < 150; ++s) {
    core::Variable loss = model.Loss(contexts, targets, 25);
    last = loss.value()[0];
    adam.ZeroGrad();
    core::Backward(loss);
    adam.Step();
  }
  EXPECT_LT(last, 0.1f);
}

}  // namespace
}  // namespace llm::nn
