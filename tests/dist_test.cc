// Data-parallel training runtime tests: CommHub collectives (all-gather,
// deterministic all-reduce, poisoned-round timeouts, CRC detection,
// abort), ZeRO-1 ShardedAdamW (partition determinism, bit-exactness vs
// plain AdamW), and DistTrainer end-to-end — equal-global-batch
// equivalence with the single-process Trainer and checkpoint-based
// recovery from killed, stalled, and corrupted-collective workers.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "nn/layers.h"
#include "obs/flight_recorder.h"
#include "train/checkpoint.h"
#include "train/dist/comm.h"
#include "train/dist/dist_trainer.h"
#include "train/dist/sharded_adamw.h"
#include "train/optimizer.h"
#include "train/trainer.h"
#include "util/fault.h"
#include "util/rng.h"

namespace llm::train::dist {
namespace {

namespace fs = std::filesystem;
using util::FaultInjector;
using util::FaultSite;
using std::chrono::milliseconds;

/// Fresh scratch directory per test; removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_((fs::temp_directory_path() / name).string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

class DistTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().Disarm(); }
};

float MaxParamDiff(const nn::Module& a, const nn::Module& b) {
  auto pa = a.NamedParameters();
  auto pb = b.NamedParameters();
  EXPECT_EQ(pa.size(), pb.size());
  float worst = 0.0f;
  for (size_t i = 0; i < pa.size(); ++i) {
    worst = std::max(worst, core::Tensor::MaxAbsDiff(pa[i].second.value(),
                                                     pb[i].second.value()));
  }
  return worst;
}

// ---------------------------------------------------------------------------
// Equal-global-batch regression task. The global batch is derived from the
// step index alone, so every world size (and the single-process Trainer)
// consumes identical data; rank r of N takes the r-th slice of rows. The
// per-rank loss is the shard's SumAll scaled by N, so the all-reduced MEAN
// equals the single-process full-batch SumAll — same loss, same gradients
// (up to fp summation order at N > 1; bit-exact at N = 1).
// ---------------------------------------------------------------------------

constexpr int kIn = 4, kHidden = 8, kOut = 2;
constexpr int kGlobalBatch = 4;
constexpr uint64_t kDataSeed = 0xD157ull;

std::unique_ptr<nn::Module> MakeReplica() {
  util::Rng rng(7);
  return std::make_unique<nn::Mlp>(kIn, kHidden, kOut, &rng);
}

core::Tensor GlobalBatch(int64_t step) {
  util::Rng rng(kDataSeed +
                0x9E3779B97F4A7C15ull * (static_cast<uint64_t>(step) + 1));
  return core::Tensor::RandomNormal({kGlobalBatch, kIn}, &rng);
}

core::Variable ShardLoss(nn::Module& model, int rank, int world,
                         int64_t step) {
  core::Tensor full = GlobalBatch(step);
  const int rows = kGlobalBatch / world;
  core::Tensor shard({rows, kIn});
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < kIn; ++j) {
      shard[i * kIn + j] = full[(rank * rows + i) * kIn + j];
    }
  }
  core::Variable x(shard, false);
  core::Variable y = static_cast<nn::Mlp&>(model).Forward(x);
  core::Variable loss = core::SumAll(core::Mul(y, y));
  if (world == 1) return loss;  // identical graph to the single-process run
  core::Tensor scale = core::Tensor::Scalar(static_cast<float>(world));
  return core::Mul(loss, core::Variable(scale, false));
}

DistLossFn MakeDistLoss() {
  return [](nn::Module& model, const StepContext& ctx) {
    return ShardLoss(model, ctx.rank, ctx.world_size, ctx.step);
  };
}

DistTrainerOptions BaseOptions(int world, const std::string& dir) {
  DistTrainerOptions o;
  o.world_size = world;
  o.max_steps = 8;
  o.adamw.lr = 1e-2f;
  o.checkpoint_dir = dir;
  o.checkpoint_every = 3;
  o.keep_last_k = 2;
  o.collective_timeout = milliseconds(2000);
  o.heartbeat_timeout = milliseconds(10000);
  o.monitor_poll = milliseconds(1);
  o.max_recoveries = 10;
  return o;
}

// ---------------------------------------------------------------------------
// CommHub collectives.
// ---------------------------------------------------------------------------

TEST_F(DistTest, ExchangeGathersEveryRanksContribution) {
  CommHub hub(3);
  std::vector<std::vector<std::vector<float>>> got(3);
  std::vector<std::thread> ranks;
  for (int r = 0; r < 3; ++r) {
    ranks.emplace_back([&hub, &got, r] {
      auto result = hub.Exchange(
          r, /*seq=*/0, {static_cast<float>(r), static_cast<float>(10 * r)},
          milliseconds(2000));
      ASSERT_TRUE(result.ok()) << result.status();
      got[static_cast<size_t>(r)] = std::move(result).value();
    });
  }
  for (auto& t : ranks) t.join();
  for (int r = 0; r < 3; ++r) {
    ASSERT_EQ(got[static_cast<size_t>(r)].size(), 3u);
    for (int s = 0; s < 3; ++s) {
      const auto& buf = got[static_cast<size_t>(r)][static_cast<size_t>(s)];
      ASSERT_EQ(buf.size(), 2u);
      EXPECT_EQ(buf[0], static_cast<float>(s));
      EXPECT_EQ(buf[1], static_cast<float>(10 * s));
    }
  }
}

TEST_F(DistTest, AllReduceMeanIsBitIdenticalAcrossRanks) {
  constexpr int kWorld = 4;
  CommHub hub(kWorld);
  std::vector<std::vector<float>> data(kWorld);
  std::vector<std::thread> ranks;
  for (int r = 0; r < kWorld; ++r) {
    // Values chosen so fp summation order matters if it were per-rank.
    data[static_cast<size_t>(r)] = {1e-3f * static_cast<float>(r + 1),
                                    1e4f - static_cast<float>(r),
                                    -3.25f * static_cast<float>(r)};
    ranks.emplace_back([&hub, &data, r] {
      util::Status s = hub.AllReduceMean(r, /*seq=*/0,
                                         &data[static_cast<size_t>(r)],
                                         milliseconds(2000));
      ASSERT_TRUE(s.ok()) << s;
    });
  }
  for (auto& t : ranks) t.join();
  for (int r = 1; r < kWorld; ++r) {
    ASSERT_EQ(data[static_cast<size_t>(r)].size(), data[0].size());
    for (size_t j = 0; j < data[0].size(); ++j) {
      // Bit-identical, not just close: rank-ordered summation everywhere.
      EXPECT_EQ(data[static_cast<size_t>(r)][j], data[0][j]);
    }
  }
  // And the value is the rank-ordered mean.
  float expect0 = 0.0f;
  for (int r = 0; r < kWorld; ++r) {
    expect0 += 1e-3f * static_cast<float>(r + 1);
  }
  expect0 *= 1.0f / kWorld;
  EXPECT_EQ(data[0][0], expect0);
}

TEST_F(DistTest, TimeoutPoisonsRoundSoLateRanksFailFast) {
  CommHub hub(2);
  // Rank 0 waits alone and times out...
  util::Status first = hub.Barrier(/*rank=*/0, /*seq=*/7, milliseconds(50));
  EXPECT_EQ(first.code(), util::StatusCode::kDeadlineExceeded) << first;
  // ...and rank 1, arriving later, is cancelled immediately by the poison
  // instead of serving its own full timeout.
  const auto before = std::chrono::steady_clock::now();
  util::Status late = hub.Barrier(/*rank=*/1, /*seq=*/7, milliseconds(10000));
  EXPECT_EQ(late.code(), util::StatusCode::kCancelled) << late;
  EXPECT_LT(std::chrono::steady_clock::now() - before, milliseconds(5000));
}

TEST_F(DistTest, AbortAllCancelsWaitersAndResetRearms) {
  CommHub hub(2);
  util::Status blocked_result;
  std::thread waiter([&] {
    blocked_result = hub.Barrier(/*rank=*/0, /*seq=*/0, milliseconds(10000));
  });
  // Give the waiter time to block, then collapse the world.
  std::this_thread::sleep_for(milliseconds(20));
  hub.AbortAll();
  waiter.join();
  EXPECT_EQ(blocked_result.code(), util::StatusCode::kCancelled);
  // New rounds fail instantly while aborted.
  EXPECT_EQ(hub.Barrier(1, 1, milliseconds(1000)).code(),
            util::StatusCode::kCancelled);
  // Reset clears the latch: a full round completes again.
  hub.Reset();
  std::thread r0([&] {
    EXPECT_TRUE(hub.Barrier(0, 2, milliseconds(2000)).ok());
  });
  EXPECT_TRUE(hub.Barrier(1, 2, milliseconds(2000)).ok());
  r0.join();
}

TEST_F(DistTest, DroppedContributionFailsTheWholeRound) {
  CommHub hub(2);
  FaultInjector::Global().ArmAt(FaultSite::kCommDrop, {0});
  std::vector<util::Status> status(2);
  std::vector<std::thread> ranks;
  for (int r = 0; r < 2; ++r) {
    ranks.emplace_back([&hub, &status, r] {
      std::vector<float> data = {1.0f, 2.0f};
      status[static_cast<size_t>(r)] =
          hub.AllReduceMean(r, 0, &data, milliseconds(100));
    });
  }
  for (auto& t : ranks) t.join();
  for (int r = 0; r < 2; ++r) {
    const util::StatusCode code = status[static_cast<size_t>(r)].code();
    EXPECT_TRUE(code == util::StatusCode::kDeadlineExceeded ||
                code == util::StatusCode::kCancelled)
        << status[static_cast<size_t>(r)];
  }
  const auto counts = FaultInjector::Global().AllCounts();
  const auto& drop = counts[static_cast<size_t>(FaultSite::kCommDrop)];
  EXPECT_EQ(drop.seen, 2);
  EXPECT_EQ(drop.fired, 1);
}

TEST_F(DistTest, CorruptedContributionDetectedByChecksum) {
  CommHub hub(2);
  FaultInjector::Global().ArmAt(FaultSite::kCommCorrupt, {0});
  std::vector<util::Status> status(2);
  std::vector<std::thread> ranks;
  for (int r = 0; r < 2; ++r) {
    ranks.emplace_back([&hub, &status, r] {
      std::vector<float> data = {1.5f, -2.5f, 3.5f};
      status[static_cast<size_t>(r)] =
          hub.AllReduceMean(r, 0, &data, milliseconds(2000));
    });
  }
  for (auto& t : ranks) t.join();
  for (int r = 0; r < 2; ++r) {
    EXPECT_EQ(status[static_cast<size_t>(r)].code(),
              util::StatusCode::kInternal)
        << status[static_cast<size_t>(r)];
    EXPECT_NE(status[static_cast<size_t>(r)].message().find("checksum"),
              std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// ShardedAdamW: partition and update semantics.
// ---------------------------------------------------------------------------

TEST_F(DistTest, PartitionOwnersIsBalancedAndDeterministic) {
  auto model = MakeReplica();
  const auto params = model->Parameters();
  for (int world : {1, 2, 3, 4}) {
    const std::vector<int> owners =
        ShardedAdamW::PartitionOwners(params, world);
    ASSERT_EQ(owners.size(), params.size());
    std::vector<int64_t> load(static_cast<size_t>(world), 0);
    int64_t largest_param = 0;
    for (size_t i = 0; i < params.size(); ++i) {
      ASSERT_GE(owners[i], 0);
      ASSERT_LT(owners[i], world);
      load[static_cast<size_t>(owners[i])] += params[i].numel();
      largest_param = std::max(largest_param, params[i].numel());
    }
    const auto [lo, hi] = std::minmax_element(load.begin(), load.end());
    // Greedy balance: the spread never exceeds the largest single param.
    EXPECT_LE(*hi - *lo, largest_param);
    EXPECT_EQ(owners, ShardedAdamW::PartitionOwners(params, world));
  }
}

TEST_F(DistTest, WorldOneShardIsBitExactWithPlainAdamW) {
  auto ma = MakeReplica();
  auto mb = MakeReplica();
  AdamWOptions opts;
  opts.lr = 1e-2f;
  opts.weight_decay = 0.01f;
  AdamW plain(ma->Parameters(), opts);
  ShardedAdamW shard(mb->Parameters(), opts, /*rank=*/0, /*world_size=*/1);
  for (int64_t step = 0; step < 4; ++step) {
    core::Variable la = ShardLoss(*ma, 0, 1, step);
    core::Variable lb = ShardLoss(*mb, 0, 1, step);
    plain.ZeroGrad();
    shard.ZeroGrad();
    core::Backward(la);
    core::Backward(lb);
    plain.Step();
    shard.Step();
  }
  EXPECT_EQ(MaxParamDiff(*ma, *mb), 0.0f);
  EXPECT_EQ(shard.step_count(), plain.step_count());
}

TEST_F(DistTest, TwoShardsTogetherReproducePlainAdamW) {
  // Two replicas with identical weights and identical (full-batch) grads,
  // each stepping only its owned shard, together cover every parameter
  // with exactly the plain-AdamW update.
  auto mp = MakeReplica();
  auto m0 = MakeReplica();
  auto m1 = MakeReplica();
  AdamWOptions opts;
  opts.lr = 1e-2f;
  AdamW plain(mp->Parameters(), opts);
  ShardedAdamW s0(m0->Parameters(), opts, 0, 2);
  ShardedAdamW s1(m1->Parameters(), opts, 1, 2);
  for (int64_t step = 0; step < 3; ++step) {
    for (auto* m : {mp.get(), m0.get(), m1.get()}) {
      core::Variable loss = ShardLoss(*m, 0, 1, step);
      core::Backward(loss);  // grads identical across replicas
    }
    plain.Step();
    s0.Step();
    s1.Step();
    // Every param: the owner's replica matches the plain update bit for
    // bit (the non-owner replica is stale until the all-gather, which
    // this unit test performs by hand).
    const auto pp = mp->Parameters();
    const auto p0 = m0->Parameters();
    const auto p1 = m1->Parameters();
    for (size_t i = 0; i < pp.size(); ++i) {
      const auto& owned = s0.Owns(i) ? p0[i] : p1[i];
      EXPECT_EQ(core::Tensor::MaxAbsDiff(pp[i].value(), owned.value()), 0.0f)
          << "param " << i << " step " << step;
      // Hand all-gather: copy the owner's values to the stale replica.
      auto stale = s0.Owns(i) ? p1[i] : p0[i];
      stale.mutable_value() = owned.value();
    }
    plain.ZeroGrad();
    s0.ZeroGrad();
    s1.ZeroGrad();
  }
}

TEST_F(DistTest, ShardImportsFullAdamWStateAndExportsOwnedSlice) {
  auto ma = MakeReplica();
  auto mb = MakeReplica();
  AdamWOptions opts;
  AdamW plain(ma->Parameters(), opts);
  // Put some structure into the moments.
  core::Variable loss = ShardLoss(*ma, 0, 1, 0);
  core::Backward(loss);
  plain.Step();
  OptimizerState full = plain.ExportState();

  ShardedAdamW shard(mb->Parameters(), opts, /*rank=*/1, /*world_size=*/2);
  ASSERT_TRUE(shard.ImportState(full).ok());
  EXPECT_EQ(shard.step_count(), 1);
  // Wrong type is rejected.
  OptimizerState bad = full;
  bad.type = "sgd";
  EXPECT_FALSE(shard.ImportState(bad).ok());

  const OptimizerState owned = shard.ExportState();
  EXPECT_EQ(owned.type, "adamw-shard");
  EXPECT_EQ(owned.step, 1);
  size_t owned_count = 0;
  for (size_t i = 0; i < mb->Parameters().size(); ++i) {
    if (shard.Owns(i)) ++owned_count;
  }
  ASSERT_EQ(owned.slots.size(), 2 * owned_count);
  // Owned m slots carry the imported full-state values.
  const size_t n = ma->Parameters().size();
  size_t slot = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!shard.Owns(i)) continue;
    EXPECT_EQ(owned.slots[slot].first, "m/" + std::to_string(i));
    EXPECT_EQ(core::Tensor::MaxAbsDiff(owned.slots[slot].second,
                                       full.slots[i].second),
              0.0f);
    ++slot;
  }
}

// ---------------------------------------------------------------------------
// DistTrainer: equal-global-batch equivalence with the single-process
// Trainer.
// ---------------------------------------------------------------------------

TEST_F(DistTest, WorldOneIsBitExactWithSingleProcessTrainer) {
  ScratchDir dir_a("tfmr_dist_eq_a");
  ScratchDir dir_b("tfmr_dist_eq_b");

  util::Rng mr(7);
  nn::Mlp model(kIn, kHidden, kOut, &mr);
  AdamWOptions aopts;
  aopts.lr = 1e-2f;
  AdamW opt(model.Parameters(), aopts);
  TrainerOptions topts;
  topts.max_steps = 8;
  topts.checkpoint_dir = dir_a.path();
  topts.model = &model;
  Trainer trainer(&opt, topts);
  int64_t step = 0;
  ASSERT_TRUE(
      trainer.Run([&] { return ShardLoss(model, 0, 1, step++); }).ok());

  DistTrainer dist(BaseOptions(1, dir_b.path()), MakeReplica,
                   MakeDistLoss());
  util::Status s = dist.Run();
  ASSERT_TRUE(s.ok()) << s;

  EXPECT_EQ(MaxParamDiff(model, *dist.model(0)), 0.0f);
  ASSERT_EQ(dist.history().size(), trainer.history().size());
  for (size_t i = 0; i < trainer.history().size(); ++i) {
    EXPECT_EQ(dist.history()[i].step, trainer.history()[i].step);
    EXPECT_EQ(dist.history()[i].loss, trainer.history()[i].loss)
        << "step " << i;
    EXPECT_EQ(dist.history()[i].grad_norm, trainer.history()[i].grad_norm);
  }
}

TEST_F(DistTest, WiderWorldsMatchSingleProcessWithinTolerance) {
  ScratchDir dir_base("tfmr_dist_tol_base");
  DistTrainer baseline(BaseOptions(1, dir_base.path()), MakeReplica,
                       MakeDistLoss());
  ASSERT_TRUE(baseline.Run().ok());

  for (int world : {2, 4}) {
    ScratchDir dir("tfmr_dist_tol_w" + std::to_string(world));
    DistTrainer dist(BaseOptions(world, dir.path()), MakeReplica,
                     MakeDistLoss());
    util::Status s = dist.Run();
    ASSERT_TRUE(s.ok()) << "world " << world << ": " << s;
    // Same data, same math up to fp summation order: the loss curve and
    // final weights agree to a pinned tolerance, not just loosely.
    ASSERT_EQ(dist.history().size(), baseline.history().size());
    for (size_t i = 0; i < baseline.history().size(); ++i) {
      const float want = baseline.history()[i].loss;
      EXPECT_NEAR(dist.history()[i].loss, want,
                  1e-3f * (1.0f + std::abs(want)))
          << "world " << world << " step " << i;
    }
    EXPECT_LE(MaxParamDiff(*baseline.model(0), *dist.model(world - 1)),
              1e-3f)
        << "world " << world;
  }
}

// ---------------------------------------------------------------------------
// DistTrainer: recovery from injected incidents. Every faulted run must
// finish bit-identical to the unfaulted run — checkpoint replay is exact.
// ---------------------------------------------------------------------------

TEST_F(DistTest, KilledWorkerIsRecoveredFromCheckpointMidRun) {
  ScratchDir dir_ref("tfmr_dist_kill_ref");
  DistTrainerOptions ref_opts = BaseOptions(2, dir_ref.path());
  ref_opts.checkpoint_every = 2;
  DistTrainer reference(ref_opts, MakeReplica, MakeDistLoss());
  ASSERT_TRUE(reference.Run().ok());

  obs::FlightRecorder::Global().Clear();
  ScratchDir dir("tfmr_dist_kill");
  DistTrainerOptions opts = BaseOptions(2, dir.path());
  opts.checkpoint_every = 2;
  // Occurrence ~6 lands a few steps in, past the step-2 checkpoint.
  FaultInjector::Global().ArmAt(FaultSite::kWorkerKill, {6});
  DistTrainer dist(opts, MakeReplica, MakeDistLoss());
  util::Status s = dist.Run();
  ASSERT_TRUE(s.ok()) << s;
  FaultInjector::Global().Disarm();

  EXPECT_EQ(dist.recoveries(), 1);
  ASSERT_EQ(dist.incidents().size(), 1u);
  EXPECT_EQ(dist.incidents()[0].kind, "worker-death");
  EXPECT_NE(dist.incidents()[0].action.find("respawn"), std::string::npos);

  // Deterministic replay: the faulted run ends bit-identical to the
  // unfaulted one — same weights on every replica, same loss curve.
  EXPECT_EQ(MaxParamDiff(*reference.model(0), *dist.model(0)), 0.0f);
  EXPECT_EQ(MaxParamDiff(*dist.model(0), *dist.model(1)), 0.0f);
  ASSERT_EQ(dist.history().size(), reference.history().size());
  for (size_t i = 0; i < reference.history().size(); ++i) {
    EXPECT_EQ(dist.history()[i].loss, reference.history()[i].loss);
  }

  // The death and the checkpoint-based recovery are both in the flight
  // recorder, in order.
  const auto events = obs::FlightRecorder::Global().Dump();
  uint64_t death_ticket = 0, recovery_ticket = 0;
  for (const auto& e : events) {
    if (e.type == obs::FlightEventType::kWorkerDeath && death_ticket == 0) {
      death_ticket = e.ticket + 1;  // +1: ticket 0 is a valid ticket
    }
    if (e.type == obs::FlightEventType::kDistRecovery) {
      recovery_ticket = e.ticket + 1;
    }
  }
  ASSERT_GT(death_ticket, 0u) << obs::FlightRecorder::Global().Format();
  ASSERT_GT(recovery_ticket, 0u) << obs::FlightRecorder::Global().Format();
  EXPECT_GT(recovery_ticket, death_ticket);
}

TEST_F(DistTest, StalledWorkerIsDetectedByHeartbeatAndRecovered) {
  ScratchDir dir_ref("tfmr_dist_stall_ref");
  DistTrainerOptions ref_opts = BaseOptions(2, dir_ref.path());
  ref_opts.checkpoint_every = 2;
  DistTrainer reference(ref_opts, MakeReplica, MakeDistLoss());
  ASSERT_TRUE(reference.Run().ok());

  ScratchDir dir("tfmr_dist_stall");
  DistTrainerOptions opts = BaseOptions(2, dir.path());
  opts.checkpoint_every = 2;
  // The straggler sleeps far past the heartbeat timeout while its peer
  // waits in a long collective: the monitor must flag the stall.
  opts.straggle_ms = 800;
  opts.heartbeat_timeout = milliseconds(200);
  opts.collective_timeout = milliseconds(5000);
  opts.monitor_poll = milliseconds(5);
  FaultInjector::Global().ArmAt(FaultSite::kWorkerStraggle, {5});
  DistTrainer dist(opts, MakeReplica, MakeDistLoss());
  util::Status s = dist.Run();
  ASSERT_TRUE(s.ok()) << s;
  FaultInjector::Global().Disarm();

  ASSERT_GE(dist.recoveries(), 1);
  EXPECT_EQ(dist.incidents()[0].kind, "worker-stall");
  EXPECT_EQ(MaxParamDiff(*reference.model(0), *dist.model(0)), 0.0f);
}

TEST_F(DistTest, BenignStraggleBelowTimeoutNeedsNoRecovery) {
  ScratchDir dir("tfmr_dist_benign");
  DistTrainerOptions opts = BaseOptions(2, dir.path());
  opts.straggle_ms = 20;  // well under every timeout
  FaultInjector::Global().ArmAt(FaultSite::kWorkerStraggle, {3, 7});
  DistTrainer dist(opts, MakeReplica, MakeDistLoss());
  util::Status s = dist.Run();
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_EQ(dist.recoveries(), 0);
  EXPECT_EQ(FaultInjector::Global().Fired(FaultSite::kWorkerStraggle), 2);
}

TEST_F(DistTest, CorruptCollectivePayloadTriggersRecovery) {
  ScratchDir dir_ref("tfmr_dist_crc_ref");
  DistTrainerOptions ref_opts = BaseOptions(2, dir_ref.path());
  ref_opts.checkpoint_every = 2;
  DistTrainer reference(ref_opts, MakeReplica, MakeDistLoss());
  ASSERT_TRUE(reference.Run().ok());

  ScratchDir dir("tfmr_dist_crc");
  DistTrainerOptions opts = BaseOptions(2, dir.path());
  opts.checkpoint_every = 2;
  FaultInjector::Global().ArmAt(FaultSite::kCommCorrupt, {4});
  DistTrainer dist(opts, MakeReplica, MakeDistLoss());
  util::Status s = dist.Run();
  ASSERT_TRUE(s.ok()) << s;
  FaultInjector::Global().Disarm();

  ASSERT_GE(dist.recoveries(), 1);
  EXPECT_EQ(dist.incidents()[0].kind, "collective-failure");
  EXPECT_NE(dist.incidents()[0].detail.find("checksum"), std::string::npos)
      << dist.incidents()[0].detail;
  EXPECT_EQ(MaxParamDiff(*reference.model(0), *dist.model(0)), 0.0f);
}

TEST_F(DistTest, RecoveryBudgetExhaustionSurfacesIncidentLog) {
  ScratchDir dir("tfmr_dist_budget");
  DistTrainerOptions opts = BaseOptions(2, dir.path());
  opts.max_recoveries = 2;
  // Every step of every epoch kills a worker immediately.
  FaultInjector::Global().ArmRandom(FaultSite::kWorkerKill, 1.0, 1);
  DistTrainer dist(opts, MakeReplica, MakeDistLoss());
  util::Status s = dist.Run();
  EXPECT_EQ(s.code(), util::StatusCode::kInternal);
  EXPECT_NE(s.message().find("incident log"), std::string::npos) << s;
  EXPECT_NE(s.message().find("worker-death"), std::string::npos) << s;
  EXPECT_EQ(dist.incidents().size(), 3u);  // 2 recoveries + the fatal one
}

TEST_F(DistTest, ResumesFromExistingCheckpointDir) {
  // Two half-runs over the same dir equal one full run: the second Run
  // picks up the rendezvous checkpoint the first one left behind.
  ScratchDir dir_full("tfmr_dist_resume_full");
  DistTrainer full(BaseOptions(2, dir_full.path()), MakeReplica,
                   MakeDistLoss());
  ASSERT_TRUE(full.Run().ok());

  ScratchDir dir("tfmr_dist_resume");
  DistTrainerOptions first_half = BaseOptions(2, dir.path());
  first_half.max_steps = 4;
  first_half.checkpoint_every = 0;  // final save only
  {
    DistTrainer dist(first_half, MakeReplica, MakeDistLoss());
    ASSERT_TRUE(dist.Run().ok());
  }
  DistTrainerOptions second_half = BaseOptions(2, dir.path());
  DistTrainer dist(second_half, MakeReplica, MakeDistLoss());
  ASSERT_TRUE(dist.Run().ok());
  EXPECT_EQ(MaxParamDiff(*full.model(0), *dist.model(0)), 0.0f);
  ASSERT_EQ(dist.history().size(), full.history().size());
  for (size_t i = 0; i < full.history().size(); ++i) {
    EXPECT_EQ(dist.history()[i].loss, full.history()[i].loss);
  }
}

TEST_F(DistTest, AbortRacingInflightBarrierNeverHangsOrMisreports) {
  // Hammer the exact interleaving the coordinator produces on recovery:
  // AbortAll lands while ranks are anywhere between "about to deposit"
  // and "blocked waiting". Whatever the timing, a rank must get OK (the
  // round closed first) or a prompt kCancelled — never a hang, never a
  // timeout served in full.
  CommHub hub(2);
  for (int round = 0; round < 50; ++round) {
    hub.Reset();
    util::Status s[2];
    std::thread r0([&] { s[0] = hub.Barrier(0, round, milliseconds(5000)); });
    std::thread r1([&] {
      if (round % 3 == 1) std::this_thread::sleep_for(milliseconds(1));
      s[1] = hub.Barrier(1, round, milliseconds(5000));
    });
    if (round % 3 == 2) std::this_thread::sleep_for(milliseconds(1));
    const auto t0 = std::chrono::steady_clock::now();
    hub.AbortAll();
    r0.join();
    r1.join();
    const auto waited = std::chrono::steady_clock::now() - t0;
    for (int r = 0; r < 2; ++r) {
      EXPECT_TRUE(s[r].ok() ||
                  s[r].code() == util::StatusCode::kCancelled)
          << "round " << round << " rank " << r << ": " << s[r];
    }
    EXPECT_LT(waited, milliseconds(4000)) << "round " << round;
  }
}

TEST_F(DistTest, StaleSeqWhileAbortedIsCancelledPromptly) {
  // A worker that never saw the abort (it was mid-step) re-enters an old
  // round's seq. The abort latch must answer immediately — the stale rank
  // may not sit out its own full timeout, and it may not resurrect the
  // dead round.
  CommHub hub(2);
  std::thread r1([&] {
    (void)hub.Exchange(1, /*seq=*/4, {1.0f}, milliseconds(200));
  });
  std::this_thread::sleep_for(milliseconds(20));
  hub.AbortAll();
  r1.join();
  const auto t0 = std::chrono::steady_clock::now();
  auto stale = hub.Exchange(0, /*seq=*/4, {2.0f}, milliseconds(10000));
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), util::StatusCode::kCancelled);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, milliseconds(2000));
}

TEST_F(DistTest, SeqReusedAfterResetStartsAFreshRound) {
  // Workers restart their collective counters at zero every epoch, so
  // seq values are reused across Reset. The reused seq must behave as a
  // brand-new round: it blocks for the full world and returns the NEW
  // contributions, not a cached pre-Reset result.
  CommHub hub(2);
  std::thread other([&] {
    auto got = hub.Exchange(1, /*seq=*/0, {10.0f}, milliseconds(2000));
    ASSERT_TRUE(got.ok());
  });
  auto first = hub.Exchange(0, /*seq=*/0, {20.0f}, milliseconds(2000));
  other.join();
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first.value()[1], std::vector<float>{10.0f});

  hub.Reset();
  // Alone on the reused seq: a fresh round must WAIT (and here, time
  // out), not serve the old gather.
  auto alone = hub.Exchange(0, /*seq=*/0, {30.0f}, milliseconds(60));
  ASSERT_FALSE(alone.ok());
  EXPECT_EQ(alone.status().code(), util::StatusCode::kDeadlineExceeded);

  hub.Reset();
  std::thread fresh([&] {
    auto got = hub.Exchange(1, /*seq=*/0, {11.0f}, milliseconds(2000));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value()[0], std::vector<float>{31.0f});
  });
  auto second = hub.Exchange(0, /*seq=*/0, {31.0f}, milliseconds(2000));
  fresh.join();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value()[1], std::vector<float>{11.0f});
}

TEST_F(DistTest, ZeroLengthPayloadExchangeCompletes) {
  // Barrier is "Exchange of nothing" — the empty payload must be a
  // first-class citizen, not an accidental edge case: CRCs of empty
  // buffers, zero-length gathers, mixed empty/non-empty rounds.
  CommHub hub(2);
  std::thread r1([&] {
    auto got = hub.Exchange(1, 0, {}, milliseconds(2000));
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(got.value()[0].empty());
    EXPECT_EQ(got.value()[1], std::vector<float>{});
  });
  auto got = hub.Exchange(0, 0, {}, milliseconds(2000));
  r1.join();
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got.value().size(), 2u);
  EXPECT_TRUE(got.value()[0].empty());
  EXPECT_TRUE(got.value()[1].empty());

  // Mixed: one empty, one not — lengths are per-rank, not homogeneous.
  std::thread r1b([&] {
    auto mixed = hub.Exchange(1, 1, {5.0f}, milliseconds(2000));
    ASSERT_TRUE(mixed.ok());
    EXPECT_TRUE(mixed.value()[0].empty());
  });
  auto mixed = hub.Exchange(0, 1, {}, milliseconds(2000));
  r1b.join();
  ASSERT_TRUE(mixed.ok());
  EXPECT_EQ(mixed.value()[1], std::vector<float>{5.0f});
}

}  // namespace
}  // namespace llm::train::dist
