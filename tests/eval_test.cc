// Tests for the evaluation harness: power-law and Eq. 4 ansatz fitting,
// Nelder-Mead, accuracy/cross-entropy metrics, calibration, Spearman, and
// the LM evaluators.
#include <gtest/gtest.h>

#include <cmath>

#include "eval/lm_eval.h"
#include "eval/metrics.h"
#include "eval/power_law.h"

namespace llm::eval {
namespace {

TEST(PowerLawTest, RecoversExactLaw) {
  // y = 2 x^-0.5.
  std::vector<double> x, y;
  for (double v : {1e2, 1e3, 1e4, 1e5}) {
    x.push_back(v);
    y.push_back(2.0 * std::pow(v, -0.5));
  }
  auto fit = FitPowerLaw(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->a, 2.0, 1e-6);
  EXPECT_NEAR(fit->b, -0.5, 1e-9);
  EXPECT_NEAR(fit->r2, 1.0, 1e-9);
}

TEST(PowerLawTest, NoisyFitStillClose) {
  util::Rng rng(1);
  std::vector<double> x, y;
  for (int i = 0; i < 30; ++i) {
    const double v = std::pow(10.0, 2.0 + 0.1 * i);
    x.push_back(v);
    y.push_back(3.0 * std::pow(v, -0.3) * std::exp(rng.Normal(0.0, 0.05)));
  }
  auto fit = FitPowerLaw(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->b, -0.3, 0.03);
  EXPECT_GT(fit->r2, 0.95);
}

TEST(PowerLawTest, RejectsBadInput) {
  EXPECT_FALSE(FitPowerLaw({1.0}, {1.0}).ok());
  EXPECT_FALSE(FitPowerLaw({1.0, 2.0}, {1.0, -2.0}).ok());
  EXPECT_FALSE(FitPowerLaw({2.0, 2.0}, {1.0, 2.0}).ok());
}

TEST(PowerLawTest, FloorSubtraction) {
  // y = 1.5 + 4 x^-0.4.
  std::vector<double> x, y;
  for (double v : {10.0, 100.0, 1000.0, 10000.0}) {
    x.push_back(v);
    y.push_back(1.5 + 4.0 * std::pow(v, -0.4));
  }
  auto fit = FitPowerLawWithFloor(x, y, 1.5);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->b, -0.4, 1e-6);
  EXPECT_FALSE(FitPowerLawWithFloor(x, y, 10.0).ok());
}

TEST(NelderMeadTest, MinimizesRosenbrock) {
  auto rosen = [](const std::vector<double>& v) {
    const double a = 1.0 - v[0];
    const double b = v[1] - v[0] * v[0];
    return a * a + 100.0 * b * b;
  };
  NelderMeadOptions opts;
  opts.max_iterations = 5000;
  auto x = NelderMead(rosen, {-1.0, 2.0}, opts);
  EXPECT_NEAR(x[0], 1.0, 1e-3);
  EXPECT_NEAR(x[1], 1.0, 1e-3);
}

TEST(AnsatzTest, RecoversSyntheticSurface) {
  // Generate losses from a known Eq. 4 surface plus floor.
  AnsatzFit truth;
  truth.pc = 1e4;
  truth.dc = 2e4;
  truth.alpha_p = 0.4;
  truth.alpha_d = 0.35;
  truth.floor = 0.8;
  std::vector<ScalingPoint> points;
  for (double p : {1e3, 1e4, 1e5, 1e6}) {
    for (double d : {1e3, 1e4, 1e5, 1e6}) {
      points.push_back({p, d, AnsatzLoss(truth, p, d)});
    }
  }
  auto fit = FitAnsatz(points);
  ASSERT_TRUE(fit.ok());
  EXPECT_LT(fit->rmse, 0.02);
  // Predictions at held-out corners track the truth.
  for (double p : {3e3, 3e5}) {
    for (double d : {3e3, 3e5}) {
      EXPECT_NEAR(AnsatzLoss(*fit, p, d), AnsatzLoss(truth, p, d),
                  0.1 * AnsatzLoss(truth, p, d));
    }
  }
}

TEST(MetricsTest, MaskedAccuracyAndCrossEntropy) {
  core::Tensor logits = core::Tensor::FromVector(
      {3, 2}, {2.0f, 0.0f,   // argmax 0
               0.0f, 2.0f,   // argmax 1
               2.0f, 0.0f}); // argmax 0
  std::vector<int64_t> targets = {0, 0, -1};
  EXPECT_NEAR(MaskedAccuracy(logits, targets), 0.5, 1e-9);
  // Cross entropy of row 0 (correct, margin 2) and row 1 (wrong).
  const double p_correct = 1.0 / (1.0 + std::exp(-2.0));
  const double expected =
      -(std::log(p_correct) + std::log(1.0 - p_correct)) / 2.0;
  EXPECT_NEAR(MaskedCrossEntropy(logits, targets), expected, 1e-6);
}

TEST(CalibrationTest, PerfectlyCalibratedHasZeroEce) {
  // Confidence 0.75 and empirical accuracy 0.75 in one bin.
  std::vector<CalibrationPoint> pts;
  for (int i = 0; i < 100; ++i) pts.push_back({0.75, i < 75});
  EXPECT_NEAR(ExpectedCalibrationError(pts), 0.0, 1e-9);
}

TEST(CalibrationTest, OverconfidenceDetected) {
  std::vector<CalibrationPoint> pts;
  for (int i = 0; i < 100; ++i) pts.push_back({0.95, i < 50});
  EXPECT_NEAR(ExpectedCalibrationError(pts), 0.45, 1e-9);
}

TEST(CalibrationTest, ReliabilityBinsPartition) {
  std::vector<CalibrationPoint> pts = {
      {0.05, false}, {0.55, true}, {0.95, true}, {0.97, false}};
  auto bins = ReliabilityDiagram(pts, 10);
  ASSERT_EQ(bins.size(), 10u);
  EXPECT_EQ(bins[0].count, 1);
  EXPECT_EQ(bins[5].count, 1);
  EXPECT_EQ(bins[9].count, 2);
  EXPECT_NEAR(bins[9].accuracy, 0.5, 1e-9);
}

TEST(SpearmanTest, PerfectMonotone) {
  auto rho = SpearmanCorrelation({1, 2, 3, 4}, {10, 20, 30, 40});
  ASSERT_TRUE(rho.ok());
  EXPECT_NEAR(*rho, 1.0, 1e-9);
  auto anti = SpearmanCorrelation({1, 2, 3, 4}, {4, 3, 2, 1});
  ASSERT_TRUE(anti.ok());
  EXPECT_NEAR(*anti, -1.0, 1e-9);
}

TEST(SpearmanTest, HandlesTies) {
  auto rho = SpearmanCorrelation({1, 1, 2, 3}, {5, 5, 6, 7});
  ASSERT_TRUE(rho.ok());
  EXPECT_GT(*rho, 0.9);
  EXPECT_FALSE(SpearmanCorrelation({1, 1, 1}, {1, 2, 3}).ok());
}

TEST(LmEvalTest, UntrainedModelNearUniform) {
  nn::GPTConfig cfg;
  cfg.vocab_size = 12;
  cfg.max_seq_len = 8;
  cfg.d_model = 16;
  cfg.n_layer = 1;
  cfg.n_head = 2;
  util::Rng rng(2);
  nn::GPTModel model(cfg, &rng);
  std::vector<int64_t> tokens;
  for (int i = 0; i < 200; ++i) {
    tokens.push_back(static_cast<int64_t>(rng.UniformInt(12)));
  }
  text::TokenDataset ds(tokens, 8);
  auto result = EvaluateGpt(model, ds, 8);
  EXPECT_NEAR(result.cross_entropy, std::log(12.0), 0.5);
  EXPECT_GT(result.tokens_scored, 0);
}

}  // namespace
}  // namespace llm::eval
