// Tests for the KV-cache inference session: exact agreement with the
// training-path forward across every architecture variant, plus cached
// generation equivalence.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/batched_decode.h"
#include "nn/gpt_inference.h"
#include "sample/sampler.h"

namespace llm::nn {
namespace {

struct Variant {
  bool pre_ln;
  bool learned_pos;
  bool attn_only;
  bool tied;
  int window;
  Activation act;
};

class InferenceVariants : public ::testing::TestWithParam<Variant> {};

GPTConfig ConfigFor(const Variant& v) {
  GPTConfig cfg;
  cfg.vocab_size = 17;
  cfg.max_seq_len = 12;
  cfg.d_model = 24;
  cfg.n_layer = 2;
  cfg.n_head = 3;
  cfg.pre_layernorm = v.pre_ln;
  cfg.learned_positional = v.learned_pos;
  cfg.attention_only = v.attn_only;
  cfg.tie_embeddings = v.tied;
  cfg.attention_window = v.window;
  cfg.activation = v.act;
  return cfg;
}

TEST_P(InferenceVariants, MatchesFullForwardExactly) {
  util::Rng rng(11);
  GPTModel model(ConfigFor(GetParam()), &rng);
  std::vector<int64_t> tokens = {3, 1, 4, 1, 5, 9, 2, 6};
  const auto T = static_cast<int64_t>(tokens.size());
  core::Tensor full = model.ForwardLogits(tokens, 1, T).value();

  GptInferenceSession session(&model);
  for (int64_t t = 0; t < T; ++t) {
    const std::vector<float>& row =
        session.Append(tokens[static_cast<size_t>(t)]);
    for (int64_t v = 0; v < 17; ++v) {
      ASSERT_NEAR(row[static_cast<size_t>(v)], full.At({t, v}), 2e-4f)
          << "position " << t << " vocab " << v;
    }
  }
}

// The serving runtime's fused batched step must be bit-identical per
// sequence to the single-sequence session, for every architecture variant
// and regardless of batch composition (sequences here differ in content,
// length, and admission order).
TEST_P(InferenceVariants, BatchedStepMatchesSessionBitExactly) {
  util::Rng rng(21);
  nn::GPTModel model(ConfigFor(GetParam()), &rng);
  const nn::GPTConfig& cfg = model.config();
  const std::vector<std::vector<int64_t>> prompts = {
      {3, 1, 4, 1, 5}, {2, 7}, {9, 9, 8, 2, 6, 5, 3}, {0}, {11, 16, 13}};
  const auto B = static_cast<int64_t>(prompts.size());

  // Reference: one single-sequence session per prompt.
  std::vector<std::vector<float>> want;
  for (const auto& p : prompts) {
    GptInferenceSession session(&model);
    for (int64_t t : p) session.Append(t);
    want.push_back(session.logits());
  }

  // Batched: all sequences advance in lockstep; shorter ones retire early
  // (continuous-batching shape). Each sequence owns slab-backed views.
  const auto n_layer = static_cast<size_t>(cfg.n_layer);
  const auto per = static_cast<size_t>(cfg.max_seq_len * cfg.d_model);
  std::vector<std::vector<float>> slabs(static_cast<size_t>(B));
  std::vector<std::vector<nn::KvLayerView>> views(static_cast<size_t>(B));
  std::vector<std::vector<float>> got(
      static_cast<size_t>(B),
      std::vector<float>(static_cast<size_t>(cfg.vocab_size)));
  for (size_t b = 0; b < static_cast<size_t>(B); ++b) {
    slabs[b].resize(n_layer * 2 * per);
    views[b].resize(n_layer);
    for (size_t l = 0; l < n_layer; ++l) {
      views[b][l].keys = slabs[b].data() + (2 * l) * per;
      views[b][l].values = slabs[b].data() + (2 * l + 1) * per;
    }
  }
  nn::BatchedScratch scratch;
  size_t longest = 0;
  for (const auto& p : prompts) longest = std::max(longest, p.size());
  for (size_t step = 0; step < longest; ++step) {
    std::vector<nn::SeqStepInput> batch;
    for (size_t b = 0; b < static_cast<size_t>(B); ++b) {
      if (step >= prompts[b].size()) continue;  // retired
      nn::SeqStepInput in;
      in.token = prompts[b][step];
      in.position = static_cast<int64_t>(step);
      in.layers = views[b].data();
      in.logits = got[b].data();
      batch.push_back(in);
    }
    nn::BatchedDecodeStep(model, batch.data(),
                          static_cast<int64_t>(batch.size()), &scratch);
  }
  for (size_t b = 0; b < static_cast<size_t>(B); ++b) {
    for (size_t v = 0; v < want[b].size(); ++v) {
      ASSERT_EQ(got[b][v], want[b][v])
          << "sequence " << b << " vocab " << v << " not bit-identical";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, InferenceVariants,
    ::testing::Values(
        Variant{true, true, false, false, 0, Activation::kGelu},
        Variant{false, true, false, false, 0, Activation::kGelu},
        Variant{true, false, false, false, 0, Activation::kRelu},
        Variant{true, true, true, false, 0, Activation::kGelu},
        Variant{true, true, false, true, 0, Activation::kTanh},
        Variant{true, true, false, false, 3, Activation::kGelu},
        Variant{false, false, true, true, 2, Activation::kGelu}));

TEST(GptInferenceTest, ResetStartsFresh) {
  util::Rng rng(12);
  GPTModel model(ConfigFor({true, true, false, false, 0,
                            Activation::kGelu}),
                 &rng);
  GptInferenceSession session(&model);
  std::vector<float> first = session.Append(5);
  session.Append(6);
  session.Reset();
  EXPECT_EQ(session.position(), 0);
  std::vector<float> again = session.Append(5);
  for (size_t v = 0; v < first.size(); ++v) {
    EXPECT_EQ(first[v], again[v]);
  }
}

TEST(GptInferenceTest, OverflowAborts) {
  util::Rng rng(13);
  GPTConfig cfg = ConfigFor({true, true, false, false, 0,
                             Activation::kGelu});
  cfg.max_seq_len = 3;
  GPTModel model(cfg, &rng);
  GptInferenceSession session(&model);
  session.Append(1);
  session.Append(2);
  session.Append(3);
  EXPECT_DEATH(session.Append(4), "window");
}

TEST(GptInferenceTest, GreedyCachedGenerationMatchesUncached) {
  util::Rng rng(14);
  GPTModel model(ConfigFor({true, true, false, false, 0,
                            Activation::kGelu}),
                 &rng);
  std::vector<int64_t> prefix = {2, 7};
  sample::GenerateOptions gopts;
  gopts.max_new_tokens = 8;
  gopts.sampler.temperature = 0.0f;
  util::Rng r1(1), r2(1);
  auto slow = sample::Generate(model, prefix, gopts, &r1);
  auto fast = GenerateCached(model, prefix, 8, 0.0f, &r2);
  EXPECT_EQ(slow, fast);
}

TEST(GptInferenceTest, StopTokenHonoured) {
  util::Rng rng(15);
  GPTModel model(ConfigFor({true, true, false, false, 0,
                            Activation::kGelu}),
                 &rng);
  util::Rng gen_rng(2);
  auto out = GenerateCached(model, {1}, 10, 1.0f, &gen_rng,
                            /*stop_token=*/4);
  if (out.size() < 10u) EXPECT_EQ(out.back(), 4);
}

}  // namespace
}  // namespace llm::nn
