// Tests for the decoding strategies (Eq. 8) and autoregressive generation.
#include <gtest/gtest.h>

#include <cmath>

#include "sample/sampler.h"
#include "train/optimizer.h"

namespace llm::sample {
namespace {

TEST(DistributionTest, GreedyIsOneHotArgmax) {
  const float logits[] = {0.1f, 2.0f, -1.0f};
  SamplerOptions opts;
  opts.temperature = 0.0f;
  auto p = DistributionFromLogits(logits, 3, opts);
  EXPECT_FLOAT_EQ(p[1], 1.0f);
  EXPECT_FLOAT_EQ(p[0] + p[2], 0.0f);
}

TEST(DistributionTest, TemperatureOneIsSoftmax) {
  const float logits[] = {0.0f, std::log(3.0f)};
  SamplerOptions opts;
  auto p = DistributionFromLogits(logits, 2, opts);
  EXPECT_NEAR(p[1] / p[0], 3.0f, 1e-4f);
}

TEST(DistributionTest, LowTemperatureSharpens) {
  const float logits[] = {0.0f, 1.0f};
  SamplerOptions cold, hot;
  cold.temperature = 0.25f;
  hot.temperature = 4.0f;
  auto pc = DistributionFromLogits(logits, 2, cold);
  auto ph = DistributionFromLogits(logits, 2, hot);
  EXPECT_GT(pc[1], ph[1]);
  EXPECT_GT(ph[0], pc[0]);
}

TEST(DistributionTest, TopKZeroesTail) {
  const float logits[] = {3.0f, 2.0f, 1.0f, 0.0f};
  SamplerOptions opts;
  opts.top_k = 2;
  auto p = DistributionFromLogits(logits, 4, opts);
  EXPECT_GT(p[0], 0.0f);
  EXPECT_GT(p[1], 0.0f);
  EXPECT_FLOAT_EQ(p[2], 0.0f);
  EXPECT_FLOAT_EQ(p[3], 0.0f);
  EXPECT_NEAR(p[0] + p[1], 1.0f, 1e-5f);
}

TEST(DistributionTest, TopPKeepsMinimalPrefix) {
  // Probabilities ~ (0.64, 0.24, 0.09, 0.03): top_p = 0.7 keeps two.
  const float logits[] = {2.0f, 1.0f, 0.0f, -1.0f};
  SamplerOptions opts;
  opts.top_p = 0.7f;
  auto p = DistributionFromLogits(logits, 4, opts);
  EXPECT_GT(p[0], 0.0f);
  EXPECT_GT(p[1], 0.0f);
  EXPECT_FLOAT_EQ(p[2], 0.0f);
  EXPECT_NEAR(p[0] + p[1], 1.0f, 1e-5f);
}

TEST(DistributionTest, TopKLargerThanVocabIsNoop) {
  const float logits[] = {1.0f, 0.5f, -0.5f, 0.0f};
  SamplerOptions plain, huge_k;
  huge_k.top_k = 100;  // > vocab: must not truncate anything
  auto p0 = DistributionFromLogits(logits, 4, plain);
  auto pk = DistributionFromLogits(logits, 4, huge_k);
  for (size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(pk[i], p0[i]);
}

TEST(DistributionTest, TopPNearOneWithTiesKeepsEverything) {
  // Four exactly-tied logits: probabilities 0.25 each. top_p = 0.999 must
  // keep all four (the cumulative sum only reaches 0.999 at the last one)
  // and renormalize to a proper distribution, not zero out tied tail
  // entries it happened to sort last.
  const float logits[] = {1.0f, 1.0f, 1.0f, 1.0f};
  SamplerOptions opts;
  opts.top_p = 0.999f;
  auto p = DistributionFromLogits(logits, 4, opts);
  float sum = 0.0f;
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(p[i], 0.25f, 1e-5f) << "index " << i;
    sum += p[i];
  }
  EXPECT_NEAR(sum, 1.0f, 1e-5f);
}

TEST(DistributionTest, TemperatureZeroAllEqualLogitsPicksFirst) {
  // Greedy tie-break is "first max wins" — the serving path relies on this
  // being deterministic so batched and single-stream outputs agree.
  const float logits[] = {0.7f, 0.7f, 0.7f};
  SamplerOptions opts;
  opts.temperature = 0.0f;
  auto p = DistributionFromLogits(logits, 3, opts);
  EXPECT_FLOAT_EQ(p[0], 1.0f);
  EXPECT_FLOAT_EQ(p[1], 0.0f);
  EXPECT_FLOAT_EQ(p[2], 0.0f);
  util::Rng rng(1);
  EXPECT_EQ(SampleFromLogits(logits, 3, opts, &rng), 0);
}

TEST(SampleTest, RespectsDistribution) {
  const float logits[] = {0.0f, std::log(4.0f)};
  SamplerOptions opts;
  util::Rng rng(1);
  int count1 = 0;
  for (int i = 0; i < 20000; ++i) {
    if (SampleFromLogits(logits, 2, opts, &rng) == 1) ++count1;
  }
  EXPECT_NEAR(static_cast<double>(count1) / 20000, 0.8, 0.02);
}

TEST(GenerateTest, EmitsRequestedLengthAndStops) {
  nn::GPTConfig cfg;
  cfg.vocab_size = 6;
  cfg.max_seq_len = 8;
  cfg.d_model = 16;
  cfg.n_layer = 1;
  cfg.n_head = 2;
  util::Rng rng(2);
  nn::GPTModel model(cfg, &rng);
  GenerateOptions opts;
  opts.max_new_tokens = 5;
  auto out = Generate(model, {1, 2}, opts, &rng);
  EXPECT_EQ(out.size(), 5u);
  for (int64_t t : out) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 6);
  }
}

TEST(GenerateTest, GreedyIsDeterministicAndMemorizedSequenceComesBack) {
  // Train to memorize 0 1 2 3 4 5; greedy generation must reproduce it.
  nn::GPTConfig cfg;
  cfg.vocab_size = 8;
  cfg.max_seq_len = 8;
  cfg.d_model = 32;
  cfg.n_layer = 2;
  cfg.n_head = 2;
  util::Rng rng(3);
  nn::GPTModel model(cfg, &rng);
  std::vector<int64_t> tokens = {0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<int64_t> targets = {1, 2, 3, 4, 5, 6, 7, 0};
  train::AdamWOptions aopts;
  aopts.lr = 1e-2f;
  train::AdamW opt(model.Parameters(), aopts);
  for (int step = 0; step < 120; ++step) {
    core::Variable loss = model.LmLoss(tokens, targets, 1, 8);
    opt.ZeroGrad();
    core::Backward(loss);
    opt.Step();
  }
  GenerateOptions gopts;
  gopts.max_new_tokens = 5;
  gopts.sampler.temperature = 0.0f;
  auto out = Generate(model, {0}, gopts, &rng);
  EXPECT_EQ(out, (std::vector<int64_t>{1, 2, 3, 4, 5}));
}

TEST(GenerateTest, StopTokenEndsEarly) {
  nn::GPTConfig cfg;
  cfg.vocab_size = 4;
  cfg.max_seq_len = 8;
  cfg.d_model = 16;
  cfg.n_layer = 1;
  cfg.n_head = 1;
  util::Rng rng(4);
  nn::GPTModel model(cfg, &rng);
  GenerateOptions opts;
  opts.max_new_tokens = 50;
  opts.stop_token = 2;
  auto out = Generate(model, {0}, opts, &rng);
  // Either stopped early at a 2 or ran the full 50.
  if (out.size() < 50u) {
    EXPECT_EQ(out.back(), 2);
  }
}

TEST(GenerateTest, WindowsLongPrefixes) {
  nn::GPTConfig cfg;
  cfg.vocab_size = 4;
  cfg.max_seq_len = 4;  // shorter than the prefix below
  cfg.d_model = 16;
  cfg.n_layer = 1;
  cfg.n_head = 1;
  util::Rng rng(5);
  nn::GPTModel model(cfg, &rng);
  GenerateOptions opts;
  opts.max_new_tokens = 3;
  std::vector<int64_t> prefix = {0, 1, 2, 3, 0, 1, 2};
  auto out = Generate(model, prefix, opts, &rng);
  EXPECT_EQ(out.size(), 3u);
}

// --- Cached-path parity: sample::GenerateCached must agree with the
// uncached Generate under every decoding strategy (satellite of the
// serving runtime, which reuses the cached path per slot). The cached
// logits agree with the full forward to ~1e-4; with a fixed RNG stream the
// categorical draws land on the same tokens for these seeds.
class CachedParity : public ::testing::TestWithParam<SamplerOptions> {};

TEST_P(CachedParity, CachedMatchesUncached) {
  nn::GPTConfig cfg;
  cfg.vocab_size = 19;
  cfg.max_seq_len = 16;
  cfg.d_model = 24;
  cfg.n_layer = 2;
  cfg.n_head = 3;
  util::Rng rng(6);
  nn::GPTModel model(cfg, &rng);
  GenerateOptions opts;
  opts.max_new_tokens = 10;
  opts.sampler = GetParam();
  for (uint64_t seed : {1u, 2u, 3u}) {
    util::Rng r1(seed), r2(seed);
    auto slow = Generate(model, {2, 7, 1}, opts, &r1);
    auto fast = GenerateCached(model, {2, 7, 1}, opts, &r2);
    EXPECT_EQ(slow, fast) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, CachedParity,
    ::testing::Values(SamplerOptions{0.0f, 0, 0.0f},    // greedy
                      SamplerOptions{1.0f, 0, 0.0f},    // plain softmax
                      SamplerOptions{0.8f, 5, 0.0f},    // top-k
                      SamplerOptions{1.2f, 0, 0.9f},    // nucleus
                      SamplerOptions{0.7f, 4, 0.95f})); // top-k + top-p

TEST(CachedGenerateTest, StopTokenAsFirstTokenYieldsSingleToken) {
  nn::GPTConfig cfg;
  cfg.vocab_size = 11;
  cfg.max_seq_len = 12;
  cfg.d_model = 16;
  cfg.n_layer = 1;
  cfg.n_head = 2;
  util::Rng rng(7);
  nn::GPTModel model(cfg, &rng);
  // Find the greedy first token, then declare it the stop token: the very
  // first generated token terminates the request.
  nn::GptInferenceSession probe(&model);
  const std::vector<float>& logits = probe.Append(3);
  int64_t argmax = 0;
  for (int64_t v = 1; v < cfg.vocab_size; ++v) {
    if (logits[static_cast<size_t>(v)] >
        logits[static_cast<size_t>(argmax)]) {
      argmax = v;
    }
  }
  GenerateOptions opts;
  opts.max_new_tokens = 10;
  opts.sampler.temperature = 0.0f;
  opts.stop_token = argmax;
  util::Rng gen_rng(8);
  auto out = GenerateCached(model, {3}, opts, &gen_rng);
  EXPECT_EQ(out, (std::vector<int64_t>{argmax}));
}

TEST(CachedGenerateTest, SessionReuseMatchesFreshSessions) {
  nn::GPTConfig cfg;
  cfg.vocab_size = 13;
  cfg.max_seq_len = 10;
  cfg.d_model = 16;
  cfg.n_layer = 2;
  cfg.n_head = 2;
  util::Rng rng(9);
  nn::GPTModel model(cfg, &rng);
  GenerateOptions opts;
  opts.max_new_tokens = 6;
  opts.sampler.top_k = 4;
  nn::GptInferenceSession session(&model);
  const std::vector<std::vector<int64_t>> prefixes = {{1, 2}, {5}, {9, 3, 4}};
  for (const auto& prefix : prefixes) {
    util::Rng r1(42), r2(42);
    auto fresh = GenerateCached(model, prefix, opts, &r1);
    auto reused = GenerateWithSession(&session, prefix, opts, &r2);
    EXPECT_EQ(fresh, reused);
  }
}

}  // namespace
}  // namespace llm::sample
