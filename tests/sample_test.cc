// Tests for the decoding strategies (Eq. 8) and autoregressive generation.
#include <gtest/gtest.h>

#include <cmath>

#include "sample/sampler.h"
#include "train/optimizer.h"

namespace llm::sample {
namespace {

TEST(DistributionTest, GreedyIsOneHotArgmax) {
  const float logits[] = {0.1f, 2.0f, -1.0f};
  SamplerOptions opts;
  opts.temperature = 0.0f;
  auto p = DistributionFromLogits(logits, 3, opts);
  EXPECT_FLOAT_EQ(p[1], 1.0f);
  EXPECT_FLOAT_EQ(p[0] + p[2], 0.0f);
}

TEST(DistributionTest, TemperatureOneIsSoftmax) {
  const float logits[] = {0.0f, std::log(3.0f)};
  SamplerOptions opts;
  auto p = DistributionFromLogits(logits, 2, opts);
  EXPECT_NEAR(p[1] / p[0], 3.0f, 1e-4f);
}

TEST(DistributionTest, LowTemperatureSharpens) {
  const float logits[] = {0.0f, 1.0f};
  SamplerOptions cold, hot;
  cold.temperature = 0.25f;
  hot.temperature = 4.0f;
  auto pc = DistributionFromLogits(logits, 2, cold);
  auto ph = DistributionFromLogits(logits, 2, hot);
  EXPECT_GT(pc[1], ph[1]);
  EXPECT_GT(ph[0], pc[0]);
}

TEST(DistributionTest, TopKZeroesTail) {
  const float logits[] = {3.0f, 2.0f, 1.0f, 0.0f};
  SamplerOptions opts;
  opts.top_k = 2;
  auto p = DistributionFromLogits(logits, 4, opts);
  EXPECT_GT(p[0], 0.0f);
  EXPECT_GT(p[1], 0.0f);
  EXPECT_FLOAT_EQ(p[2], 0.0f);
  EXPECT_FLOAT_EQ(p[3], 0.0f);
  EXPECT_NEAR(p[0] + p[1], 1.0f, 1e-5f);
}

TEST(DistributionTest, TopPKeepsMinimalPrefix) {
  // Probabilities ~ (0.64, 0.24, 0.09, 0.03): top_p = 0.7 keeps two.
  const float logits[] = {2.0f, 1.0f, 0.0f, -1.0f};
  SamplerOptions opts;
  opts.top_p = 0.7f;
  auto p = DistributionFromLogits(logits, 4, opts);
  EXPECT_GT(p[0], 0.0f);
  EXPECT_GT(p[1], 0.0f);
  EXPECT_FLOAT_EQ(p[2], 0.0f);
  EXPECT_NEAR(p[0] + p[1], 1.0f, 1e-5f);
}

TEST(SampleTest, RespectsDistribution) {
  const float logits[] = {0.0f, std::log(4.0f)};
  SamplerOptions opts;
  util::Rng rng(1);
  int count1 = 0;
  for (int i = 0; i < 20000; ++i) {
    if (SampleFromLogits(logits, 2, opts, &rng) == 1) ++count1;
  }
  EXPECT_NEAR(static_cast<double>(count1) / 20000, 0.8, 0.02);
}

TEST(GenerateTest, EmitsRequestedLengthAndStops) {
  nn::GPTConfig cfg;
  cfg.vocab_size = 6;
  cfg.max_seq_len = 8;
  cfg.d_model = 16;
  cfg.n_layer = 1;
  cfg.n_head = 2;
  util::Rng rng(2);
  nn::GPTModel model(cfg, &rng);
  GenerateOptions opts;
  opts.max_new_tokens = 5;
  auto out = Generate(model, {1, 2}, opts, &rng);
  EXPECT_EQ(out.size(), 5u);
  for (int64_t t : out) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 6);
  }
}

TEST(GenerateTest, GreedyIsDeterministicAndMemorizedSequenceComesBack) {
  // Train to memorize 0 1 2 3 4 5; greedy generation must reproduce it.
  nn::GPTConfig cfg;
  cfg.vocab_size = 8;
  cfg.max_seq_len = 8;
  cfg.d_model = 32;
  cfg.n_layer = 2;
  cfg.n_head = 2;
  util::Rng rng(3);
  nn::GPTModel model(cfg, &rng);
  std::vector<int64_t> tokens = {0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<int64_t> targets = {1, 2, 3, 4, 5, 6, 7, 0};
  train::AdamWOptions aopts;
  aopts.lr = 1e-2f;
  train::AdamW opt(model.Parameters(), aopts);
  for (int step = 0; step < 120; ++step) {
    core::Variable loss = model.LmLoss(tokens, targets, 1, 8);
    opt.ZeroGrad();
    core::Backward(loss);
    opt.Step();
  }
  GenerateOptions gopts;
  gopts.max_new_tokens = 5;
  gopts.sampler.temperature = 0.0f;
  auto out = Generate(model, {0}, gopts, &rng);
  EXPECT_EQ(out, (std::vector<int64_t>{1, 2, 3, 4, 5}));
}

TEST(GenerateTest, StopTokenEndsEarly) {
  nn::GPTConfig cfg;
  cfg.vocab_size = 4;
  cfg.max_seq_len = 8;
  cfg.d_model = 16;
  cfg.n_layer = 1;
  cfg.n_head = 1;
  util::Rng rng(4);
  nn::GPTModel model(cfg, &rng);
  GenerateOptions opts;
  opts.max_new_tokens = 50;
  opts.stop_token = 2;
  auto out = Generate(model, {0}, opts, &rng);
  // Either stopped early at a 2 or ran the full 50.
  if (out.size() < 50u) {
    EXPECT_EQ(out.back(), 2);
  }
}

TEST(GenerateTest, WindowsLongPrefixes) {
  nn::GPTConfig cfg;
  cfg.vocab_size = 4;
  cfg.max_seq_len = 4;  // shorter than the prefix below
  cfg.d_model = 16;
  cfg.n_layer = 1;
  cfg.n_head = 1;
  util::Rng rng(5);
  nn::GPTModel model(cfg, &rng);
  GenerateOptions opts;
  opts.max_new_tokens = 3;
  std::vector<int64_t> prefix = {0, 1, 2, 3, 0, 1, 2};
  auto out = Generate(model, prefix, opts, &rng);
  EXPECT_EQ(out.size(), 3u);
}

}  // namespace
}  // namespace llm::sample
