// Tests for the Othello rules engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "othello/othello.h"

namespace llm::othello {
namespace {

TEST(BoardTest, InitialPosition) {
  Board b;
  EXPECT_EQ(b.CountDiscs(Cell::kBlack), 2);
  EXPECT_EQ(b.CountDiscs(Cell::kWhite), 2);
  EXPECT_EQ(b.at(27), Cell::kWhite);
  EXPECT_EQ(b.at(28), Cell::kBlack);
  EXPECT_EQ(b.to_move(), Player::kBlack);
}

TEST(BoardTest, InitialLegalMovesAreTheClassicFour) {
  Board b;
  std::vector<int> moves = b.LegalMoves();
  // Black's opening moves: D3(19), C4(26), F5(37), E6(44).
  std::set<int> expected = {19, 26, 37, 44};
  EXPECT_EQ(std::set<int>(moves.begin(), moves.end()), expected);
}

TEST(BoardTest, ApplyFlipsLine) {
  Board b;
  ASSERT_TRUE(b.Apply(19).ok());  // D3: flips D4 (index 27)
  EXPECT_EQ(b.at(27), Cell::kBlack);
  EXPECT_EQ(b.CountDiscs(Cell::kBlack), 4);
  EXPECT_EQ(b.CountDiscs(Cell::kWhite), 1);
  EXPECT_EQ(b.to_move(), Player::kWhite);
}

TEST(BoardTest, RejectsIllegalMoves) {
  Board b;
  EXPECT_FALSE(b.Apply(0).ok());   // corner, no flips
  EXPECT_FALSE(b.Apply(27).ok());  // occupied
  // State unchanged after a rejected move.
  EXPECT_EQ(b.to_move(), Player::kBlack);
  EXPECT_EQ(b.CountDiscs(Cell::kBlack), 2);
}

TEST(BoardTest, CellNames) {
  EXPECT_EQ(Board::CellName(0), "A1");
  EXPECT_EQ(Board::CellName(63), "H8");
  EXPECT_EQ(Board::CellName(19), "D3");
}

TEST(BoardTest, SnapshotMatchesCells) {
  Board b;
  auto snap = b.Snapshot();
  EXPECT_EQ(snap[27], static_cast<int8_t>(Cell::kWhite));
  EXPECT_EQ(snap[28], static_cast<int8_t>(Cell::kBlack));
  EXPECT_EQ(snap[0], 0);
}

TEST(GameTest, RandomGamesAreLegalAndTerminal) {
  util::Rng rng(1);
  for (int trial = 0; trial < 5; ++trial) {
    Game game = RandomGame(&rng);
    EXPECT_GE(game.moves.size(), 20u);   // real games last a while
    EXPECT_LE(game.moves.size(), 60u);   // at most 60 placements
    EXPECT_EQ(game.moves.size(), game.boards.size());
    EXPECT_EQ(game.moves.size(), game.players.size());
    // Replay and verify each move was legal and boards match.
    Board b;
    for (size_t i = 0; i < game.moves.size(); ++i) {
      EXPECT_EQ(b.to_move(), game.players[i]);
      ASSERT_TRUE(b.IsLegal(game.moves[i]));
      ASSERT_TRUE(b.Apply(game.moves[i]).ok());
      EXPECT_EQ(b.Snapshot(), game.boards[i]);
    }
    EXPECT_TRUE(b.IsTerminal());
  }
}

TEST(GameTest, DiscCountConservation) {
  // Each move adds exactly one disc; flips preserve the total.
  util::Rng rng(2);
  Game game = RandomGame(&rng);
  Board b;
  int expected = 4;
  for (int move : game.moves) {
    ASSERT_TRUE(b.Apply(move).ok());
    ++expected;
    EXPECT_EQ(b.CountDiscs(Cell::kBlack) + b.CountDiscs(Cell::kWhite),
              expected);
  }
}

TEST(GameTest, MovesAreDistinctCells) {
  util::Rng rng(3);
  Game game = RandomGame(&rng);
  std::set<int> cells(game.moves.begin(), game.moves.end());
  EXPECT_EQ(cells.size(), game.moves.size());
}

TEST(GameTest, PassHandledWithinGame) {
  // Generate many games; at least the engine never gets stuck and always
  // reaches terminal states with nearly-full boards on average.
  util::Rng rng(4);
  auto games = RandomGames(20, &rng);
  double mean_len = 0;
  for (const auto& g : games) {
    mean_len += static_cast<double>(g.moves.size());
  }
  mean_len /= 20;
  EXPECT_GT(mean_len, 50.0);  // random Othello games usually fill the board
}

}  // namespace
}  // namespace llm::othello
