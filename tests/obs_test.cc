// Tests for the observability subsystem (src/obs): metrics registry,
// geometric histograms (including the regression against the old
// sliding-window percentile math that ServerStats used to carry), the
// lock-free flight recorder under racing producers, scoped profiling
// timers, and the fault-injector count/listener surface.
// Registered under the `obs` ctest label; the `tsan-obs` preset runs it
// under ThreadSanitizer.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "util/fault.h"
#include "util/rng.h"

namespace llm::obs {
namespace {

class ObsTest : public ::testing::Test {
 protected:
  void TearDown() override {
    util::FaultInjector::Global().Disarm();
    util::FaultInjector::SetFireListener(nullptr);
    EnableProfiling(false);
  }
};

// --- Counter / Gauge / registry --------------------------------------------

TEST_F(ObsTest, CounterIncrementsAndResets) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test.requests");
  EXPECT_EQ(c->value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->value(), 42u);
  // Same name resolves to the same storage.
  EXPECT_EQ(registry.GetCounter("test.requests"), c);
  registry.ResetAll();
  EXPECT_EQ(c->value(), 0u);
}

TEST_F(ObsTest, GaugeLastWriteWins) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("test.depth");
  g->Set(3.5);
  g->Set(-1.0);
  EXPECT_DOUBLE_EQ(g->value(), -1.0);
  // ResetAll leaves gauges alone: they report "current level", not totals.
  registry.ResetAll();
  EXPECT_DOUBLE_EQ(g->value(), -1.0);
}

TEST_F(ObsTest, JsonSnapshotIsDeterministicAndComplete) {
  MetricsRegistry registry;
  registry.GetCounter("b.count")->Increment(7);
  registry.GetCounter("a.count")->Increment(1);
  registry.GetGauge("z.gauge")->Set(2.5);
  registry.GetHistogram("lat.ms")->Record(10.0);
  const std::string json = registry.JsonSnapshot();
  EXPECT_EQ(json, registry.JsonSnapshot());  // deterministic
  EXPECT_NE(json.find("\"a.count\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"b.count\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"z.gauge\":2.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"lat.ms\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":1"), std::string::npos) << json;
  // Keys sorted: a.count before b.count.
  EXPECT_LT(json.find("\"a.count\""), json.find("\"b.count\""));
}

// --- Histogram -------------------------------------------------------------

TEST_F(ObsTest, HistogramBucketIndexMonotone) {
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(-5.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(Histogram::kMinValue), 0);
  int prev = 0;
  for (double v = Histogram::kMinValue; v < 1e6; v *= 1.07) {
    const int idx = Histogram::BucketIndex(v);
    EXPECT_GE(idx, prev);
    EXPECT_LT(idx, Histogram::kNumBuckets);
    // The last bucket absorbs everything above its nominal bound.
    if (idx < Histogram::kNumBuckets - 1) {
      EXPECT_LE(v, Histogram::BucketUpperBound(idx) * 1.0000001);
    }
    prev = idx;
  }
}

TEST_F(ObsTest, HistogramSingleSampleAllQuantilesAgree) {
  Histogram hist;
  hist.Record(12.0);
  const double p50 = hist.Percentile(0.50);
  EXPECT_GT(p50, 0.0);
  EXPECT_DOUBLE_EQ(p50, hist.Percentile(0.95));
  EXPECT_DOUBLE_EQ(p50, hist.Percentile(0.99));
  // The representative is within one bucket width of the sample.
  EXPECT_GE(p50, 12.0 / Histogram::kGrowth);
  EXPECT_LE(p50, 12.0 * Histogram::kGrowth);
}

TEST_F(ObsTest, HistogramEmptyReturnsZero) {
  Histogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_DOUBLE_EQ(hist.Percentile(0.5), 0.0);
}

TEST_F(ObsTest, HistogramIgnoresNaN) {
  Histogram hist;
  hist.Record(std::nan(""));
  EXPECT_EQ(hist.count(), 0u);
  hist.Record(1.0);
  EXPECT_EQ(hist.count(), 1u);
}

// The exact percentile convention ServerStats used before the histogram
// replaced it: sort the window, rank = q * (n - 1), linear interpolation.
double SlidingWindowPercentile(std::vector<double> window, double q) {
  if (window.empty()) return 0.0;
  std::sort(window.begin(), window.end());
  const double rank = q * static_cast<double>(window.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, window.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return window[lo] * (1.0 - frac) + window[hi] * frac;
}

// Satellite regression: on a reference latency stream, the bucketed
// estimate must agree with the old sliding-window math to within one
// bucket width (a factor of kGrowth) at every percentile ServerStats
// reports.
TEST_F(ObsTest, HistogramMatchesSlidingWindowWithinOneBucket) {
  util::Rng rng(20260806);
  std::vector<double> stream;
  stream.reserve(4096);
  Histogram hist;
  for (int i = 0; i < 4096; ++i) {
    // Log-normal-ish latencies spanning ~0.5ms to ~100ms — several dozen
    // buckets, heavier right tail, like real completion latencies.
    const double ms = 0.5 * std::exp(2.5 * rng.Uniform() + rng.Uniform());
    stream.push_back(ms);
    hist.Record(ms);
  }
  for (double q : {0.50, 0.95, 0.99}) {
    const double exact = SlidingWindowPercentile(stream, q);
    const double est = hist.Percentile(q);
    EXPECT_GT(est, 0.0);
    // One bucket width in log space, plus a hair for the rank-convention
    // difference (truncation vs interpolation between order statistics).
    EXPECT_LE(std::abs(std::log(est / exact)),
              std::log(Histogram::kGrowth) * 1.05)
        << "q=" << q << " exact=" << exact << " est=" << est;
  }
  EXPECT_EQ(hist.count(), 4096u);
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_NEAR(snap.mean(),
              std::accumulate(stream.begin(), stream.end(), 0.0) / 4096.0,
              1e-6);
  EXPECT_DOUBLE_EQ(snap.max, *std::max_element(stream.begin(), stream.end()));
}

TEST_F(ObsTest, HistogramPercentilesAreOrdered) {
  Histogram hist;
  util::Rng rng(7);
  for (int i = 0; i < 1000; ++i) hist.Record(rng.Uniform() * 50.0 + 0.1);
  const double p50 = hist.Percentile(0.50);
  const double p95 = hist.Percentile(0.95);
  const double p99 = hist.Percentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
}

// --- ScopedTimer -----------------------------------------------------------

TEST_F(ObsTest, ScopedTimerNoOpWhileProfilingDisabled) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("timer.ms");
  EnableProfiling(false);
  { ScopedTimer timer(hist); }
  EXPECT_EQ(hist->count(), 0u);
  EnableProfiling(true);
  { ScopedTimer timer(hist); }
  { ScopedTimer timer(hist); }
  EXPECT_EQ(hist->count(), 2u);
  EnableProfiling(false);
  { ScopedTimer timer(hist); }
  EXPECT_EQ(hist->count(), 2u);
}

// --- FaultInjector counts and listener (util/fault satellite) --------------

std::vector<std::pair<util::FaultSite, int64_t>>& FiredLog() {
  static std::vector<std::pair<util::FaultSite, int64_t>> log;
  return log;
}

TEST_F(ObsTest, FaultInjectorExposesPerSiteCounts) {
  auto& injector = util::FaultInjector::Global();
  injector.ArmAt(util::FaultSite::kDecodeNaN, {1, 3});
  for (int i = 0; i < 5; ++i) {
    (void)injector.ShouldFire(util::FaultSite::kDecodeNaN);
  }
  EXPECT_EQ(injector.Occurrences(util::FaultSite::kDecodeNaN), 5);
  EXPECT_EQ(injector.Fired(util::FaultSite::kDecodeNaN), 2);

  const auto counts = injector.AllCounts();
  ASSERT_EQ(counts.size(), static_cast<size_t>(util::kNumFaultSites));
  const auto& decode =
      counts[static_cast<size_t>(util::FaultSite::kDecodeNaN)];
  EXPECT_EQ(decode.site, util::FaultSite::kDecodeNaN);
  EXPECT_EQ(decode.seen, 5);
  EXPECT_EQ(decode.fired, 2);
  // Unarmed sites report zero activity.
  const auto& ckpt =
      counts[static_cast<size_t>(util::FaultSite::kCheckpointWrite)];
  EXPECT_EQ(ckpt.seen, 0);
  EXPECT_EQ(ckpt.fired, 0);
}

TEST_F(ObsTest, PublishFaultMetricsSurfacesCountsAsGauges) {
  auto& injector = util::FaultInjector::Global();
  injector.ArmAt(util::FaultSite::kSlotLeak, {0});
  (void)injector.ShouldFire(util::FaultSite::kSlotLeak);
  (void)injector.ShouldFire(util::FaultSite::kSlotLeak);

  MetricsRegistry registry;
  PublishFaultMetrics(&registry);
  EXPECT_DOUBLE_EQ(registry.GetGauge("fault.slot-leak.seen")->value(), 2.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("fault.slot-leak.fired")->value(), 1.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("fault.decode-nan.seen")->value(), 0.0);
}

TEST_F(ObsTest, FireListenerSeesEveryFiringWithItsOccurrence) {
  FiredLog().clear();
  util::FaultInjector::SetFireListener(
      +[](util::FaultSite site, int64_t occurrence) {
        FiredLog().emplace_back(site, occurrence);
      });
  auto& injector = util::FaultInjector::Global();
  injector.ArmAt(util::FaultSite::kGradExplode, {0, 2});
  for (int i = 0; i < 4; ++i) {
    (void)injector.ShouldFire(util::FaultSite::kGradExplode);
  }
  ASSERT_EQ(FiredLog().size(), 2u);
  EXPECT_EQ(FiredLog()[0],
            std::make_pair(util::FaultSite::kGradExplode, int64_t{0}));
  EXPECT_EQ(FiredLog()[1],
            std::make_pair(util::FaultSite::kGradExplode, int64_t{2}));
}

TEST_F(ObsTest, WiredFaultFiringsLandInFlightRecorder) {
  WireFaultEventsToFlightRecorder();
  FlightRecorder::Global().Clear();
  auto& injector = util::FaultInjector::Global();
  injector.ArmAt(util::FaultSite::kOnTokenThrow, {0});
  (void)injector.ShouldFire(util::FaultSite::kOnTokenThrow);
  const auto events = FlightRecorder::Global().Dump();
  bool found = false;
  for (const FlightEvent& e : events) {
    if (e.type == FlightEventType::kFaultInjected &&
        e.a == static_cast<int32_t>(util::FaultSite::kOnTokenThrow) &&
        e.b == 0) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// --- FlightRecorder --------------------------------------------------------

TEST_F(ObsTest, FlightRecorderOrdersEventsByTicket) {
  FlightRecorder rec(16);
  rec.Record(FlightEventType::kAdmission, 1, 100);
  rec.Record(FlightEventType::kRetirement, 2, 100, 8);
  rec.Record(FlightEventType::kDrainBegin);
  EXPECT_EQ(rec.total_recorded(), 3u);
  const auto events = rec.Dump();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].type, FlightEventType::kAdmission);
  EXPECT_EQ(events[0].a, 1);
  EXPECT_EQ(events[0].b, 100);
  EXPECT_EQ(events[1].type, FlightEventType::kRetirement);
  EXPECT_EQ(events[1].c, 8);
  EXPECT_EQ(events[2].type, FlightEventType::kDrainBegin);
  EXPECT_LT(events[0].ticket, events[1].ticket);
  EXPECT_LT(events[1].ticket, events[2].ticket);
  EXPECT_LE(events[0].ts_ns, events[2].ts_ns);
}

TEST_F(ObsTest, FlightRecorderKeepsNewestWhenLapped) {
  FlightRecorder rec(8);
  for (int i = 0; i < 20; ++i) {
    rec.Record(FlightEventType::kAdmission, i, i);
  }
  EXPECT_EQ(rec.total_recorded(), 20u);
  const auto events = rec.Dump();
  ASSERT_EQ(events.size(), 8u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, static_cast<int32_t>(12 + i));
    EXPECT_EQ(events[i].ticket, 12 + i);
  }
  // Dump with a cap returns only the newest.
  const auto tail = rec.Dump(3);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].a, 17);
}

TEST_F(ObsTest, FlightRecorderDisabledRecordsNothing) {
  FlightRecorder rec(8);
  rec.SetEnabled(false);
  rec.Record(FlightEventType::kAdmission, 1, 1);
  EXPECT_EQ(rec.total_recorded(), 0u);
  EXPECT_TRUE(rec.Dump().empty());
  rec.SetEnabled(true);
  rec.Record(FlightEventType::kAdmission, 2, 2);
  EXPECT_EQ(rec.Dump().size(), 1u);
}

TEST_F(ObsTest, FlightRecorderClearEmptiesRing) {
  FlightRecorder rec(8);
  rec.Record(FlightEventType::kDrainBegin);
  rec.Clear();
  EXPECT_EQ(rec.total_recorded(), 0u);
  EXPECT_TRUE(rec.Dump().empty());
  rec.Record(FlightEventType::kAdmission, 3, 3);
  const auto events = rec.Dump();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].a, 3);
}

TEST_F(ObsTest, FlightRecorderFormatMentionsEventNames) {
  FlightRecorder rec(8);
  rec.Record(FlightEventType::kBreakerTransition, 1, 0, 1);
  rec.Record(FlightEventType::kFailover, 2, 77, 1);
  const std::string text = rec.Format();
  EXPECT_NE(text.find("breaker-transition"), std::string::npos) << text;
  EXPECT_NE(text.find("failover"), std::string::npos) << text;
}

// Satellite: racing producers plus a mid-stream dumper. Every event a
// dump returns must be internally consistent (the c field is a function
// of a and b, so a torn slot — fields from two different writers — would
// be caught), tickets strictly ascend, and nothing ever deadlocks or
// waits. TSan (the tsan-obs preset) checks the memory-order story.
TEST_F(ObsTest, FlightRecorderConcurrentWritersAndDumper) {
  FlightRecorder rec(64);  // small ring: writers lap each other constantly
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  std::atomic<bool> start{false};
  std::atomic<bool> done{false};
  std::atomic<uint64_t> dumps{0};

  std::thread dumper([&] {
    while (!done.load(std::memory_order_acquire)) {
      const auto events = rec.Dump();
      uint64_t prev_ticket = 0;
      bool first = true;
      for (const FlightEvent& e : events) {
        ASSERT_EQ(e.type, FlightEventType::kAdmission);
        // Payload invariant: c = a * 1e6 + b. A torn slot breaks it.
        ASSERT_EQ(e.c, static_cast<int64_t>(e.a) * 1000000 + e.b);
        if (!first) {
          ASSERT_GT(e.ticket, prev_ticket);
        }
        prev_ticket = e.ticket;
        first = false;
      }
      dumps.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kPerProducer; ++i) {
        rec.Record(FlightEventType::kAdmission, p, i,
                   static_cast<int64_t>(p) * 1000000 + i);
      }
    });
  }
  start.store(true, std::memory_order_release);
  for (auto& t : producers) t.join();
  done.store(true, std::memory_order_release);
  dumper.join();

  EXPECT_EQ(rec.total_recorded(),
            static_cast<uint64_t>(kProducers) * kPerProducer);
  EXPECT_GT(dumps.load(), 0u);
  // Quiescent dump: exactly the newest `capacity` events, fully coherent.
  const auto events = rec.Dump();
  EXPECT_EQ(events.size(), rec.capacity());
  for (const FlightEvent& e : events) {
    EXPECT_EQ(e.c, static_cast<int64_t>(e.a) * 1000000 + e.b);
  }
}

// --- Dump boundary regressions ---------------------------------------------

TEST_F(ObsTest, FlightRecorderDumpZeroMaxEventsIsEmpty) {
  FlightRecorder rec(8);
  rec.Record(FlightEventType::kAdmission, 1, 1);
  rec.Record(FlightEventType::kAdmission, 2, 2);
  EXPECT_TRUE(rec.Dump(0).empty());
  EXPECT_TRUE(rec.DumpSince(0, 0).empty());
}

TEST_F(ObsTest, FlightRecorderDumpMaxEventsEqualsCapacity) {
  FlightRecorder rec(8);
  ASSERT_EQ(rec.capacity(), 8u);
  // Exactly full, not wrapped: a cap equal to capacity returns all of it.
  for (int i = 0; i < 8; ++i) {
    rec.Record(FlightEventType::kAdmission, i, i);
  }
  auto events = rec.Dump(rec.capacity());
  ASSERT_EQ(events.size(), 8u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ticket, i);
  }
  // Wrapped: still exactly capacity events, the newest ones.
  for (int i = 8; i < 13; ++i) {
    rec.Record(FlightEventType::kAdmission, i, i);
  }
  events = rec.Dump(rec.capacity());
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(events.front().ticket, 5u);
  EXPECT_EQ(events.back().ticket, 12u);
}

// Satellite regression: a dump racing a writer that is actively wrapping
// the ring. Every returned event must be coherent and strictly
// ticket-ascending; slots torn mid-write are skipped, never returned.
// The tsan-obs preset runs this under ThreadSanitizer.
TEST_F(ObsTest, FlightRecorderDumpRacesWrappingWriter) {
  FlightRecorder rec(8);  // tiny ring: every 8 records is a full lap
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int i = 0; i < 200000 && !done.load(std::memory_order_relaxed);
         ++i) {
      rec.Record(FlightEventType::kAdmission, i & 0x7FFFFFFF, i,
                 static_cast<int64_t>(i) * 3 + 1);
    }
    done.store(true, std::memory_order_release);
  });
  while (!done.load(std::memory_order_acquire)) {
    const auto events = rec.Dump();
    uint64_t prev = 0;
    bool first = true;
    for (const FlightEvent& e : events) {
      ASSERT_EQ(e.c, e.b * 3 + 1);  // torn slot detector
      if (!first) ASSERT_GT(e.ticket, prev);
      prev = e.ticket;
      first = false;
    }
  }
  writer.join();
}

TEST_F(ObsTest, FlightRecorderDumpSinceFiltersOldTickets) {
  FlightRecorder rec(16);
  for (int i = 0; i < 10; ++i) {
    rec.Record(FlightEventType::kAdmission, i, i);
  }
  const auto delta = rec.DumpSince(6);
  ASSERT_EQ(delta.size(), 4u);
  EXPECT_EQ(delta.front().ticket, 6u);
  EXPECT_EQ(delta.back().ticket, 9u);
  // Cursor past the end: empty delta, the shipper's steady state.
  EXPECT_TRUE(rec.DumpSince(10).empty());
  EXPECT_TRUE(rec.DumpSince(1000).empty());
  // min_ticket == 0 is a plain Dump.
  EXPECT_EQ(rec.DumpSince(0).size(), 10u);
}

TEST_F(ObsTest, FlightRecorderDumpSinceAfterWrapReturnsSurvivors) {
  FlightRecorder rec(8);
  for (int i = 0; i < 20; ++i) {
    rec.Record(FlightEventType::kAdmission, i, i);
  }
  // Ring holds tickets 12..19. A cursor pointing into the evicted range
  // returns everything that survived.
  const auto delta = rec.DumpSince(5);
  ASSERT_EQ(delta.size(), 8u);
  EXPECT_EQ(delta.front().ticket, 12u);
  // A cursor inside the surviving range trims exactly.
  EXPECT_EQ(rec.DumpSince(15).size(), 5u);
}

// Satellite: the clock contract documented on FlightEvent — timestamps
// come from steady_clock, so they are monotone non-decreasing in ticket
// order and consistent with a bracketing pair of steady_clock readings.
TEST_F(ObsTest, FlightRecorderTimestampsAreSteadyClockMonotone) {
  FlightRecorder rec(256);
  const int64_t before = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now().time_since_epoch())
                             .count();
  for (int i = 0; i < 100; ++i) {
    rec.Record(FlightEventType::kAdmission, i, i);
  }
  const int64_t after = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now().time_since_epoch())
                            .count();
  const auto events = rec.Dump();
  ASSERT_EQ(events.size(), 100u);
  int64_t prev = before;
  for (const FlightEvent& e : events) {
    EXPECT_GE(e.ts_ns, prev);  // never steps backwards across tickets
    prev = e.ts_ns;
  }
  EXPECT_LE(prev, after);
}

// --- HistogramSnapshot::Merge + RegistrySnapshot ---------------------------

TEST_F(ObsTest, HistogramSnapshotMergeAddsCountsAndBuckets) {
  Histogram a, b;
  for (int i = 0; i < 10; ++i) a.Record(5.0);
  for (int i = 0; i < 30; ++i) b.Record(500.0);
  HistogramSnapshot sa = a.Snapshot();
  const HistogramSnapshot sb = b.Snapshot();
  sa.Merge(sb);
  EXPECT_EQ(sa.count, 40u);
  EXPECT_DOUBLE_EQ(sa.sum, 10 * 5.0 + 30 * 500.0);
  EXPECT_DOUBLE_EQ(sa.max, 500.0);
  // Percentiles read from the merged buckets: p20 sits in the 5.0 mass,
  // p80 in the 500.0 mass (one geometric bucket of slop each way).
  EXPECT_LE(sa.Percentile(0.20), 5.0 * Histogram::kGrowth);
  EXPECT_GE(sa.Percentile(0.80), 500.0 / Histogram::kGrowth);
}

TEST_F(ObsTest, HistogramSnapshotMergeWithEmptySides) {
  Histogram a;
  a.Record(7.0);
  HistogramSnapshot sa = a.Snapshot();
  HistogramSnapshot empty;
  sa.Merge(empty);  // no-op
  EXPECT_EQ(sa.count, 1u);
  empty.Merge(sa);  // empty absorbs the populated side
  EXPECT_EQ(empty.count, 1u);
  EXPECT_DOUBLE_EQ(empty.max, sa.max);
  EXPECT_EQ(empty.buckets.size(), sa.buckets.size());
}

TEST_F(ObsTest, RegistrySnapshotFiltersByPrefix) {
  MetricsRegistry registry;
  registry.GetCounter("dist.worker.0.steps")->Increment(7);
  registry.GetCounter("dist.worker.1.steps")->Increment(9);
  registry.GetCounter("serve.requests")->Increment(3);
  registry.GetGauge("dist.worker.0.step")->Set(6.0);
  registry.GetHistogram("dist.worker.0.lat")->Record(2.0);

  const RegistrySnapshot all = registry.Snapshot();
  EXPECT_EQ(all.counters.size(), 3u);
  EXPECT_EQ(all.counters.at("serve.requests"), 3u);

  const RegistrySnapshot mine = registry.Snapshot("dist.worker.0.");
  EXPECT_EQ(mine.counters.size(), 1u);
  EXPECT_EQ(mine.counters.at("dist.worker.0.steps"), 7u);
  EXPECT_EQ(mine.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(mine.gauges.at("dist.worker.0.step"), 6.0);
  ASSERT_EQ(mine.histograms.size(), 1u);
  EXPECT_EQ(mine.histograms.at("dist.worker.0.lat").count, 1u);
}

}  // namespace
}  // namespace llm::obs
