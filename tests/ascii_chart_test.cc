// Tests for the ASCII chart renderer and deep-graph autograd stress.
#include <gtest/gtest.h>

#include <cmath>

#include "core/graph.h"
#include "core/ops.h"
#include "util/ascii_chart.h"

namespace llm {
namespace {

TEST(AsciiChartTest, DimensionsAndAxes) {
  util::AsciiChart chart(20, 5);
  chart.AddSeries('*', {0.0, 1.0, 2.0, 3.0});
  const std::string out = chart.Render();
  // 5 plot rows + 1 axis row.
  int lines = 0;
  for (char c : out) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 6);
  EXPECT_NE(out.find('|'), std::string::npos);
  EXPECT_NE(out.find('+'), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiChartTest, MonotoneSeriesRisesLeftToRight) {
  util::AsciiChart chart(30, 7);
  std::vector<double> ys;
  for (int i = 0; i < 30; ++i) ys.push_back(i);
  chart.AddSeries('#', ys);
  const std::string out = chart.Render();
  // Find rows (top to bottom) of the first and last '#' columns.
  std::vector<std::string> lines;
  std::string cur;
  for (char c : out) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  int first_row = -1, last_row = -1;
  for (int r = 0; r < 7; ++r) {
    const std::string& line = lines[static_cast<size_t>(r)];
    const size_t bar = line.find('|');
    for (size_t c = bar + 1; c < line.size(); ++c) {
      if (line[c] != '#') continue;
      if (c == bar + 1) first_row = r;        // leftmost column
      if (c == line.size() - 1) last_row = r;  // rightmost column
    }
  }
  ASSERT_GE(first_row, 0);
  ASSERT_GE(last_row, 0);
  EXPECT_GT(first_row, last_row);  // rises => later rows are higher (lower index)
}

TEST(AsciiChartTest, TwoSeriesAndLegend) {
  util::AsciiChart chart(16, 4);
  chart.AddSeries('a', {1, 1, 1}, "flat");
  chart.AddSeries('b', {0, 2, 0}, "spike");
  const std::string out = chart.Render();
  EXPECT_NE(out.find("a = flat"), std::string::npos);
  EXPECT_NE(out.find("b = spike"), std::string::npos);
}

TEST(AsciiChartTest, FixedRangeClamps) {
  util::AsciiChart chart(10, 3);
  chart.SetYRange(0.0, 1.0);
  chart.AddSeries('x', {-5.0, 0.5, 5.0});  // out-of-range values clamp
  EXPECT_FALSE(chart.Render().empty());
}

// ---------------------------------------------------------------------------
// Autograd stress: long chains and heavily shared subgraphs.
// ---------------------------------------------------------------------------

TEST(AutogradStress, HundredOpChainGradientMatches) {
  core::Variable x(core::Tensor::FromVector({2}, {0.3f, -0.2f}), true);
  auto f = [&] {
    core::Variable h = x;
    for (int i = 0; i < 100; ++i) {
      // Contractive chain keeps values in a well-conditioned range.
      h = core::TanhOp(core::ScalarMul(h, 0.9f));
    }
    return core::SumAll(h);
  };
  x.ZeroGrad();
  core::Backward(f());
  const core::Tensor analytic = x.grad();
  const core::Tensor numeric = core::NumericalGradient(f, x, 1e-3f);
  for (int64_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(analytic[i], numeric[i],
                2e-2f * std::max(1.0f, std::fabs(numeric[i])));
  }
}

TEST(AutogradStress, DiamondSharingAccumulatesOnce) {
  // y = (x + x) * (x + x) = 4 x^2  =>  dy/dx = 8x.
  core::Variable x(core::Tensor::FromVector({1}, {1.5f}), true);
  core::Variable s = core::Add(x, x);
  core::Variable y = core::SumAll(core::Mul(s, s));
  core::Backward(y);
  EXPECT_NEAR(x.grad()[0], 8.0f * 1.5f, 1e-4f);
}

TEST(AutogradStress, WideFanOutAccumulates) {
  // y = sum over 32 branches of (c_i * x); dy/dx = sum c_i.
  core::Variable x(core::Tensor::FromVector({1}, {2.0f}), true);
  core::Variable total;
  float coeff_sum = 0.0f;
  for (int i = 1; i <= 32; ++i) {
    const float c = static_cast<float>(i) * 0.1f;
    coeff_sum += c;
    core::Variable branch = core::ScalarMul(x, c);
    total = total.defined() ? core::Add(total, branch) : branch;
  }
  core::Backward(core::SumAll(total));
  EXPECT_NEAR(x.grad()[0], coeff_sum, 1e-3f);
}

TEST(AutogradStress, RepeatedBackwardAccumulates) {
  core::Variable x(core::Tensor::FromVector({1}, {3.0f}), true);
  core::Variable y1 = core::SumAll(core::Mul(x, x));
  core::Backward(y1);
  const float g1 = x.grad()[0];
  core::Variable y2 = core::SumAll(core::Mul(x, x));
  core::Backward(y2);  // accumulates onto the existing grad
  EXPECT_NEAR(x.grad()[0], 2.0f * g1, 1e-4f);
  x.ZeroGrad();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
}

}  // namespace
}  // namespace llm
