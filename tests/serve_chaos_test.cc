// Chaos harness for the serving runtime (ctest label: `chaos`).
//
// Each schedule is a seeded, randomized storm: a small server with random
// batch/queue/worker/watchdog geometry, probabilistic fault plans armed on
// every serving injection site (poisoned logits, worker stalls, leaked KV
// slots, throwing callbacks), concurrent submitters, random cancellations,
// and tight deadlines — finished off with either a graceful Drain or a
// hard Shutdown.
//
// Whatever the storm does, two invariants must survive every schedule:
//
//   1. Conservation: every accepted request reaches exactly one terminal
//      state — submitted == completed + cancelled + expired + failed +
//      preempted — and Wait() returns for every accepted id.
//   2. No leaks: at quiescence every KV slot is back in the free list.
//
// Plus the streaming contract: tokens delivered through on_token are
// always a prefix of the request's final token vector, in order.
//
// The schedules are deterministic per seed (modulo thread interleaving),
// so a failure reproduces under --gtest_filter with its seed. The suite is
// intended to run under TSan too (preset `tsan-chaos`); assertions are
// race-tolerant — they pin down invariants, not interleavings.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/inference_server.h"
#include "util/fault.h"
#include "util/rng.h"

namespace llm::serve {
namespace {

// Everything the harness remembers about one submitted request.
struct RequestLog {
  GenerateRequest request;  // as submitted (callback stripped)
  RequestId id = 0;
  bool cancel = false;       // harness will cancel it shortly after submit
  int64_t cancel_after_us = 0;
  bool has_callback = false;
  std::mutex mu;
  std::vector<int64_t> streamed;  // tokens seen by on_token, in order
};

class ServeChaosTest : public ::testing::TestWithParam<int> {
 protected:
  void TearDown() override { util::FaultInjector::Global().Disarm(); }
};

TEST_P(ServeChaosTest, InvariantsSurviveRandomFaultSchedule) {
  const int seed = GetParam();
  SCOPED_TRACE("chaos seed " + std::to_string(seed));
  util::Rng chaos(0x9E3779B97F4A7C15ull ^ (static_cast<uint64_t>(seed) *
                                          0x2545F4914F6CDD1Dull));

  // Random server geometry.
  nn::GPTConfig cfg;
  cfg.vocab_size = 19;
  cfg.max_seq_len = 12 + static_cast<int64_t>(chaos.UniformInt(20));
  cfg.d_model = 24;
  cfg.n_layer = 2;
  cfg.n_head = 3;
  util::Rng model_rng(static_cast<uint64_t>(seed) + 100);
  nn::GPTModel model(cfg, &model_rng);

  ServerOptions options;
  options.max_batch_size = 1 + static_cast<int64_t>(chaos.UniformInt(4));
  options.queue_capacity = 4 + static_cast<size_t>(chaos.UniformInt(12));
  options.num_workers = static_cast<int>(chaos.UniformInt(3));
  const bool watchdog = (seed % 3) == 0;
  if (watchdog) options.tick_budget = std::chrono::milliseconds(15);

  // Random request population, generated up front so the schedule is a
  // pure function of the seed.
  const int n_requests = 5 + static_cast<int>(chaos.UniformInt(9));
  std::vector<std::shared_ptr<RequestLog>> logs;
  for (int i = 0; i < n_requests; ++i) {
    auto log = std::make_shared<RequestLog>();
    const int prompt_len = 1 + static_cast<int>(chaos.UniformInt(3));
    for (int t = 0; t < prompt_len; ++t) {
      log->request.prompt.push_back(
          static_cast<int64_t>(chaos.UniformInt(cfg.vocab_size)));
    }
    log->request.seed = chaos.NextU64();
    log->request.max_new_tokens = 1 + static_cast<int64_t>(chaos.UniformInt(16));
    log->request.sampler.temperature = 0.8f;
    log->request.sampler.top_k = 5;
    if (chaos.Bernoulli(0.3)) {
      log->request.timeout =
          std::chrono::milliseconds(3 + chaos.UniformInt(40));
    }
    log->has_callback = chaos.Bernoulli(0.4);
    log->cancel = chaos.Bernoulli(0.25);
    log->cancel_after_us = static_cast<int64_t>(chaos.UniformInt(2000));
    logs.push_back(std::move(log));
  }

  // Probabilistic fault plans on every serving site. Arm before Start so
  // occurrence counters begin at the first tick.
  auto& injector = util::FaultInjector::Global();
  injector.ArmRandom(util::FaultSite::kDecodeNaN, 0.08 * chaos.Uniform(),
                     chaos.NextU64());
  injector.ArmRandom(util::FaultSite::kSlotLeak, 0.10 * chaos.Uniform(),
                     chaos.NextU64());
  injector.ArmRandom(util::FaultSite::kOnTokenThrow, 0.05 * chaos.Uniform(),
                     chaos.NextU64());
  if (seed % 5 == 0) {
    // Two stalls mid-run; with the watchdog armed they become failed
    // requests, without it they are just slow ticks.
    injector.ArmAt(util::FaultSite::kWorkerStall, {2, 29});
  }

  InferenceServer server(&model, options);
  server.Start();

  // Two submitter threads race admission; each cancels its own marked
  // requests after a short delay, interleaving cancellation with
  // streaming, expiry, and the armed faults.
  std::mutex accepted_mu;
  std::vector<RequestId> accepted;
  auto submit_range = [&](size_t begin, size_t step) {
    for (size_t i = begin; i < logs.size(); i += step) {
      auto& log = logs[i];
      GenerateRequest request = log->request;
      if (log->has_callback) {
        RequestLog* raw = log.get();
        request.on_token = [raw](RequestId, int64_t token) {
          std::lock_guard<std::mutex> lock(raw->mu);
          raw->streamed.push_back(token);
        };
      }
      RetryOptions retry;
      retry.max_attempts = 4;
      retry.initial_backoff = std::chrono::milliseconds(1);
      retry.max_backoff = std::chrono::milliseconds(8);
      retry.jitter_seed = static_cast<uint64_t>(seed) * 31 + i;
      util::StatusOr<RequestId> id = (i % 4 == 0)
                                         ? server.SubmitWithRetry(request, retry)
                                         : server.Submit(std::move(request));
      if (!id.ok()) continue;  // shed: rejected never enters conservation
      log->id = id.value();
      {
        std::lock_guard<std::mutex> lock(accepted_mu);
        accepted.push_back(id.value());
      }
      if (log->cancel) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(log->cancel_after_us));
        server.Cancel(id.value());
      }
    }
  };
  std::thread submitter_a([&] { submit_range(0, 2); });
  std::thread submitter_b([&] { submit_range(1, 2); });
  submitter_a.join();
  submitter_b.join();

  // Alternate the two ways down: graceful drain (everything must reach a
  // terminal state well inside the timeout) or hard shutdown mid-flight.
  if (seed % 2 == 0) {
    const util::Status drained = server.Drain(std::chrono::seconds(30));
    EXPECT_TRUE(drained.ok()) << drained.ToString();
  } else {
    server.Shutdown();
  }

  // Invariant 1: Wait returns for every accepted id, with a terminal
  // reason, and the streaming prefix contract held.
  for (const auto& log : logs) {
    if (log->id == 0) continue;
    auto result = server.Wait(log->id);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_NE(result.value().reason, FinishReason::kNone);
    if (log->has_callback) {
      std::lock_guard<std::mutex> lock(log->mu);
      ASSERT_LE(log->streamed.size(), result.value().tokens.size());
      for (size_t t = 0; t < log->streamed.size(); ++t) {
        EXPECT_EQ(log->streamed[t], result.value().tokens[t])
            << "streamed token " << t << " diverged from the final output";
      }
    }
  }

  // Invariant 2: conservation and no leaked slots at quiescence.
  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.submitted, accepted.size());
  EXPECT_EQ(stats.submitted, stats.completed + stats.cancelled +
                                 stats.expired + stats.failed +
                                 stats.preempted);
  EXPECT_EQ(stats.active_slots, 0);
  EXPECT_EQ(stats.free_slots, stats.total_slots);
  EXPECT_EQ(stats.queue_depth, 0u);
}

// >= 50 distinct schedules, as the failure model demands: enough to cover
// fault-site combinations, both shutdown paths, and watchdog on/off.
INSTANTIATE_TEST_SUITE_P(Schedules, ServeChaosTest, ::testing::Range(0, 56));

// --- Tenant storms ---------------------------------------------------------
//
// The multi-tenant variant: every request carries a random tenant class,
// background rides a randomized token quota, the queue is small enough
// that chat arrivals shed and preempt lower classes, and slot-leak /
// poisoned-logit faults fire throughout. On top of the global invariants,
// conservation must hold PER CLASS — shed and preempted requests are
// terminal states attributed to the class that suffered them, never
// silently dropped — and chat (non-sheddable, non-preemptible under the
// default policy) must see neither.
class TenantStormTest : public ::testing::TestWithParam<int> {
 protected:
  void TearDown() override { util::FaultInjector::Global().Disarm(); }
};

TEST_P(TenantStormTest, PerClassConservationSurvivesStorm) {
  const int seed = GetParam();
  SCOPED_TRACE("tenant storm seed " + std::to_string(seed));
  util::Rng chaos(0xC0FFEEull ^ (static_cast<uint64_t>(seed) *
                                 0x9E3779B97F4A7C15ull));

  nn::GPTConfig cfg;
  cfg.vocab_size = 19;
  cfg.max_seq_len = 16;
  cfg.d_model = 24;
  cfg.n_layer = 2;
  cfg.n_head = 3;
  util::Rng model_rng(static_cast<uint64_t>(seed) + 900);
  nn::GPTModel model(cfg, &model_rng);

  ServerOptions options;
  options.max_batch_size = 1 + static_cast<int64_t>(chaos.UniformInt(3));
  options.queue_capacity = 2 + static_cast<size_t>(chaos.UniformInt(4));
  options.num_workers = static_cast<int>(chaos.UniformInt(2));
  if (chaos.Bernoulli(0.5)) {
    // Randomized background quota, tight enough to reject some arrivals.
    auto& background = options.tenants.classes[static_cast<size_t>(
        TenantClass::kBackground)];
    background.quota_tokens_per_sec = 1.0 + chaos.Uniform() * 20.0;
    background.quota_burst_tokens = 10.0 + chaos.Uniform() * 30.0;
  }

  const int n_requests = 8 + static_cast<int>(chaos.UniformInt(10));
  std::vector<GenerateRequest> requests;
  for (int i = 0; i < n_requests; ++i) {
    GenerateRequest request;
    const int prompt_len = 1 + static_cast<int>(chaos.UniformInt(3));
    for (int t = 0; t < prompt_len; ++t) {
      request.prompt.push_back(
          static_cast<int64_t>(chaos.UniformInt(cfg.vocab_size)));
    }
    request.seed = chaos.NextU64();
    request.max_new_tokens = 1 + static_cast<int64_t>(chaos.UniformInt(12));
    request.sampler.temperature = 0.8f;
    request.sampler.top_k = 5;
    request.tenant = static_cast<TenantClass>(chaos.UniformInt(3));
    requests.push_back(std::move(request));
  }

  auto& injector = util::FaultInjector::Global();
  injector.ArmRandom(util::FaultSite::kDecodeNaN, 0.08 * chaos.Uniform(),
                     chaos.NextU64());
  injector.ArmRandom(util::FaultSite::kSlotLeak, 0.10 * chaos.Uniform(),
                     chaos.NextU64());

  InferenceServer server(&model, options);
  server.Start();

  std::mutex accepted_mu;
  std::vector<RequestId> accepted;
  uint64_t accepted_per_class[kNumTenantClasses] = {};
  auto submit_range = [&](size_t begin, size_t step) {
    for (size_t i = begin; i < requests.size(); i += step) {
      util::StatusOr<RequestId> id = server.Submit(requests[i]);
      if (!id.ok()) continue;  // quota / queue rejection: never accepted
      std::lock_guard<std::mutex> lock(accepted_mu);
      accepted.push_back(id.value());
      ++accepted_per_class[static_cast<size_t>(requests[i].tenant)];
    }
  };
  std::thread submitter_a([&] { submit_range(0, 2); });
  std::thread submitter_b([&] { submit_range(1, 2); });
  submitter_a.join();
  submitter_b.join();

  if (seed % 2 == 0) {
    const util::Status drained = server.Drain(std::chrono::seconds(30));
    EXPECT_TRUE(drained.ok()) << drained.ToString();
  } else {
    server.Shutdown();
  }
  for (RequestId id : accepted) {
    auto result = server.Wait(id);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_NE(result.value().reason, FinishReason::kNone);
  }

  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.submitted, accepted.size());
  EXPECT_EQ(stats.submitted, stats.completed + stats.cancelled +
                                 stats.expired + stats.failed +
                                 stats.preempted);
  for (size_t c = 0; c < kNumTenantClasses; ++c) {
    const TenantClassStats& cs = stats.classes[c];
    SCOPED_TRACE(std::string("class ") +
                 TenantClassName(static_cast<TenantClass>(c)));
    EXPECT_EQ(cs.submitted, accepted_per_class[c]);
    EXPECT_EQ(cs.submitted, cs.completed + cs.cancelled + cs.expired +
                                cs.failed + cs.preempted);
  }
  // Chat is neither sheddable nor preemptible under the default policy.
  const TenantClassStats& chat =
      stats.classes[static_cast<size_t>(TenantClass::kChat)];
  EXPECT_EQ(chat.shed, 0u);
  EXPECT_EQ(chat.preempted, 0u);
  EXPECT_EQ(chat.quota_rejected, 0u);
  EXPECT_EQ(stats.active_slots, 0);
  EXPECT_EQ(stats.free_slots, stats.total_slots);
  EXPECT_EQ(stats.queue_depth, 0u);
}

INSTANTIATE_TEST_SUITE_P(Storms, TenantStormTest, ::testing::Range(0, 24));

}  // namespace
}  // namespace llm::serve
