// Tests for multi-tenant overload control (ctest label: `tenants`).
//
// Coverage map:
//   - TokenBucket: virtual-time refill determinism, burst clamping, the
//     unlimited sentinel, non-monotone clocks.
//   - WorkloadGenerator: same seed => bit-identical schedule, different
//     seed => different schedule, every sampled request within bounds.
//   - RequestQueue: strict priority pop, FIFO within a class, weighted-
//     fair pop, the eviction rules (newest victim, lowest class first,
//     chat untouchable), close/drain accounting.
//   - InferenceServer: quota admission that cannot starve other classes,
//     chat preempting a running batch decode, shed-from-queue, and the
//     two determinism contracts — surviving batch mates stay bit-exact
//     with their single-stream reference, and a preempted request's
//     partial output is a strict prefix of its own reference.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "sample/sampler.h"
#include "serve/inference_server.h"
#include "serve/request_queue.h"
#include "serve/tenant.h"
#include "serve/workload.h"

namespace llm::serve {
namespace {

using Clock = std::chrono::steady_clock;

// --- TokenBucket -----------------------------------------------------------

TEST(TokenBucketTest, RefillsAtConfiguredRateInVirtualTime) {
  const auto t0 = Clock::now();
  TokenBucket bucket(/*rate_per_sec=*/10.0, /*burst=*/20.0, t0);
  EXPECT_TRUE(bucket.TryConsume(20.0, t0));   // full burst available
  EXPECT_FALSE(bucket.TryConsume(1.0, t0));   // drained
  // One virtual second refills exactly 10 tokens.
  const auto t1 = t0 + std::chrono::seconds(1);
  EXPECT_FALSE(bucket.TryConsume(10.5, t1));
  EXPECT_TRUE(bucket.TryConsume(10.0, t1));
  // Refill clamps at burst: after a long idle stretch only 20 fit.
  const auto t2 = t1 + std::chrono::hours(1);
  EXPECT_FALSE(bucket.TryConsume(20.5, t2));
  EXPECT_TRUE(bucket.TryConsume(20.0, t2));
}

TEST(TokenBucketTest, NonPositiveRateMeansUnlimited) {
  const auto t0 = Clock::now();
  TokenBucket bucket(/*rate_per_sec=*/0.0, /*burst=*/1.0, t0);
  EXPECT_TRUE(bucket.unlimited());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(bucket.TryConsume(1e9, t0));
  }
}

TEST(TokenBucketTest, ClockGoingBackwardsNeverMintsTokens) {
  const auto t0 = Clock::now();
  TokenBucket bucket(/*rate_per_sec=*/10.0, /*burst=*/10.0, t0);
  EXPECT_TRUE(bucket.TryConsume(10.0, t0));
  // A clock that jumps backwards must not refill (or crash).
  EXPECT_FALSE(bucket.TryConsume(1.0, t0 - std::chrono::seconds(5)));
  EXPECT_GE(bucket.Available(t0), 0.0);
}

// --- WorkloadGenerator -----------------------------------------------------

nn::GPTConfig WorkloadConfig() {
  nn::GPTConfig cfg;
  cfg.vocab_size = 512;
  cfg.max_seq_len = 32;
  cfg.d_model = 16;
  cfg.n_layer = 1;
  cfg.n_head = 2;
  return cfg;
}

std::vector<TenantLoadSpec> StormSpecs() {
  return {MakeChatSpec(40.0), MakeBatchSpec(20.0), MakeBackgroundSpec(10.0)};
}

TEST(WorkloadGeneratorTest, SameSeedReproducesTheExactSchedule) {
  const nn::GPTConfig cfg = WorkloadConfig();
  WorkloadGenerator a(StormSpecs(), cfg, 42);
  WorkloadGenerator b(StormSpecs(), cfg, 42);
  const std::vector<Arrival> sa = a.OpenLoopSchedule(500.0);
  const std::vector<Arrival> sb = b.OpenLoopSchedule(500.0);
  ASSERT_FALSE(sa.empty());
  ASSERT_EQ(sa.size(), sb.size());
  for (size_t i = 0; i < sa.size(); ++i) {
    EXPECT_DOUBLE_EQ(sa[i].at_ms, sb[i].at_ms);
    EXPECT_EQ(sa[i].request.tenant, sb[i].request.tenant);
    EXPECT_EQ(sa[i].request.prompt, sb[i].request.prompt);
    EXPECT_EQ(sa[i].request.max_new_tokens, sb[i].request.max_new_tokens);
    EXPECT_EQ(sa[i].request.seed, sb[i].request.seed);
  }
}

TEST(WorkloadGeneratorTest, DifferentSeedsProduceDifferentSchedules) {
  const nn::GPTConfig cfg = WorkloadConfig();
  WorkloadGenerator a(StormSpecs(), cfg, 1);
  WorkloadGenerator b(StormSpecs(), cfg, 2);
  const std::vector<Arrival> sa = a.OpenLoopSchedule(500.0);
  const std::vector<Arrival> sb = b.OpenLoopSchedule(500.0);
  bool differs = sa.size() != sb.size();
  for (size_t i = 0; !differs && i < sa.size(); ++i) {
    differs = sa[i].at_ms != sb[i].at_ms ||
              sa[i].request.prompt != sb[i].request.prompt;
  }
  EXPECT_TRUE(differs);
}

TEST(WorkloadGeneratorTest, SampledRequestsRespectBounds) {
  const nn::GPTConfig cfg = WorkloadConfig();
  WorkloadGenerator gen(StormSpecs(), cfg, 7);
  for (size_t spec = 0; spec < gen.num_specs(); ++spec) {
    for (int i = 0; i < 200; ++i) {
      const GenerateRequest request = gen.Sample(spec);
      EXPECT_EQ(request.tenant, gen.spec(spec).tenant);
      EXPECT_GE(request.prompt.size(), 1u);
      EXPECT_LE(request.prompt.size(),
                static_cast<size_t>(gen.spec(spec).max_prompt_tokens));
      for (int64_t token : request.prompt) {
        EXPECT_GE(token, 0);
        EXPECT_LT(token, cfg.vocab_size);
      }
      EXPECT_GE(request.max_new_tokens, 1);
      EXPECT_LE(request.max_new_tokens, gen.spec(spec).max_output_tokens);
    }
  }
}

TEST(WorkloadGeneratorTest, ArrivalsAreSortedAndInsideTheWindow) {
  WorkloadGenerator gen(StormSpecs(), WorkloadConfig(), 9);
  const std::vector<Arrival> schedule = gen.OpenLoopSchedule(300.0);
  ASSERT_FALSE(schedule.empty());
  double prev = 0.0;
  for (const Arrival& arrival : schedule) {
    EXPECT_GE(arrival.at_ms, prev);
    EXPECT_LT(arrival.at_ms, 300.0);
    prev = arrival.at_ms;
  }
}

// --- RequestQueue lanes ----------------------------------------------------

std::shared_ptr<RequestState> MakeState(RequestId id, TenantClass tenant) {
  auto state = std::make_shared<RequestState>();
  state->id = id;
  state->request.tenant = tenant;
  return state;
}

TEST(TenantQueueTest, StrictPriorityAcrossClassesFifoWithin) {
  RequestQueue queue(8);
  ASSERT_TRUE(queue.Push(MakeState(1, TenantClass::kBackground)).ok());
  ASSERT_TRUE(queue.Push(MakeState(2, TenantClass::kBatch)).ok());
  ASSERT_TRUE(queue.Push(MakeState(3, TenantClass::kChat)).ok());
  ASSERT_TRUE(queue.Push(MakeState(4, TenantClass::kChat)).ok());
  ASSERT_TRUE(queue.Push(MakeState(5, TenantClass::kBatch)).ok());
  EXPECT_EQ(queue.PeekTopClass(), static_cast<int>(TenantClass::kChat));
  EXPECT_EQ(queue.size_of_class(TenantClass::kChat), 2u);

  std::shared_ptr<RequestState> state;
  std::vector<RequestId> order;
  while (queue.TryPop(&state)) order.push_back(state->id);
  EXPECT_EQ(order, (std::vector<RequestId>{3, 4, 2, 5, 1}));
  EXPECT_EQ(queue.PeekTopClass(), -1);
}

TEST(TenantQueueTest, WeightedFairPopBalancesByActiveShare) {
  RequestQueue queue(8);
  ASSERT_TRUE(queue.Push(MakeState(1, TenantClass::kChat)).ok());
  ASSERT_TRUE(queue.Push(MakeState(2, TenantClass::kBatch)).ok());
  const TenantPolicy policy = TenantPolicy::Default();  // weights 4/2/1

  // Chat already holds 4 slots (its full weighted share), batch holds 0:
  // the fair pop must pick batch even though chat outranks it.
  int64_t active[kNumTenantClasses] = {4, 0, 0};
  std::shared_ptr<RequestState> state;
  ASSERT_TRUE(queue.TryPopFair(active, policy, &state));
  EXPECT_EQ(state->id, 2u);
  // Now nothing active: chat wins on priority (ties break low index).
  int64_t idle[kNumTenantClasses] = {0, 0, 0};
  ASSERT_TRUE(queue.TryPopFair(idle, policy, &state));
  EXPECT_EQ(state->id, 1u);
}

TEST(TenantQueueTest, EvictionTakesNewestOfTheLowestClassOnly) {
  RequestQueue queue(4);
  const TenantPolicy policy = TenantPolicy::Default();
  ASSERT_TRUE(queue.Push(MakeState(1, TenantClass::kBatch)).ok());
  ASSERT_TRUE(queue.Push(MakeState(2, TenantClass::kBackground)).ok());
  ASSERT_TRUE(queue.Push(MakeState(3, TenantClass::kBackground)).ok());
  ASSERT_TRUE(queue.Push(MakeState(4, TenantClass::kBatch)).ok());

  // Background cannot displace anyone (no class below it).
  EXPECT_EQ(queue.EvictLowerPriority(TenantClass::kBackground, policy),
            nullptr);
  // Chat displaces the NEWEST background first (3, then 2), then batch.
  auto victim = queue.EvictLowerPriority(TenantClass::kChat, policy);
  ASSERT_NE(victim, nullptr);
  EXPECT_EQ(victim->id, 3u);
  victim = queue.EvictLowerPriority(TenantClass::kChat, policy);
  ASSERT_NE(victim, nullptr);
  EXPECT_EQ(victim->id, 2u);
  victim = queue.EvictLowerPriority(TenantClass::kChat, policy);
  ASSERT_NE(victim, nullptr);
  EXPECT_EQ(victim->id, 4u);  // newest batch, not the older id 1
  // Batch can only displace background, and none is left.
  EXPECT_EQ(queue.EvictLowerPriority(TenantClass::kBatch, policy), nullptr);
  EXPECT_EQ(queue.size(), 1u);
}

TEST(TenantQueueTest, NonSheddableClassesAreNeverEvicted) {
  RequestQueue queue(2);
  TenantPolicy policy = TenantPolicy::Default();
  policy.classes[static_cast<size_t>(TenantClass::kBatch)].sheddable = false;
  ASSERT_TRUE(queue.Push(MakeState(1, TenantClass::kBatch)).ok());
  ASSERT_TRUE(queue.Push(MakeState(2, TenantClass::kBatch)).ok());
  EXPECT_EQ(queue.EvictLowerPriority(TenantClass::kChat, policy), nullptr);
  EXPECT_EQ(queue.size(), 2u);
}

TEST(TenantQueueTest, CloseDrainsLanesAndCountsStayConsistent) {
  RequestQueue queue(8);
  ASSERT_TRUE(queue.Push(MakeState(1, TenantClass::kBackground)).ok());
  ASSERT_TRUE(queue.Push(MakeState(2, TenantClass::kChat)).ok());
  queue.Close();
  EXPECT_EQ(queue.Push(MakeState(3, TenantClass::kChat)).code(),
            util::StatusCode::kFailedPrecondition);
  // Queued work survives Close for the drain path, in priority order.
  std::shared_ptr<RequestState> state;
  ASSERT_TRUE(queue.TryPop(&state));
  EXPECT_EQ(state->id, 2u);
  ASSERT_TRUE(queue.TryPop(&state));
  EXPECT_EQ(state->id, 1u);
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_FALSE(queue.WaitPop(&state));  // closed and empty: no block
}

// --- Server integration ----------------------------------------------------

nn::GPTConfig SmallConfig() {
  nn::GPTConfig cfg;
  cfg.vocab_size = 17;
  cfg.max_seq_len = 32;
  cfg.d_model = 24;
  cfg.n_layer = 2;
  cfg.n_head = 3;
  return cfg;
}

GenerateRequest MakeGreedy(std::vector<int64_t> prompt, uint64_t seed,
                           int64_t max_new, TenantClass tenant) {
  GenerateRequest request;
  request.prompt = std::move(prompt);
  request.seed = seed;
  request.max_new_tokens = max_new;
  request.sampler.temperature = 0.0f;  // greedy: resumable bit-for-bit
  request.tenant = tenant;
  return request;
}

std::vector<int64_t> SingleStreamReference(const nn::GPTModel& model,
                                           const GenerateRequest& request) {
  sample::GenerateOptions opts;
  opts.max_new_tokens = request.max_new_tokens;
  opts.sampler = request.sampler;
  opts.stop_token = request.stop_token;
  util::Rng rng(request.seed);
  return sample::GenerateCached(model, request.prompt, opts, &rng);
}

TEST(TenantServerTest, QuotaRejectsBackgroundWithoutStarvingOthers) {
  util::Rng rng(61);
  nn::GPTModel model(SmallConfig(), &rng);
  ServerOptions options;
  options.max_batch_size = 2;
  options.num_workers = 1;
  options.queue_capacity = 8;
  auto& background = options.tenants.classes[static_cast<size_t>(
      TenantClass::kBackground)];
  background.quota_tokens_per_sec = 0.01;  // effectively burst-only
  background.quota_burst_tokens = 12.0;
  // Quota isolation is the subject here, not degradation: pin background
  // as protected so a slow run can't preempt/shed bg1 mid-decode.
  background.sheddable = false;
  background.preemptible = false;
  InferenceServer server(&model, options);
  server.Start();

  // First background request fits the burst (2 prompt + 8 output = 10);
  // the second is refused at the door with ResourceExhausted.
  auto bg1 = server.Submit(MakeGreedy({1, 2}, 1, 8, TenantClass::kBackground));
  ASSERT_TRUE(bg1.ok());
  auto bg2 = server.Submit(MakeGreedy({1, 2}, 2, 8, TenantClass::kBackground));
  ASSERT_FALSE(bg2.ok());
  EXPECT_EQ(bg2.status().code(), util::StatusCode::kResourceExhausted);

  // The exhausted background quota must not affect chat or batch.
  auto chat = server.Submit(MakeGreedy({3}, 3, 6, TenantClass::kChat));
  auto batch = server.Submit(MakeGreedy({4}, 4, 6, TenantClass::kBatch));
  ASSERT_TRUE(chat.ok());
  ASSERT_TRUE(batch.ok());
  for (RequestId id : {bg1.value(), chat.value(), batch.value()}) {
    auto result = server.Wait(id);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().reason, FinishReason::kLength);
  }

  const ServerStats stats = server.Stats();
  const TenantClassStats& bg_stats =
      stats.classes[static_cast<size_t>(TenantClass::kBackground)];
  EXPECT_EQ(bg_stats.quota_rejected, 1u);
  EXPECT_EQ(bg_stats.completed, 1u);
  EXPECT_EQ(stats.classes[static_cast<size_t>(TenantClass::kChat)].completed,
            1u);
  EXPECT_EQ(stats.classes[static_cast<size_t>(TenantClass::kBatch)].completed,
            1u);
  server.Shutdown();
}

// A batch request whose on_token callback sleeps: holds its KV slot long
// enough for the test to stage a chat arrival against a busy server.
GenerateRequest SlowBatch(std::vector<int64_t> prompt, uint64_t seed,
                          int64_t max_new) {
  GenerateRequest request = MakeGreedy(std::move(prompt), seed, max_new,
                                       TenantClass::kBatch);
  request.on_token = [](RequestId, int64_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
  };
  return request;
}

TEST(TenantServerTest, ChatPreemptsRunningBatchDecode) {
  util::Rng rng(62);
  nn::GPTModel model(SmallConfig(), &rng);
  ServerOptions options;
  options.max_batch_size = 1;  // one slot: chat MUST preempt to run
  options.num_workers = 1;
  options.queue_capacity = 4;
  InferenceServer server(&model, options);
  server.Start();

  const GenerateRequest batch = SlowBatch({5, 6}, 10, 24);
  const std::vector<int64_t> batch_reference =
      SingleStreamReference(model, batch);
  auto batch_id = server.Submit(batch);
  ASSERT_TRUE(batch_id.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));  // decoding

  const GenerateRequest chat = MakeGreedy({7}, 11, 4, TenantClass::kChat);
  RequestResult chat_result = server.GenerateBlocking(chat);
  EXPECT_EQ(chat_result.reason, FinishReason::kLength);
  EXPECT_EQ(chat_result.tokens, SingleStreamReference(model, chat));

  auto batch_result = server.Wait(batch_id.value());
  ASSERT_TRUE(batch_result.ok());
  EXPECT_EQ(batch_result.value().reason, FinishReason::kPreempted);
  EXPECT_EQ(batch_result.value().status.code(),
            util::StatusCode::kResourceExhausted);
  // The preempted partial output is a strict prefix of the batch
  // request's own single-stream reference — interrupted, not corrupted.
  const auto& partial = batch_result.value().tokens;
  EXPECT_LT(partial.size(), batch_reference.size());
  for (size_t i = 0; i < partial.size(); ++i) {
    EXPECT_EQ(partial[i], batch_reference[i]) << "token " << i;
  }

  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.preempted, 1u);
  EXPECT_EQ(stats.classes[static_cast<size_t>(TenantClass::kBatch)].preempted,
            1u);
  EXPECT_EQ(stats.classes[static_cast<size_t>(TenantClass::kChat)].completed,
            1u);
  EXPECT_EQ(stats.submitted, stats.completed + stats.cancelled +
                                 stats.expired + stats.failed +
                                 stats.preempted);
  EXPECT_EQ(stats.active_slots, 0);
  EXPECT_EQ(stats.free_slots, stats.total_slots);
  server.Shutdown();
}

TEST(TenantServerTest, SurvivingBatchMatesStayBitExactThroughPreemption) {
  // Two slow batch decodes share the batch; a chat arrival preempts
  // exactly one. The survivor must still produce its single-stream
  // reference bit-for-bit: preemption frees a lane, it must not perturb
  // anyone else's KV cache or sampling stream.
  util::Rng rng(63);
  nn::GPTModel model(SmallConfig(), &rng);
  ServerOptions options;
  options.max_batch_size = 2;
  options.num_workers = 1;
  options.queue_capacity = 4;
  InferenceServer server(&model, options);
  server.Start();

  const GenerateRequest batch_a = SlowBatch({1, 2, 3}, 20, 24);
  const GenerateRequest batch_b = SlowBatch({4, 5}, 21, 24);
  const std::vector<int64_t> ref_a = SingleStreamReference(model, batch_a);
  const std::vector<int64_t> ref_b = SingleStreamReference(model, batch_b);
  auto id_a = server.Submit(batch_a);
  auto id_b = server.Submit(batch_b);
  ASSERT_TRUE(id_a.ok());
  ASSERT_TRUE(id_b.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));  // both decoding

  RequestResult chat_result =
      server.GenerateBlocking(MakeGreedy({9}, 22, 3, TenantClass::kChat));
  EXPECT_EQ(chat_result.reason, FinishReason::kLength);

  auto result_a = server.Wait(id_a.value());
  auto result_b = server.Wait(id_b.value());
  ASSERT_TRUE(result_a.ok());
  ASSERT_TRUE(result_b.ok());
  const bool a_preempted =
      result_a.value().reason == FinishReason::kPreempted;
  const bool b_preempted =
      result_b.value().reason == FinishReason::kPreempted;
  ASSERT_TRUE(a_preempted != b_preempted)
      << "exactly one batch mate should be preempted";
  const RequestResult& survivor =
      a_preempted ? result_b.value() : result_a.value();
  const std::vector<int64_t>& survivor_ref = a_preempted ? ref_b : ref_a;
  const RequestResult& victim =
      a_preempted ? result_a.value() : result_b.value();
  const std::vector<int64_t>& victim_ref = a_preempted ? ref_a : ref_b;
  EXPECT_EQ(survivor.reason, FinishReason::kLength);
  EXPECT_EQ(survivor.tokens, survivor_ref);
  ASSERT_LE(victim.tokens.size(), victim_ref.size());
  for (size_t i = 0; i < victim.tokens.size(); ++i) {
    EXPECT_EQ(victim.tokens[i], victim_ref[i]) << "victim token " << i;
  }
  server.Shutdown();
}

TEST(TenantServerTest, ChatArrivalShedsNewestQueuedBatch) {
  util::Rng rng(64);
  nn::GPTModel model(SmallConfig(), &rng);
  ServerOptions options;
  options.max_batch_size = 1;
  options.num_workers = 1;
  options.queue_capacity = 2;
  InferenceServer server(&model, options);
  server.Start();

  // One slow batch decode in the slot, two more filling the queue.
  auto running = server.Submit(SlowBatch({1}, 30, 24));
  ASSERT_TRUE(running.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  auto queued_old = server.Submit(SlowBatch({2}, 31, 8));
  auto queued_new = server.Submit(SlowBatch({3}, 32, 8));
  ASSERT_TRUE(queued_old.ok());
  ASSERT_TRUE(queued_new.ok());

  // The queue is full; a chat submit displaces the NEWEST queued batch
  // request rather than being bounced.
  auto chat = server.Submit(MakeGreedy({4}, 33, 3, TenantClass::kChat));
  ASSERT_TRUE(chat.ok());
  auto shed = server.Wait(queued_new.value());
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed.value().reason, FinishReason::kPreempted);
  EXPECT_TRUE(shed.value().tokens.empty());
  EXPECT_NE(shed.value().status.ToString().find("shed"), std::string::npos);

  auto chat_result = server.Wait(chat.value());
  ASSERT_TRUE(chat_result.ok());
  EXPECT_EQ(chat_result.value().reason, FinishReason::kLength);
  ASSERT_TRUE(server.Wait(queued_old.value()).ok());
  ASSERT_TRUE(server.Wait(running.value()).ok());

  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.classes[static_cast<size_t>(TenantClass::kBatch)].shed, 1u);
  EXPECT_EQ(stats.classes[static_cast<size_t>(TenantClass::kChat)].shed, 0u);
  EXPECT_EQ(stats.submitted, stats.completed + stats.cancelled +
                                 stats.expired + stats.failed +
                                 stats.preempted);
  server.Shutdown();
}

TEST(TenantServerTest, PerClassLatencyPercentilesAreRecorded) {
  util::Rng rng(65);
  nn::GPTModel model(SmallConfig(), &rng);
  ServerOptions options;
  options.max_batch_size = 2;
  options.num_workers = 1;
  InferenceServer server(&model, options);
  server.Start();
  std::vector<RequestId> ids;
  for (uint64_t seed = 0; seed < 4; ++seed) {
    auto id = server.Submit(MakeGreedy({1, 2}, seed, 6, TenantClass::kChat));
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  for (RequestId id : ids) ASSERT_TRUE(server.Wait(id).ok());
  const ServerStats stats = server.Stats();
  const TenantClassStats& chat =
      stats.classes[static_cast<size_t>(TenantClass::kChat)];
  EXPECT_GT(chat.p50_ttft_ms, 0.0);
  EXPECT_GE(chat.p99_ttft_ms, chat.p50_ttft_ms);
  EXPECT_GT(chat.p50_tpot_ms, 0.0);  // 6 tokens each: TPOT well-defined
  EXPECT_GE(chat.p99_tpot_ms, chat.p50_tpot_ms);
  EXPECT_EQ(chat.tokens, 4u * 6u);
  server.Shutdown();
}

}  // namespace
}  // namespace llm::serve
