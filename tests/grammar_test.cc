// Tests for the grammar substrate: CFG/PCFG authoring, sampling, the
// Figure 3 arithmetic grammar and its precedence exercise, Earley parsing,
// CNF conversion, the inside algorithm, Viterbi, and Inside-Outside EM.
#include <gtest/gtest.h>

#include <cmath>

#include "grammar/cfg.h"
#include "grammar/cnf.h"
#include "grammar/earley.h"

namespace llm::grammar {
namespace {

Grammar AbGrammar() {
  // S -> a S b | a b  (the classic a^n b^n language).
  Grammar g;
  EXPECT_TRUE(g.AddRule("S", {"a", "S", "b"}, 0.4).ok());
  EXPECT_TRUE(g.AddRule("S", {"a", "b"}, 0.6).ok());
  EXPECT_TRUE(g.Finalize("S").ok());
  return g;
}

TEST(GrammarTest, FinalizeClassifiesSymbols) {
  Grammar g = AbGrammar();
  EXPECT_EQ(g.num_nonterminals(), 1);
  EXPECT_EQ(g.num_terminals(), 2);
  EXPECT_GE(g.TerminalId("a"), 0);
  EXPECT_EQ(g.TerminalId("S"), -1);
  EXPECT_GE(g.NonterminalId("S"), 0);
}

TEST(GrammarTest, ProbabilitiesNormalized) {
  Grammar g = AbGrammar();
  double sum = 0;
  for (const auto& r : g.rules()) sum += r.prob;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(GrammarTest, RejectsEmptyRhsAndDoubleFinalize) {
  Grammar g;
  EXPECT_FALSE(g.AddRule("S", {}).ok());
  EXPECT_TRUE(g.AddRule("S", {"a"}).ok());
  EXPECT_TRUE(g.Finalize("S").ok());
  EXPECT_FALSE(g.Finalize("S").ok());
  EXPECT_FALSE(g.AddRule("S", {"a"}).ok());
}

TEST(GrammarTest, SampleYieldsBalancedStrings) {
  Grammar g = AbGrammar();
  util::Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    auto tree = g.SampleTree(&rng);
    ASSERT_TRUE(tree.ok());
    auto leaves = Grammar::TreeLeaves(**tree);
    // a^n b^n: even length, first half a's, second half b's.
    ASSERT_EQ(leaves.size() % 2, 0u);
    const int a = g.TerminalId("a"), b = g.TerminalId("b");
    for (size_t j = 0; j < leaves.size() / 2; ++j) {
      EXPECT_EQ(leaves[j], a);
    }
    for (size_t j = leaves.size() / 2; j < leaves.size(); ++j) {
      EXPECT_EQ(leaves[j], b);
    }
  }
}

TEST(GrammarTest, TreeLogProbMatchesManual) {
  Grammar g = AbGrammar();
  util::Rng rng(2);
  auto tree = g.SampleTree(&rng);
  ASSERT_TRUE(tree.ok());
  const size_t depth = Grammar::TreeLeaves(**tree).size() / 2;
  // Tree uses rule0 (p=0.4) depth-1 times and rule1 (p=0.6) once.
  const double expected =
      static_cast<double>(depth - 1) * std::log(0.4) + std::log(0.6);
  EXPECT_NEAR(g.TreeLogProb(**tree), expected, 1e-9);
}

TEST(GrammarTest, LeafPairDistances) {
  // For "a b" (depth-1 tree): both leaves are children of S, distance 2.
  Grammar g = AbGrammar();
  util::Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    auto tree = g.SampleTree(&rng);
    ASSERT_TRUE(tree.ok());
    auto leaves = Grammar::TreeLeaves(**tree);
    if (leaves.size() != 2) continue;
    auto dist = Grammar::LeafPairDistances(**tree);
    EXPECT_EQ(dist[0][1], 2);
    return;
  }
  FAIL() << "never sampled the base case";
}

TEST(ArithmeticGrammarTest, PrecedenceExercise) {
  // The paper's Appendix A exercise: parse "y + 1 * x" and check that
  // multiplication binds tighter than addition: the * subtree is nested
  // inside the + expression's right/left TERM, never above it.
  Grammar g = ArithmeticGrammar();
  EarleyParser parser(&g);
  auto ids = parser.TerminalIds("y + 1 * x");
  ASSERT_TRUE(ids.ok());
  ASSERT_TRUE(parser.Recognize(*ids));
  auto tree = parser.Parse(*ids);
  ASSERT_TRUE(tree.ok());
  const std::string s = g.TreeToString(**tree);
  // Root rule must be EXPR -> TERM + EXPR with "y" alone under the TERM.
  EXPECT_EQ(s.find("(EXPR (TERM (VALUE y))"), 0u) << s;
  // The multiplication lives inside a TERM.
  EXPECT_NE(s.find("(TERM (VALUE 1) * (TERM (VALUE x)))"),
            std::string::npos)
      << s;
}

TEST(EarleyTest, RejectsIllFormed) {
  Grammar g = ArithmeticGrammar();
  EarleyParser parser(&g);
  auto bad = parser.TerminalIds("y + * x");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(parser.Recognize(*bad));
  EXPECT_FALSE(parser.Parse(*bad).ok());
  auto unbalanced = parser.TerminalIds("( y + x");
  ASSERT_TRUE(unbalanced.ok());
  EXPECT_FALSE(parser.Recognize(*unbalanced));
}

TEST(EarleyTest, AcceptsNestedParens) {
  Grammar g = ArithmeticGrammar();
  EarleyParser parser(&g);
  // Note Fig. 3's TERM -> VALUE * TERM requires a VALUE first factor, so
  // the parenthesized factor must come second.
  auto ids = parser.TerminalIds("( x * ( y + 1 ) + 0 )");
  ASSERT_TRUE(ids.ok());
  EXPECT_TRUE(parser.Recognize(*ids));
}

TEST(EarleyTest, UnknownTerminalRejected) {
  Grammar g = ArithmeticGrammar();
  EarleyParser parser(&g);
  EXPECT_FALSE(parser.TerminalIds("y + z").ok());
}

TEST(CnfTest, ConversionValidates) {
  Grammar g = ArithmeticGrammar();
  auto cnf = ToCnf(g);
  ASSERT_TRUE(cnf.ok());
  EXPECT_TRUE(cnf->Validate().ok());
  EXPECT_FALSE(cnf->binary.empty());
  EXPECT_FALSE(cnf->lexical.empty());
}

TEST(CnfTest, PreservesStringProbability) {
  // P("a b") under a^n b^n grammar is 0.6; P("a a b b") is 0.4 * 0.6.
  Grammar g = AbGrammar();
  auto cnf = ToCnf(g);
  ASSERT_TRUE(cnf.ok());
  const int a = g.TerminalId("a"), b = g.TerminalId("b");
  EXPECT_NEAR(InsideLogProb(*cnf, {a, b}), std::log(0.6), 1e-9);
  EXPECT_NEAR(InsideLogProb(*cnf, {a, a, b, b}), std::log(0.24), 1e-9);
  EXPECT_EQ(InsideLogProb(*cnf, {a, b, b}),
            -std::numeric_limits<double>::infinity());
}

TEST(CnfTest, AgreesWithEarleyOnMembership) {
  Grammar g = ArithmeticGrammar();
  EarleyParser parser(&g);
  auto cnf = ToCnf(g);
  ASSERT_TRUE(cnf.ok());
  util::Rng rng(4);
  // Sampled sentences must be derivable under both.
  for (int i = 0; i < 20; ++i) {
    auto tree = g.SampleTree(&rng, 30);
    if (!tree.ok()) continue;
    auto leaves = Grammar::TreeLeaves(**tree);
    EXPECT_TRUE(parser.Recognize(leaves));
    EXPECT_GT(InsideLogProb(*cnf, leaves),
              -std::numeric_limits<double>::infinity());
  }
}

TEST(CnfTest, SampledProbabilityConsistency) {
  // Inside probability of a sampled sentence >= probability of its own
  // derivation tree (summing over derivations only adds mass).
  Grammar g = ArithmeticGrammar();
  auto cnf = ToCnf(g);
  ASSERT_TRUE(cnf.ok());
  util::Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    auto tree = g.SampleTree(&rng, 30);
    if (!tree.ok()) continue;
    auto leaves = Grammar::TreeLeaves(**tree);
    EXPECT_GE(InsideLogProb(*cnf, leaves), g.TreeLogProb(**tree) - 1e-6);
  }
}

TEST(ViterbiTest, ParsesAndBrackets) {
  Grammar g = AbGrammar();
  auto cnf = ToCnf(g);
  ASSERT_TRUE(cnf.ok());
  const int a = g.TerminalId("a"), b = g.TerminalId("b");
  auto parse = ViterbiParse(*cnf, {a, a, b, b});
  ASSERT_TRUE(parse.ok());
  EXPECT_NE(parse->find("a"), std::string::npos);
  EXPECT_FALSE(ViterbiParse(*cnf, {a, b, b}).ok());
}

TEST(InsideOutsideTest, LikelihoodNonDecreasing) {
  // Start from the wrong probabilities; EM must improve likelihood.
  Grammar g;
  ASSERT_TRUE(g.AddRule("S", {"a", "S", "b"}, 0.9).ok());  // true: 0.3
  ASSERT_TRUE(g.AddRule("S", {"a", "b"}, 0.1).ok());       // true: 0.7
  ASSERT_TRUE(g.Finalize("S").ok());
  auto cnf = ToCnf(g);
  ASSERT_TRUE(cnf.ok());

  // Corpus drawn from the *true* distribution (recursion prob 0.3).
  Grammar truth;
  ASSERT_TRUE(truth.AddRule("S", {"a", "S", "b"}, 0.3).ok());
  ASSERT_TRUE(truth.AddRule("S", {"a", "b"}, 0.7).ok());
  ASSERT_TRUE(truth.Finalize("S").ok());
  util::Rng rng(6);
  std::vector<std::vector<int>> corpus;
  for (int i = 0; i < 200; ++i) {
    auto tree = truth.SampleTree(&rng, 40);
    if (!tree.ok()) continue;
    corpus.push_back(Grammar::TreeLeaves(**tree));
  }

  EmOptions opts;
  opts.iterations = 15;
  auto stats = FitInsideOutside(&(*cnf), corpus, opts);
  ASSERT_TRUE(stats.ok());
  for (size_t i = 1; i < stats->log_likelihood.size(); ++i) {
    EXPECT_GE(stats->log_likelihood[i], stats->log_likelihood[i - 1] - 1e-6);
  }
  // EM should move the recursion probability toward the truth. Find the
  // binary rule S -> _T_a _BIN... (recursive) and check its prob ~ 0.3.
  double recursive_prob = -1;
  for (const auto& r : cnf->binary) {
    if (cnf->nonterminal_names[static_cast<size_t>(r.lhs)] == "S" &&
        r.prob < 0.6) {
      recursive_prob = r.prob;
    }
  }
  // The S lhs has two rules; the smaller one should approach 0.3.
  EXPECT_NEAR(recursive_prob, 0.3, 0.07);
}

TEST(CorpusCrossEntropyTest, MatchesManual) {
  Grammar g = AbGrammar();
  auto cnf = ToCnf(g);
  ASSERT_TRUE(cnf.ok());
  const int a = g.TerminalId("a"), b = g.TerminalId("b");
  std::vector<std::vector<int>> corpus = {{a, b}, {a, a, b, b}};
  auto ce = CorpusCrossEntropy(*cnf, corpus);
  ASSERT_TRUE(ce.ok());
  const double expected =
      -(std::log(0.6) + std::log(0.24)) / 6.0;  // 6 tokens total
  EXPECT_NEAR(*ce, expected, 1e-9);
}

}  // namespace
}  // namespace llm::grammar
