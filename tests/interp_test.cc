// Tests for the interpretability tooling: classifier probes (linear and
// MLP), intervention edits, and the structural distance probe.
#include <gtest/gtest.h>

#include <cmath>

#include "interp/probe.h"
#include "interp/structural_probe.h"

namespace llm::interp {
namespace {

/// Linearly separable blobs in 8 dims: class = sign of first coordinate.
void MakeBlobs(int64_t n, core::Tensor* x, std::vector<int64_t>* y,
               uint64_t seed) {
  util::Rng rng(seed);
  *x = core::Tensor({n, 8});
  y->resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const int64_t cls = rng.Bernoulli(0.5) ? 1 : 0;
    (*y)[static_cast<size_t>(i)] = cls;
    for (int64_t d = 0; d < 8; ++d) {
      float v = static_cast<float>(rng.Normal(0.0, 0.4));
      if (d == 0) v += cls == 1 ? 1.5f : -1.5f;
      (*x)[i * 8 + d] = v;
    }
  }
}

TEST(ProbeTest, LinearSeparatesBlobs) {
  core::Tensor x;
  std::vector<int64_t> y;
  MakeBlobs(256, &x, &y, 1);
  ProbeConfig cfg;
  cfg.input_dim = 8;
  cfg.num_classes = 2;
  Probe probe(cfg);
  probe.Fit(x, y);
  EXPECT_GT(probe.Accuracy(x, y), 0.95);
}

TEST(ProbeTest, LinearDirectionPointsAlongSeparatingAxis) {
  core::Tensor x;
  std::vector<int64_t> y;
  MakeBlobs(256, &x, &y, 2);
  ProbeConfig cfg;
  cfg.input_dim = 8;
  cfg.num_classes = 2;
  Probe probe(cfg);
  probe.Fit(x, y);
  auto dir1 = probe.ClassDirection(1);
  auto dir0 = probe.ClassDirection(0);
  // Difference direction dominated by coordinate 0.
  float diff0 = dir1[0] - dir0[0];
  float rest = 0;
  for (size_t d = 1; d < 8; ++d) rest += std::fabs(dir1[d] - dir0[d]);
  EXPECT_GT(diff0, rest / 7.0f);
}

TEST(ProbeTest, MlpSolvesXorWhereLinearCannot) {
  // XOR in 2D: nonlinear structure.
  util::Rng rng(3);
  const int64_t n = 400;
  core::Tensor x({n, 2});
  std::vector<int64_t> y(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const int a = rng.Bernoulli(0.5) ? 1 : 0;
    const int b = rng.Bernoulli(0.5) ? 1 : 0;
    x[i * 2 + 0] = static_cast<float>(a) + 0.1f *
                   static_cast<float>(rng.Normal());
    x[i * 2 + 1] = static_cast<float>(b) + 0.1f *
                   static_cast<float>(rng.Normal());
    y[static_cast<size_t>(i)] = a ^ b;
  }
  ProbeConfig lin_cfg;
  lin_cfg.input_dim = 2;
  lin_cfg.num_classes = 2;
  Probe linear(lin_cfg);
  linear.Fit(x, y);

  ProbeConfig mlp_cfg = lin_cfg;
  mlp_cfg.hidden_dim = 16;
  mlp_cfg.steps = 800;
  Probe mlp(mlp_cfg);
  mlp.Fit(x, y);

  EXPECT_LT(linear.Accuracy(x, y), 0.8);
  EXPECT_GT(mlp.Accuracy(x, y), 0.95);
}

TEST(ProbeTest, ClassDirectionRequiresLinear) {
  ProbeConfig cfg;
  cfg.input_dim = 4;
  cfg.num_classes = 2;
  cfg.hidden_dim = 8;
  Probe mlp(cfg);
  EXPECT_DEATH(mlp.ClassDirection(0), "linear");
}

TEST(InterventionTest, EditMovesAlongDifference) {
  std::vector<float> h = {0, 0, 0};
  std::vector<float> from = {1, 0, 0};
  std::vector<float> to = {0, 1, 0};
  ApplyInterventionEdit(&h, from, to, std::sqrt(2.0f));
  EXPECT_NEAR(h[0], -1.0f, 1e-5f);
  EXPECT_NEAR(h[1], 1.0f, 1e-5f);
  EXPECT_NEAR(h[2], 0.0f, 1e-5f);
}

TEST(InterventionTest, ZeroDifferenceIsNoop) {
  std::vector<float> h = {1, 2};
  ApplyInterventionEdit(&h, {3, 4}, {3, 4}, 5.0f);
  EXPECT_FLOAT_EQ(h[0], 1.0f);
  EXPECT_FLOAT_EQ(h[1], 2.0f);
}

/// Builds sentences whose embeddings *are* low-dimensional functions of
/// tree positions: embedding of word i = one-hot-ish vector scaled by a
/// hidden coordinate; gold distance = |c_i - c_j| discretized. A rank-1
/// probe can recover this.
std::vector<ProbeSentence> SyntheticProbeData(uint64_t seed) {
  util::Rng rng(seed);
  std::vector<ProbeSentence> out;
  const int64_t D = 12;
  for (int s = 0; s < 24; ++s) {
    const int64_t L = 5 + static_cast<int64_t>(rng.UniformInt(4));
    ProbeSentence ps;
    ps.embeddings = core::Tensor({L, D});
    std::vector<double> coord(static_cast<size_t>(L));
    for (int64_t i = 0; i < L; ++i) {
      coord[static_cast<size_t>(i)] = rng.Uniform(0.0, 4.0);
      for (int64_t d = 0; d < D; ++d) {
        // Signal lives in dimension 2; the rest is noise.
        ps.embeddings[i * D + d] =
            d == 2 ? static_cast<float>(coord[static_cast<size_t>(i)])
                   : static_cast<float>(rng.Normal(0.0, 0.05));
      }
    }
    ps.gold_distance.assign(static_cast<size_t>(L),
                            std::vector<int>(static_cast<size_t>(L), 0));
    for (int64_t i = 0; i < L; ++i) {
      for (int64_t j = 0; j < L; ++j) {
        const double d = coord[static_cast<size_t>(i)] -
                         coord[static_cast<size_t>(j)];
        ps.gold_distance[static_cast<size_t>(i)][static_cast<size_t>(j)] =
            static_cast<int>(std::lround(d * d));
      }
    }
    out.push_back(std::move(ps));
  }
  return out;
}

TEST(StructuralProbeTest, RecoversPlantedStructure) {
  auto sentences = SyntheticProbeData(4);
  StructuralProbeConfig cfg;
  cfg.dim = 12;
  cfg.rank = 2;
  cfg.steps = 400;
  StructuralProbe probe(cfg);
  probe.Fit(sentences);
  auto rho = probe.MeanSpearman(sentences);
  ASSERT_TRUE(rho.ok());
  EXPECT_GT(*rho, 0.8) << *rho;
}

TEST(StructuralProbeTest, PredictDistancesSymmetricNonnegative) {
  auto sentences = SyntheticProbeData(5);
  StructuralProbeConfig cfg;
  cfg.dim = 12;
  cfg.rank = 3;
  cfg.steps = 50;
  StructuralProbe probe(cfg);
  probe.Fit(sentences);
  auto d = probe.PredictDistances(sentences[0].embeddings);
  const size_t L = d.size();
  for (size_t i = 0; i < L; ++i) {
    EXPECT_EQ(d[i][i], 0.0);
    for (size_t j = 0; j < L; ++j) {
      EXPECT_GE(d[i][j], 0.0);
      EXPECT_EQ(d[i][j], d[j][i]);
    }
  }
}

}  // namespace
}  // namespace llm::interp
