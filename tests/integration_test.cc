// Cross-module integration tests: full train -> checkpoint -> restore ->
// evaluate -> generate pipelines, PCFG corpus -> LM -> probe flows, and
// end-to-end determinism.
#include <gtest/gtest.h>

#include <cstdio>

#include "data/pcfg_corpus.h"
#include "eval/lm_eval.h"
#include "eval/metrics.h"
#include "grammar/earley.h"
#include "ngram/ngram.h"
#include "nn/transformer.h"
#include "sample/sampler.h"
#include "text/dataset.h"
#include "train/checkpoint.h"
#include "train/trainer.h"

namespace llm {
namespace {

struct Pipeline {
  grammar::Grammar g = data::ToyEnglishGrammar();
  std::vector<int64_t> train_tokens, test_tokens;
  int64_t vocab = 0;

  Pipeline() {
    util::Rng rng(1);
    data::PcfgCorpusOptions copts;
    copts.num_sentences = 400;
    auto corpus = data::SamplePcfgCorpus(g, copts, &rng);
    auto stream = data::FlattenToStream(corpus, g.num_terminals());
    std::tie(train_tokens, test_tokens) = text::SplitTokens(stream, 0.2);
    vocab = g.num_terminals() + 1;
  }
};

nn::GPTConfig SmallConfig(int64_t vocab) {
  nn::GPTConfig cfg;
  cfg.vocab_size = vocab;
  cfg.max_seq_len = 16;
  cfg.d_model = 32;
  cfg.n_layer = 2;
  cfg.n_head = 2;
  return cfg;
}

TEST(IntegrationTest, TrainingImprovesHeldOutPerplexity) {
  Pipeline p;
  util::Rng rng(2);
  nn::GPTModel model(SmallConfig(p.vocab), &rng);
  text::TokenDataset train_set(p.train_tokens, 16);
  text::TokenDataset test_set(p.test_tokens, 16);

  const double before = eval::EvaluateGpt(model, test_set, 8).perplexity;
  train::AdamWOptions aopts;
  aopts.lr = 3e-3f;
  train::AdamW opt(model.Parameters(), aopts);
  train::TrainerOptions topts;
  topts.max_steps = 120;
  topts.clip_norm = 1.0f;
  train::Trainer trainer(&opt, topts);
  trainer.Run([&] {
    std::vector<int64_t> in, tg;
    train_set.SampleBatch(&rng, 8, &in, &tg);
    return model.LmLoss(in, tg, 8, 16);
  });
  const double after = eval::EvaluateGpt(model, test_set, 8).perplexity;
  EXPECT_LT(after, before * 0.5) << before << " -> " << after;
  // A trained toy model should be far below uniform (vocab) perplexity.
  EXPECT_LT(after, static_cast<double>(p.vocab) / 2);
}

TEST(IntegrationTest, CheckpointRoundTripPreservesBehaviour) {
  Pipeline p;
  util::Rng rng(3);
  nn::GPTModel model(SmallConfig(p.vocab), &rng);
  text::TokenDataset train_set(p.train_tokens, 16);
  train::AdamWOptions aopts;
  aopts.lr = 3e-3f;
  train::AdamW opt(model.Parameters(), aopts);
  for (int step = 0; step < 40; ++step) {
    std::vector<int64_t> in, tg;
    train_set.SampleBatch(&rng, 4, &in, &tg);
    core::Variable loss = model.LmLoss(in, tg, 4, 16);
    opt.ZeroGrad();
    core::Backward(loss);
    opt.Step();
  }
  const std::string path = "/tmp/tfmr_integration_ckpt.bin";
  ASSERT_TRUE(train::SaveCheckpoint(model, path).ok());

  util::Rng rng2(999);  // different init
  nn::GPTModel restored(SmallConfig(p.vocab), &rng2);
  ASSERT_TRUE(train::LoadCheckpoint(&restored, path).ok());
  std::remove(path.c_str());

  std::vector<int64_t> probe(p.test_tokens.begin(),
                             p.test_tokens.begin() + 16);
  core::Tensor a = model.ForwardLogits(probe, 1, 16).value();
  core::Tensor b = restored.ForwardLogits(probe, 1, 16).value();
  EXPECT_EQ(core::Tensor::MaxAbsDiff(a, b), 0.0f);
}

TEST(IntegrationTest, EndToEndDeterminism) {
  // Two complete runs from the same seeds produce identical losses and
  // identical generations.
  auto run = [] {
    Pipeline p;
    util::Rng rng(7);
    nn::GPTModel model(SmallConfig(p.vocab), &rng);
    text::TokenDataset train_set(p.train_tokens, 16);
    train::AdamWOptions aopts;
    aopts.lr = 3e-3f;
    train::AdamW opt(model.Parameters(), aopts);
    float last_loss = 0;
    for (int step = 0; step < 30; ++step) {
      std::vector<int64_t> in, tg;
      train_set.SampleBatch(&rng, 4, &in, &tg);
      core::Variable loss = model.LmLoss(in, tg, 4, 16);
      last_loss = loss.value()[0];
      opt.ZeroGrad();
      core::Backward(loss);
      opt.Step();
    }
    sample::GenerateOptions gopts;
    gopts.max_new_tokens = 10;
    auto generated = sample::Generate(
        model, {p.vocab - 1}, gopts, &rng);
    return std::make_pair(last_loss, generated);
  };
  auto [loss1, gen1] = run();
  auto [loss2, gen2] = run();
  EXPECT_EQ(loss1, loss2);
  EXPECT_EQ(gen1, gen2);
}

TEST(IntegrationTest, NgramAndNeuralAgreeOnEasyStructure) {
  // On near-deterministic data both model families find the structure.
  std::vector<int64_t> stream;
  for (int i = 0; i < 3000; ++i) stream.push_back(i % 4);
  ngram::NgramModel bigram(2, 4, 1e-6);
  bigram.Fit(stream);
  EXPECT_NEAR(bigram.Perplexity(stream), 1.0, 0.01);

  util::Rng rng(8);
  nn::GPTConfig cfg = SmallConfig(4);
  nn::GPTModel model(cfg, &rng);
  text::TokenDataset ds(stream, 16);
  train::AdamWOptions aopts;
  aopts.lr = 3e-3f;
  train::AdamW opt(model.Parameters(), aopts);
  for (int step = 0; step < 150; ++step) {
    std::vector<int64_t> in, tg;
    ds.SampleBatch(&rng, 4, &in, &tg);
    core::Variable loss = model.LmLoss(in, tg, 4, 16);
    opt.ZeroGrad();
    core::Backward(loss);
    opt.Step();
  }
  EXPECT_LT(eval::EvaluateGpt(model, ds, 8).perplexity, 1.15);
}

TEST(IntegrationTest, GeneratedTextStaysMostlyGrammatical) {
  // Sample sentences from a trained LM and check a healthy fraction parse
  // under the generating grammar (the LM learned the toy language).
  Pipeline p;
  util::Rng rng(9);
  nn::GPTConfig cfg = SmallConfig(p.vocab);
  nn::GPTModel model(cfg, &rng);
  text::TokenDataset train_set(p.train_tokens, 16);
  train::AdamWOptions aopts;
  aopts.lr = 3e-3f;
  train::AdamW opt(model.Parameters(), aopts);
  for (int step = 0; step < 250; ++step) {
    std::vector<int64_t> in, tg;
    train_set.SampleBatch(&rng, 8, &in, &tg);
    core::Variable loss = model.LmLoss(in, tg, 8, 16);
    opt.ZeroGrad();
    core::Backward(loss);
    opt.Step();
  }
  grammar::EarleyParser parser(&p.g);
  const int64_t sep = p.vocab - 1;
  int grammatical = 0, scored = 0;
  sample::GenerateOptions gopts;
  gopts.max_new_tokens = 15;
  gopts.sampler.temperature = 0.7f;
  gopts.stop_token = sep;
  for (int trial = 0; trial < 20; ++trial) {
    auto out = sample::Generate(model, {sep}, gopts, &rng);
    std::vector<int> sentence;
    for (int64_t t : out) {
      if (t == sep) break;
      sentence.push_back(static_cast<int>(t));
    }
    if (sentence.empty() ||
        static_cast<int64_t>(sentence.size()) >= gopts.max_new_tokens) {
      continue;  // truncated mid-sentence; not scorable
    }
    ++scored;
    if (parser.Recognize(sentence)) ++grammatical;
  }
  ASSERT_GT(scored, 4);
  EXPECT_GE(static_cast<double>(grammatical) / scored, 0.5)
      << grammatical << "/" << scored;
}

TEST(IntegrationTest, CalibrationPipelineProducesSanePoints) {
  Pipeline p;
  util::Rng rng(10);
  nn::GPTModel model(SmallConfig(p.vocab), &rng);
  text::TokenDataset test_set(p.test_tokens, 16);
  std::vector<int64_t> in, tg;
  int64_t n = 0;
  test_set.EvalWindows(4, &in, &tg, &n);
  std::vector<int64_t> w(in.begin(), in.begin() + 16);
  std::vector<int64_t> wt(tg.begin(), tg.begin() + 16);
  auto logits = model.ForwardLogits(w, 1, 16).value();
  auto points = eval::CalibrationPoints(logits, wt);
  ASSERT_EQ(points.size(), 16u);
  for (const auto& pt : points) {
    EXPECT_GT(pt.confidence, 0.0);
    EXPECT_LE(pt.confidence, 1.0);
  }
}

}  // namespace
}  // namespace llm
