// Tests for basic layers: Linear, Embedding, LayerNorm, Mlp, positional
// encodings, and the Module parameter plumbing.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "nn/layers.h"
#include "nn/positional.h"

namespace llm::nn {
namespace {

TEST(LinearTest, ShapesAndBias) {
  util::Rng rng(1);
  Linear lin(3, 5, &rng);
  core::Variable x(core::Tensor::Ones({2, 3}));
  core::Variable y = lin.Forward(x);
  EXPECT_EQ(y.shape(), (core::Shape{2, 5}));
  EXPECT_EQ(lin.NumParameters(), 3 * 5 + 5);
}

TEST(LinearTest, NoBiasOption) {
  util::Rng rng(1);
  Linear lin(3, 5, &rng, /*bias=*/false);
  EXPECT_EQ(lin.NumParameters(), 15);
  EXPECT_FALSE(lin.has_bias());
}

TEST(LinearTest, HandlesLeadingDims) {
  util::Rng rng(2);
  Linear lin(4, 2, &rng);
  core::Variable x(core::Tensor::Ones({3, 5, 4}));
  core::Variable y = lin.Forward(x);
  EXPECT_EQ(y.shape(), (core::Shape{3, 5, 2}));
  // Same input row -> same output row regardless of position.
  EXPECT_FLOAT_EQ(y.value().At({0, 0, 0}), y.value().At({2, 4, 0}));
}

TEST(LinearTest, InitVarianceScalesWithFanIn) {
  util::Rng rng(3);
  Linear lin(400, 50, &rng, false);
  const core::Tensor& w = lin.weight().value();
  double var = 0;
  for (int64_t i = 0; i < w.numel(); ++i) var += w[i] * w[i];
  var /= static_cast<double>(w.numel());
  EXPECT_NEAR(var, 1.0 / 400.0, 1.0 / 400.0 * 0.2);
}

TEST(EmbeddingTest, LookupAndParams) {
  util::Rng rng(4);
  Embedding emb(10, 6, &rng);
  core::Variable out = emb.Forward({3, 3, 9});
  EXPECT_EQ(out.shape(), (core::Shape{3, 6}));
  for (int64_t c = 0; c < 6; ++c) {
    EXPECT_EQ(out.value().At({0, c}), out.value().At({1, c}));
  }
  EXPECT_EQ(emb.NumParameters(), 60);
}

TEST(LayerNormTest, TrainableAffine) {
  LayerNorm ln(8);
  EXPECT_EQ(ln.NumParameters(), 16);
  core::Variable x(core::Tensor::FromVector(
      {1, 8}, {1, 2, 3, 4, 5, 6, 7, 8}));
  core::Variable y = ln.Forward(x);
  float mean = 0;
  for (int64_t i = 0; i < 8; ++i) mean += y.value()[i];
  EXPECT_NEAR(mean / 8.0f, 0.0f, 1e-5f);
}

TEST(MlpTest, ShapeAndActivation) {
  util::Rng rng(5);
  Mlp mlp(4, 16, 3, &rng, Activation::kRelu);
  core::Variable x(core::Tensor::Ones({2, 4}));
  EXPECT_EQ(mlp.Forward(x).shape(), (core::Shape{2, 3}));
  EXPECT_EQ(mlp.NumParameters(), 4 * 16 + 16 + 16 * 3 + 3);
}

TEST(ModuleTest, NamedParametersAreUniqueAndComplete) {
  util::Rng rng(6);
  Mlp mlp(4, 8, 2, &rng);
  std::set<std::string> names;
  int64_t total = 0;
  for (const auto& [name, v] : mlp.NamedParameters()) {
    EXPECT_TRUE(names.insert(name).second) << "duplicate " << name;
    total += v.numel();
  }
  EXPECT_EQ(total, mlp.NumParameters());
}

TEST(ModuleTest, ZeroGradClearsAll) {
  util::Rng rng(7);
  Linear lin(2, 2, &rng);
  core::Variable x(core::Tensor::Ones({1, 2}));
  core::Backward(core::SumAll(lin.Forward(x)));
  EXPECT_GT(lin.weight().grad().MaxAbs(), 0.0f);
  lin.ZeroGrad();
  EXPECT_EQ(lin.weight().grad().MaxAbs(), 0.0f);
}

TEST(PositionalTest, SinusoidalStructure) {
  core::Tensor pe = SinusoidalPositionalEncoding(16, 8);
  EXPECT_EQ(pe.dim(0), 16);
  EXPECT_EQ(pe.dim(1), 8);
  // Position 0: sin(0)=0, cos(0)=1 alternating.
  for (int64_t i = 0; i < 8; i += 2) {
    EXPECT_FLOAT_EQ(pe.At({0, i}), 0.0f);
    EXPECT_FLOAT_EQ(pe.At({0, i + 1}), 1.0f);
  }
  // All entries bounded by 1.
  EXPECT_LE(pe.MaxAbs(), 1.0f);
  // Distinct positions get distinct encodings.
  float diff = 0;
  for (int64_t i = 0; i < 8; ++i) {
    diff += std::fabs(pe.At({3, i}) - pe.At({7, i}));
  }
  EXPECT_GT(diff, 0.1f);
}

TEST(PositionalTest, OddDimensionSupported) {
  core::Tensor pe = SinusoidalPositionalEncoding(4, 5);
  EXPECT_EQ(pe.dim(1), 5);
}

TEST(ActivationTest, AllVariantsFinite) {
  core::Variable x(core::Tensor::FromVector({3}, {-2.0f, 0.0f, 2.0f}));
  for (Activation a :
       {Activation::kRelu, Activation::kGelu, Activation::kTanh}) {
    core::Variable y = ApplyActivation(x, a);
    for (int64_t i = 0; i < 3; ++i) {
      EXPECT_TRUE(std::isfinite(y.value()[i]));
    }
  }
}

}  // namespace
}  // namespace llm::nn
