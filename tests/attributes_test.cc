// Tests for attribute evaluation over arithmetic parse trees.
#include <gtest/gtest.h>

#include "data/parity.h"
#include "grammar/attributes.h"
#include "grammar/earley.h"

namespace llm::grammar {
namespace {

class ArithmeticEval : public ::testing::Test {
 protected:
  Grammar g_ = ArithmeticGrammar();
  EarleyParser parser_{&g_};

  double Eval(const std::string& expr,
              const std::map<std::string, double>& bindings = {}) {
    auto ids = parser_.TerminalIds(expr);
    EXPECT_TRUE(ids.ok()) << expr;
    auto tree = parser_.Parse(*ids);
    EXPECT_TRUE(tree.ok()) << expr;
    auto value = EvaluateArithmetic(g_, **tree, bindings);
    EXPECT_TRUE(value.ok()) << value.status();
    return *value;
  }
};

TEST_F(ArithmeticEval, Literals) {
  EXPECT_DOUBLE_EQ(Eval("1"), 1.0);
  EXPECT_DOUBLE_EQ(Eval("0"), 0.0);
}

TEST_F(ArithmeticEval, Bindings) {
  EXPECT_DOUBLE_EQ(Eval("x", {{"x", 7.0}, {"y", 2.0}}), 7.0);
}

TEST_F(ArithmeticEval, PrecedenceByEvaluation) {
  // The Appendix A exercise, settled semantically: with y=3, x=2,
  // y + 1 * x must be 5 (precedence), not 8 (left-to-right).
  EXPECT_DOUBLE_EQ(Eval("y + 1 * x", {{"x", 2.0}, {"y", 3.0}}), 5.0);
}

TEST_F(ArithmeticEval, ParensOverridePrecedence) {
  // (Fig. 3 requires the parenthesized factor second: VALUE * TERM.)
  EXPECT_DOUBLE_EQ(Eval("x * ( y + 1 ) + 1", {{"x", 2.0}, {"y", 3.0}}),
                   9.0);
}

TEST_F(ArithmeticEval, NestedExpression) {
  EXPECT_DOUBLE_EQ(
      Eval("x * ( y + y * ( x + 1 ) )", {{"x", 2.0}, {"y", 3.0}}),
      2.0 * (3.0 + 3.0 * (2.0 + 1.0)));
}

TEST_F(ArithmeticEval, UnboundVariableFails) {
  auto ids = parser_.TerminalIds("x + 1");
  auto tree = parser_.Parse(*ids);
  auto value = EvaluateArithmetic(g_, **tree, {});
  EXPECT_FALSE(value.ok());
  EXPECT_EQ(value.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(ArithmeticEval, SampledTreesEvaluate) {
  // Every sampled derivation tree must evaluate (attribute totality).
  util::Rng rng(1);
  const std::map<std::string, double> bindings = {{"x", 1.5}, {"y", -2.0}};
  for (int i = 0; i < 30; ++i) {
    auto tree = g_.SampleTree(&rng, 40);
    if (!tree.ok()) continue;
    auto value = EvaluateArithmetic(g_, **tree, bindings);
    ASSERT_TRUE(value.ok()) << g_.TreeYield(**tree);
  }
}

TEST_F(ArithmeticEval, ParseOfSampleAgreesWithSample) {
  // Parsing a sampled sentence and evaluating the parse gives the same
  // value as evaluating the original derivation tree (the grammar's
  // ambiguity never changes arithmetic meaning).
  util::Rng rng(2);
  const std::map<std::string, double> bindings = {{"x", 2.0}, {"y", 5.0}};
  int checked = 0;
  for (int i = 0; i < 40 && checked < 10; ++i) {
    auto tree = g_.SampleTree(&rng, 40);
    if (!tree.ok()) continue;
    auto leaves = Grammar::TreeLeaves(**tree);
    if (leaves.size() > 11) continue;
    auto reparsed = parser_.Parse(leaves);
    ASSERT_TRUE(reparsed.ok());
    auto v1 = EvaluateArithmetic(g_, **tree, bindings);
    auto v2 = EvaluateArithmetic(g_, **reparsed, bindings);
    ASSERT_TRUE(v1.ok() && v2.ok());
    EXPECT_DOUBLE_EQ(*v1, *v2) << g_.TreeYield(**tree);
    ++checked;
  }
  EXPECT_GE(checked, 5);
}

TEST(ParityDataTest, RunningParityCorrect) {
  util::Rng rng(3);
  std::vector<int64_t> in, tg;
  llm::data::SampleParityBatch(&rng, 4, 16, &in, &tg);
  for (int64_t b = 0; b < 4; ++b) {
    int64_t parity = 0;
    for (int64_t i = 0; i < 16; ++i) {
      parity ^= in[static_cast<size_t>(b * 16 + i)];
      EXPECT_EQ(tg[static_cast<size_t>(b * 16 + i)], parity);
    }
  }
}

TEST(ParityDataTest, BitsAreBalanced) {
  util::Rng rng(4);
  std::vector<int64_t> in, tg;
  llm::data::SampleParityBatch(&rng, 64, 64, &in, &tg);
  int64_t ones = 0;
  for (int64_t v : in) ones += v;
  EXPECT_NEAR(static_cast<double>(ones) / in.size(), 0.5, 0.05);
}

}  // namespace
}  // namespace llm::grammar
