// Tests for optimizers, LR schedules, gradient clipping, the Trainer loop,
// and checkpoint round-trips.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "nn/layers.h"
#include "train/checkpoint.h"
#include "train/optimizer.h"
#include "train/schedule.h"
#include "train/trainer.h"

namespace llm::train {
namespace {

/// Quadratic bowl: loss = sum((x - 3)^2).
core::Variable BowlLoss(const core::Variable& x) {
  core::Variable shifted = core::AddScalar(x, -3.0f);
  return core::SumAll(core::Mul(shifted, shifted));
}

TEST(SgdTest, ConvergesOnQuadratic) {
  core::Variable x(core::Tensor({4}), true);
  Sgd opt({x}, 0.1f);
  for (int i = 0; i < 100; ++i) {
    core::Variable loss = BowlLoss(x);
    opt.ZeroGrad();
    core::Backward(loss);
    opt.Step();
  }
  for (int64_t i = 0; i < 4; ++i) EXPECT_NEAR(x.value()[i], 3.0f, 1e-3f);
}

TEST(SgdTest, MomentumAccelerates) {
  core::Variable a(core::Tensor({1}), true);
  core::Variable b(core::Tensor({1}), true);
  Sgd plain({a}, 0.01f);
  Sgd momentum({b}, 0.01f, 0.9f);
  for (int i = 0; i < 30; ++i) {
    plain.ZeroGrad();
    core::Backward(BowlLoss(a));
    plain.Step();
    momentum.ZeroGrad();
    core::Backward(BowlLoss(b));
    momentum.Step();
  }
  EXPECT_LT(std::fabs(b.value()[0] - 3.0f), std::fabs(a.value()[0] - 3.0f));
}

TEST(AdamWTest, ConvergesOnQuadratic) {
  core::Variable x(core::Tensor({3}), true);
  AdamWOptions opts;
  opts.lr = 0.1f;
  AdamW opt({x}, opts);
  for (int i = 0; i < 300; ++i) {
    opt.ZeroGrad();
    core::Backward(BowlLoss(x));
    opt.Step();
  }
  for (int64_t i = 0; i < 3; ++i) EXPECT_NEAR(x.value()[i], 3.0f, 1e-2f);
}

TEST(AdamWTest, WeightDecayOnlyOnMatrices) {
  // With zero gradient, decay shrinks matrices but not vectors.
  core::Variable mat(core::Tensor::Ones({2, 2}), true);
  core::Variable vec(core::Tensor::Ones({2}), true);
  AdamWOptions opts;
  opts.lr = 0.1f;
  opts.weight_decay = 0.5f;
  AdamW opt({mat, vec}, opts);
  // Provide a zero gradient so Step() processes both.
  mat.mutable_grad().SetZero();
  vec.mutable_grad().SetZero();
  opt.Step();
  EXPECT_LT(mat.value()[0], 1.0f);
  EXPECT_FLOAT_EQ(vec.value()[0], 1.0f);
}

TEST(ClipTest, ScalesDownLargeGradients) {
  core::Variable x(core::Tensor({4}), true);
  x.mutable_grad().Fill(10.0f);  // norm = 20
  const float norm = ClipGradNorm({x}, 1.0f);
  EXPECT_NEAR(norm, 20.0f, 1e-4f);
  EXPECT_NEAR(x.grad().SquaredNorm(), 1.0f, 1e-3f);
}

TEST(ClipTest, LeavesSmallGradientsAlone) {
  core::Variable x(core::Tensor({4}), true);
  x.mutable_grad().Fill(0.1f);
  ClipGradNorm({x}, 1.0f);
  EXPECT_FLOAT_EQ(x.grad()[0], 0.1f);
}

TEST(ScheduleTest, WarmupThenCosine) {
  WarmupCosineLr sched(1.0f, 10, 110, 0.1f);
  EXPECT_LT(sched.LrAt(0), 0.2f);          // warming up
  EXPECT_FLOAT_EQ(sched.LrAt(9), 1.0f);    // warmup complete
  EXPECT_NEAR(sched.LrAt(60), 0.55f, 0.01f);  // mid-decay
  EXPECT_FLOAT_EQ(sched.LrAt(110), 0.1f);  // floor
  EXPECT_FLOAT_EQ(sched.LrAt(1000), 0.1f);
}

TEST(ScheduleTest, MonotoneDecayAfterWarmup) {
  WarmupCosineLr sched(1.0f, 5, 100);
  for (int64_t s = 5; s < 99; ++s) {
    EXPECT_GE(sched.LrAt(s), sched.LrAt(s + 1));
  }
}

TEST(TrainerTest, RecordsHistoryAndAppliesSchedule) {
  core::Variable x(core::Tensor({2}), true);
  Sgd opt({x}, 0.0f);  // lr overridden by schedule
  ConstantLr sched(0.05f);
  TrainerOptions topts;
  topts.max_steps = 20;
  topts.schedule = &sched;
  Trainer trainer(&opt, topts);
  trainer.Run([&] { return BowlLoss(x); });
  ASSERT_EQ(trainer.history().size(), 20u);
  EXPECT_FLOAT_EQ(trainer.history()[5].lr, 0.05f);
  EXPECT_LT(trainer.history().back().loss, trainer.history().front().loss);
  EXPECT_GT(trainer.RecentLoss(5), 0.0f);
}

TEST(TrainerTest, RecentLossSafeOnEmptyHistoryAndZeroWindow) {
  core::Variable x(core::Tensor({1}), true);
  Sgd opt({x}, 0.1f);
  TrainerOptions topts;
  topts.max_steps = 5;
  Trainer trainer(&opt, topts);
  // Regression: both of these used to divide by zero.
  EXPECT_FLOAT_EQ(trainer.RecentLoss(), 0.0f);   // empty history
  EXPECT_FLOAT_EQ(trainer.RecentLoss(0), 0.0f);  // zero-length window
  ASSERT_TRUE(trainer.Run([&] { return BowlLoss(x); }).ok());
  EXPECT_FLOAT_EQ(trainer.RecentLoss(0), 0.0f);
  EXPECT_GT(trainer.RecentLoss(3), 0.0f);
}

TEST(TrainerTest, RunReportsOkOnCleanLoop) {
  core::Variable x(core::Tensor({2}), true);
  Sgd opt({x}, 0.05f);
  TrainerOptions topts;
  topts.max_steps = 10;
  Trainer trainer(&opt, topts);
  util::Status s = trainer.Run([&] { return BowlLoss(x); });
  EXPECT_TRUE(s.ok()) << s;
}

TEST(TrainerTest, EvalCallbackFires) {
  core::Variable x(core::Tensor({1}), true);
  Sgd opt({x}, 0.1f);
  TrainerOptions topts;
  topts.max_steps = 10;
  topts.eval_every = 3;
  Trainer trainer(&opt, topts);
  int evals = 0;
  trainer.Run([&] { return BowlLoss(x); },
              [&](int64_t) { ++evals; });
  EXPECT_GE(evals, 4);  // steps 0, 3, 6, 9
}

TEST(CheckpointTest, RoundTripsExactly) {
  util::Rng rng(1);
  nn::Mlp model(4, 8, 3, &rng);
  const std::string path = "/tmp/tfmr_ckpt_test.bin";
  ASSERT_TRUE(SaveCheckpoint(model, path).ok());

  nn::Mlp restored(4, 8, 3, &rng);  // different random init
  ASSERT_TRUE(LoadCheckpoint(&restored, path).ok());
  auto a = model.NamedParameters();
  auto b = restored.NamedParameters();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(core::Tensor::MaxAbsDiff(a[i].second.value(),
                                       b[i].second.value()),
              0.0f)
        << a[i].first;
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsShapeMismatch) {
  util::Rng rng(2);
  nn::Mlp model(4, 8, 3, &rng);
  const std::string path = "/tmp/tfmr_ckpt_mismatch.bin";
  ASSERT_TRUE(SaveCheckpoint(model, path).ok());
  nn::Mlp wrong(4, 16, 3, &rng);
  util::Status s = LoadCheckpoint(&wrong, path);
  EXPECT_FALSE(s.ok());
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsMissingFile) {
  util::Rng rng(3);
  nn::Mlp model(2, 4, 2, &rng);
  EXPECT_EQ(LoadCheckpoint(&model, "/tmp/does_not_exist_tfmr.bin").code(),
            util::StatusCode::kIOError);
}

}  // namespace
}  // namespace llm::train
