// Tests for the fused multi-head causal attention op: probability
// structure, causality, windowing, head independence, and gradients.
#include <gtest/gtest.h>

#include <cmath>

#include "core/graph.h"
#include "core/ops.h"
#include "util/rng.h"

namespace llm::core {
namespace {

Variable RandomQkv(int64_t B, int64_t T, int64_t C, uint64_t seed,
                   float scale = 0.5f) {
  util::Rng rng(seed);
  return Variable(Tensor::RandomNormal({B, T, 3 * C}, &rng, 0.0f, scale),
                  /*requires_grad=*/true);
}

TEST(AttentionForward, ProbabilitiesAreCausalAndNormalized) {
  Variable qkv = RandomQkv(2, 5, 4, 1);
  Tensor probs;
  AttentionOptions opts;
  opts.num_heads = 2;
  opts.save_probs = &probs;
  MultiHeadCausalAttention(qkv, opts);
  ASSERT_EQ(probs.ndim(), 4);  // [B, H, T, T]
  const int64_t B = 2, H = 2, T = 5;
  for (int64_t b = 0; b < B; ++b) {
    for (int64_t h = 0; h < H; ++h) {
      for (int64_t i = 0; i < T; ++i) {
        float sum = 0;
        for (int64_t j = 0; j < T; ++j) {
          const float p = probs.At({b, h, i, j});
          if (j > i) {
            EXPECT_EQ(p, 0.0f) << "future leak at " << i << "," << j;
          }
          sum += p;
        }
        EXPECT_NEAR(sum, 1.0f, 1e-5f);
      }
    }
  }
}

TEST(AttentionForward, OutputIndependentOfFutureTokens) {
  Variable qkv = RandomQkv(1, 6, 4, 2);
  AttentionOptions opts;
  opts.num_heads = 2;
  Tensor out1 = MultiHeadCausalAttention(qkv, opts).value();
  // Perturb the last position's q/k/v; earlier outputs must not change.
  Variable qkv2(qkv.value());
  for (int64_t c = 0; c < 12; ++c) {
    qkv2.mutable_value().At({0, 5, c}) += 10.0f;
  }
  Tensor out2 = MultiHeadCausalAttention(qkv2, opts).value();
  for (int64_t t = 0; t < 5; ++t) {
    for (int64_t c = 0; c < 4; ++c) {
      EXPECT_FLOAT_EQ(out1.At({0, t, c}), out2.At({0, t, c}));
    }
  }
}

TEST(AttentionForward, FirstPositionCopiesItsValue) {
  // Position 0 can only attend to itself, so output = its value row.
  Variable qkv = RandomQkv(1, 3, 6, 3);
  AttentionOptions opts;
  opts.num_heads = 3;
  Tensor out = MultiHeadCausalAttention(qkv, opts).value();
  for (int64_t c = 0; c < 6; ++c) {
    EXPECT_NEAR(out.At({0, 0, c}), qkv.value().At({0, 0, 12 + c}), 1e-5f);
  }
}

TEST(AttentionForward, WindowLimitsContext) {
  Variable qkv = RandomQkv(1, 8, 4, 4);
  Tensor probs;
  AttentionOptions opts;
  opts.num_heads = 1;
  opts.window = 3;
  opts.save_probs = &probs;
  MultiHeadCausalAttention(qkv, opts);
  for (int64_t i = 0; i < 8; ++i) {
    for (int64_t j = 0; j < 8; ++j) {
      const float p = probs.At({0, 0, i, j});
      const bool allowed = j <= i && j >= i - 2;  // window of 3
      if (!allowed) EXPECT_EQ(p, 0.0f) << i << "," << j;
    }
  }
}

TEST(AttentionForward, HeadsAreIndependent) {
  // Changing only head 1's slice of K must not change head 0's output.
  const int64_t C = 8, H = 2, hd = 4, T = 4;
  Variable qkv = RandomQkv(1, T, C, 5);
  AttentionOptions opts;
  opts.num_heads = static_cast<int>(H);
  Tensor out1 = MultiHeadCausalAttention(qkv, opts).value();
  Variable qkv2(qkv.value());
  for (int64_t t = 0; t < T; ++t) {
    for (int64_t c = 0; c < hd; ++c) {
      qkv2.mutable_value().At({0, t, C + hd + c}) += 3.0f;  // head 1 keys
    }
  }
  Tensor out2 = MultiHeadCausalAttention(qkv2, opts).value();
  for (int64_t t = 0; t < T; ++t) {
    for (int64_t c = 0; c < hd; ++c) {
      EXPECT_FLOAT_EQ(out1.At({0, t, c}), out2.At({0, t, c}));
    }
  }
}

TEST(AttentionGrad, MatchesNumerical) {
  Variable qkv = RandomQkv(1, 4, 4, 6, 0.4f);
  util::Rng wrng(7);
  Tensor weights = Tensor::RandomNormal({1, 4, 4}, &wrng);
  AttentionOptions opts;
  opts.num_heads = 2;
  auto f = [&] {
    Variable out = MultiHeadCausalAttention(qkv, opts);
    return SumAll(Mul(out, Variable(weights)));
  };
  qkv.ZeroGrad();
  Variable loss = f();
  Backward(loss);
  const Tensor analytic = qkv.grad();
  const Tensor numeric = NumericalGradient(f, qkv, 1e-2f);
  for (int64_t i = 0; i < analytic.numel(); ++i) {
    const float scale =
        std::max({1.0f, std::fabs(analytic[i]), std::fabs(numeric[i])});
    EXPECT_NEAR(analytic[i], numeric[i], 3e-2f * scale) << "component " << i;
  }
}

TEST(AttentionGrad, WindowedMatchesNumerical) {
  Variable qkv = RandomQkv(1, 6, 2, 8, 0.4f);
  util::Rng wrng(9);
  Tensor weights = Tensor::RandomNormal({1, 6, 2}, &wrng);
  AttentionOptions opts;
  opts.num_heads = 1;
  opts.window = 2;
  auto f = [&] {
    Variable out = MultiHeadCausalAttention(qkv, opts);
    return SumAll(Mul(out, Variable(weights)));
  };
  qkv.ZeroGrad();
  Backward(f());
  const Tensor analytic = qkv.grad();
  const Tensor numeric = NumericalGradient(f, qkv, 1e-2f);
  for (int64_t i = 0; i < analytic.numel(); ++i) {
    const float scale =
        std::max({1.0f, std::fabs(analytic[i]), std::fabs(numeric[i])});
    EXPECT_NEAR(analytic[i], numeric[i], 3e-2f * scale) << "component " << i;
  }
}

}  // namespace
}  // namespace llm::core
