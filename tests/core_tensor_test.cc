// Tests for the Tensor substrate.
#include <gtest/gtest.h>

#include "core/tensor.h"
#include "util/rng.h"

namespace llm::core {
namespace {

TEST(TensorTest, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.ndim(), 2);
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, ScalarHasRankZero) {
  Tensor s = Tensor::Scalar(2.5f);
  EXPECT_EQ(s.ndim(), 0);
  EXPECT_EQ(s.numel(), 1);
  EXPECT_FLOAT_EQ(s[0], 2.5f);
}

TEST(TensorTest, FromVectorTakesData) {
  Tensor t = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(t.At({0, 1}), 2.0f);
  EXPECT_FLOAT_EQ(t.At({1, 0}), 3.0f);
}

TEST(TensorTest, MultiIndexMatchesFlat) {
  Tensor t = Tensor::FromVector({2, 3, 4}, [] {
    std::vector<float> v(24);
    for (size_t i = 0; i < 24; ++i) v[i] = static_cast<float>(i);
    return v;
  }());
  EXPECT_FLOAT_EQ(t.At({1, 2, 3}), 23.0f);
  EXPECT_FLOAT_EQ(t.At({0, 1, 0}), 4.0f);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.Reshaped({3, 2});
  EXPECT_EQ(r.ndim(), 2);
  EXPECT_EQ(r.dim(0), 3);
  EXPECT_FLOAT_EQ(r.At({2, 1}), 6.0f);
}

TEST(TensorTest, ArithmeticInPlace) {
  Tensor a = Tensor::FromVector({3}, {1, 2, 3});
  Tensor b = Tensor::FromVector({3}, {10, 20, 30});
  a.Add(b);
  EXPECT_FLOAT_EQ(a[2], 33.0f);
  a.AddScaled(b, -0.5f);
  EXPECT_FLOAT_EQ(a[0], 6.0f);
  a.Scale(2.0f);
  EXPECT_FLOAT_EQ(a[1], 24.0f);
}

TEST(TensorTest, Reductions) {
  Tensor t = Tensor::FromVector({4}, {1, -2, 3, -4});
  EXPECT_FLOAT_EQ(t.Sum(), -2.0f);
  EXPECT_FLOAT_EQ(t.Mean(), -0.5f);
  EXPECT_FLOAT_EQ(t.MaxAbs(), 4.0f);
  EXPECT_FLOAT_EQ(t.SquaredNorm(), 30.0f);
}

TEST(TensorTest, MaxAbsDiff) {
  Tensor a = Tensor::FromVector({2}, {1, 5});
  Tensor b = Tensor::FromVector({2}, {1.5, 4});
  EXPECT_FLOAT_EQ(Tensor::MaxAbsDiff(a, b), 1.0f);
}

TEST(TensorTest, RandomNormalStats) {
  util::Rng rng(42);
  Tensor t = Tensor::RandomNormal({10000}, &rng, 1.0f, 2.0f);
  EXPECT_NEAR(t.Mean(), 1.0f, 0.1f);
  double var = 0;
  for (int64_t i = 0; i < t.numel(); ++i) {
    var += (t[i] - t.Mean()) * (t[i] - t.Mean());
  }
  EXPECT_NEAR(var / static_cast<double>(t.numel()), 4.0, 0.3);
}

TEST(TensorTest, RandomUniformBounds) {
  util::Rng rng(43);
  Tensor t = Tensor::RandomUniform({1000}, &rng, -2.0f, 3.0f);
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_GE(t[i], -2.0f);
    EXPECT_LT(t[i], 3.0f);
  }
}

TEST(TensorTest, DefaultIsInvalid) {
  Tensor t;
  EXPECT_FALSE(t.valid());
}

TEST(ShapeTest, NumElementsAndToString) {
  EXPECT_EQ(NumElements({2, 3, 4}), 24);
  EXPECT_EQ(NumElements({}), 1);
  EXPECT_EQ(NumElements({0, 5}), 0);
  EXPECT_EQ(ShapeToString({2, 3}), "[2, 3]");
}

}  // namespace
}  // namespace llm::core
