// Tests for the text pipeline: Vocab, tokenizers, BPE, TokenDataset.
#include <gtest/gtest.h>

#include <algorithm>

#include "text/bpe.h"
#include "text/dataset.h"
#include "text/tokenizer.h"
#include "text/vocab.h"
#include "util/status.h"

namespace llm::text {
namespace {

TEST(VocabTest, AddIsIdempotent) {
  Vocab v;
  EXPECT_EQ(v.AddToken("cat"), 0);
  EXPECT_EQ(v.AddToken("dog"), 1);
  EXPECT_EQ(v.AddToken("cat"), 0);
  EXPECT_EQ(v.size(), 2);
  EXPECT_EQ(v.TokenOf(1), "dog");
  EXPECT_EQ(v.IdOf("bird"), -1);
  EXPECT_EQ(v.IdOrUnk("bird", 0), 0);
}

TEST(VocabTest, EncodeGrowsOrUsesUnk) {
  Vocab v;
  const int64_t unk = v.AddToken("<unk>");
  auto grown = v.Encode({"a", "b", "a"});
  EXPECT_EQ(grown, (std::vector<int64_t>{1, 2, 1}));
  auto fixed = v.Encode({"a", "zzz"}, /*grow=*/false, unk);
  EXPECT_EQ(fixed, (std::vector<int64_t>{1, unk}));
}

TEST(VocabTest, TryEncodeReportsUnknownTokensWithoutGrowing) {
  Vocab v;
  const int64_t unk = v.AddToken("<unk>");
  v.Encode({"a", "b"});
  const size_t size_before = v.size();

  // Known tokens round-trip.
  auto known = v.TryEncode({"a", "b", "a"});
  ASSERT_TRUE(known.ok()) << known.status();
  EXPECT_EQ(known.value(), (std::vector<int64_t>{1, 2, 1}));

  // Unknown token + an unk id: mapped, never grown.
  auto mapped = v.TryEncode({"a", "zzz", "b"}, unk);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_EQ(mapped.value(), (std::vector<int64_t>{1, unk, 2}));

  // Unknown token with no unk id: InvalidArgument naming the token,
  // instead of the aborting path Encode(grow=false) takes.
  auto rejected = v.TryEncode({"a", "zzz"});
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(rejected.status().message().find("zzz"), std::string::npos)
      << rejected.status();

  // TryEncode is const: the vocabulary never grew on any path above.
  EXPECT_EQ(v.size(), size_before);
  EXPECT_EQ(v.IdOf("zzz"), -1);
}

TEST(VocabTest, DecodeJoins) {
  Vocab v;
  v.Encode({"the", "cat"});
  EXPECT_EQ(v.Decode({0, 1}), "the cat");
}

TEST(TokenizerTest, WhitespaceBasics) {
  auto toks = WhitespaceTokenize("  the   cat\tsat\n");
  EXPECT_EQ(toks, (std::vector<std::string>{"the", "cat", "sat"}));
}

TEST(TokenizerTest, PunctuationSplitting) {
  auto toks = WhitespaceTokenize("cat, dog.", /*split_punctuation=*/true);
  EXPECT_EQ(toks, (std::vector<std::string>{"cat", ",", "dog", "."}));
}

TEST(TokenizerTest, Lowercase) {
  auto toks = WhitespaceTokenize("The CAT", false, /*lowercase=*/true);
  EXPECT_EQ(toks, (std::vector<std::string>{"the", "cat"}));
}

TEST(TokenizerTest, CharTokenize) {
  auto toks = CharTokenize("ab c");
  EXPECT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[2], " ");
}

TEST(BpeTest, LearnsFrequentPairs) {
  // "low" appears often; BPE should merge l+o and lo+w</w> family.
  std::string corpus;
  for (int i = 0; i < 20; ++i) corpus += "low lower lowest ";
  Bpe bpe;
  bpe.Train(corpus, 10);
  EXPECT_FALSE(bpe.merges().empty());
  auto symbols = bpe.EncodeWord("low");
  // After enough merges "low" becomes few symbols.
  EXPECT_LE(symbols.size(), 2u);
}

TEST(BpeTest, SubwordDecomposition) {
  // The paper's "supersymmetrization" example in miniature: shared stems
  // should become shared symbols.
  std::string corpus;
  for (int i = 0; i < 30; ++i) {
    corpus += "symmetry symmetric symmetrize super superb ization ";
  }
  Bpe bpe;
  bpe.Train(corpus, 40);
  auto novel = bpe.EncodeWord("supersymmetrization");
  // The novel word splits into more than one but far fewer than
  // character-count symbols.
  EXPECT_GT(novel.size(), 1u);
  EXPECT_LT(novel.size(), 19u);
}

TEST(BpeTest, EncodeDecodeRoundTrip) {
  std::string corpus = "the cat sat on the mat the cat sat";
  Bpe bpe;
  bpe.Train(corpus, 20);
  auto symbols = bpe.Encode("the cat sat");
  EXPECT_EQ(bpe.Decode(symbols), "the cat sat");
}

TEST(BpeTest, EncodesUnseenCharacters) {
  Bpe bpe;
  bpe.Train("aa aa aa", 5);
  auto symbols = bpe.EncodeWord("xyz");  // falls back to characters
  EXPECT_EQ(symbols.size(), 3u);
}

TEST(DatasetTest, BatchShapesAndShift) {
  std::vector<int64_t> tokens(100);
  for (size_t i = 0; i < 100; ++i) tokens[i] = static_cast<int64_t>(i);
  TokenDataset ds(tokens, 8);
  util::Rng rng(1);
  std::vector<int64_t> in, tg;
  ds.SampleBatch(&rng, 4, &in, &tg);
  ASSERT_EQ(in.size(), 32u);
  ASSERT_EQ(tg.size(), 32u);
  // Target is always input + 1 in this arithmetic stream.
  for (size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(tg[i], in[i] + 1);
  }
}

TEST(DatasetTest, EvalWindowsTile) {
  std::vector<int64_t> tokens(50);
  for (size_t i = 0; i < 50; ++i) tokens[i] = static_cast<int64_t>(i);
  TokenDataset ds(tokens, 8);
  std::vector<int64_t> in, tg;
  int64_t n = 0;
  ds.EvalWindows(100, &in, &tg, &n);
  EXPECT_EQ(n, 6);  // offsets 0..40: each window needs seq_len+1 tokens
  EXPECT_EQ(in[0], 0);
  EXPECT_EQ(in[8], 8);  // windows are non-overlapping
}

TEST(DatasetTest, SplitFractions) {
  std::vector<int64_t> tokens(100, 7);
  auto [train, test] = SplitTokens(tokens, 0.2);
  EXPECT_EQ(train.size(), 80u);
  EXPECT_EQ(test.size(), 20u);
}

}  // namespace
}  // namespace llm::text
