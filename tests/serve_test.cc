// Tests for the batched inference serving runtime (src/serve).
//
// The central contract: a request served through the continuous-batching
// scheduler returns exactly the tokens that sample::GenerateCached would
// produce for the same prompt/options/seed on a dedicated session —
// whatever else shares the batch. Plus unit coverage for the queue, the
// KV pool, the worker pool, and the server's admission/cancel/deadline/
// shutdown/stats behavior. Registered under the `serve` ctest label so
// the TSan preset can run the suite in isolation.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sample/sampler.h"
#include "serve/inference_server.h"
#include "serve/kv_cache_pool.h"
#include "serve/request_queue.h"
#include "serve/worker_pool.h"
#include "util/fault.h"

namespace llm::serve {
namespace {

// --- RequestQueue ----------------------------------------------------------

std::shared_ptr<RequestState> MakeState(RequestId id) {
  auto state = std::make_shared<RequestState>();
  state->id = id;
  return state;
}

TEST(RequestQueueTest, BoundedFifoAndRejection) {
  RequestQueue queue(2);
  EXPECT_TRUE(queue.Push(MakeState(1)).ok());
  EXPECT_TRUE(queue.Push(MakeState(2)).ok());
  const util::Status full = queue.Push(MakeState(3));
  EXPECT_EQ(full.code(), util::StatusCode::kResourceExhausted);
  EXPECT_EQ(queue.size(), 2u);

  std::shared_ptr<RequestState> state;
  ASSERT_TRUE(queue.TryPop(&state));
  EXPECT_EQ(state->id, 1u);  // FIFO
  ASSERT_TRUE(queue.TryPop(&state));
  EXPECT_EQ(state->id, 2u);
  EXPECT_FALSE(queue.TryPop(&state));
}

TEST(RequestQueueTest, CloseRejectsPushAndWakesWaiters) {
  RequestQueue queue(4);
  std::thread waiter([&] {
    std::shared_ptr<RequestState> state;
    EXPECT_FALSE(queue.WaitPop(&state));  // closed and empty
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  queue.Close();
  waiter.join();
  EXPECT_EQ(queue.Push(MakeState(9)).code(),
            util::StatusCode::kFailedPrecondition);
}

TEST(RequestQueueTest, WaitPopDeliversAcrossThreads) {
  RequestQueue queue(4);
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_TRUE(queue.Push(MakeState(7)).ok());
  });
  std::shared_ptr<RequestState> state;
  ASSERT_TRUE(queue.WaitPop(&state));
  EXPECT_EQ(state->id, 7u);
  producer.join();
}

// --- KvCachePool -----------------------------------------------------------

TEST(KvCachePoolTest, LeasesAllSlotsThenExhausts) {
  nn::GPTConfig cfg;
  cfg.vocab_size = 7;
  cfg.max_seq_len = 8;
  cfg.d_model = 16;
  cfg.n_layer = 2;
  cfg.n_head = 2;
  KvCachePool pool(cfg, 3);
  EXPECT_EQ(pool.free_count(), 3);
  EXPECT_GT(pool.bytes(), 0u);

  std::vector<int64_t> slots;
  for (int i = 0; i < 3; ++i) {
    const int64_t slot = pool.Acquire();
    ASSERT_GE(slot, 0);
    slots.push_back(slot);
  }
  EXPECT_EQ(pool.Acquire(), -1);  // exhausted
  EXPECT_EQ(pool.free_count(), 0);

  // Views are per-slot/per-layer distinct storage.
  for (size_t a = 0; a < slots.size(); ++a) {
    for (size_t b = a + 1; b < slots.size(); ++b) {
      EXPECT_NE(pool.slot_views(slots[a])[0].keys,
                pool.slot_views(slots[b])[0].keys);
    }
    EXPECT_NE(pool.slot_views(slots[a])[0].keys,
              pool.slot_views(slots[a])[1].keys);
    EXPECT_NE(pool.slot_views(slots[a])[0].keys,
              pool.slot_views(slots[a])[0].values);
  }

  pool.Release(slots[1]);
  EXPECT_EQ(pool.free_count(), 1);
  EXPECT_EQ(pool.Acquire(), slots[1]);  // recycled, not reallocated
}

// --- WorkerPool ------------------------------------------------------------

TEST(WorkerPoolTest, RunsEveryIndexExactlyOnce) {
  for (int threads : {0, 1, 3}) {
    WorkerPool pool(threads);
    EXPECT_EQ(pool.lanes(), threads > 0 ? threads : 1);
    std::vector<std::atomic<int>> hits(17);
    for (auto& h : hits) h.store(0);
    pool.Run(17, [&](int64_t i, int lane) {
      EXPECT_GE(lane, 0);
      EXPECT_LT(lane, pool.lanes());
      hits[static_cast<size_t>(i)].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(WorkerPoolTest, BackToBackRunsAreIsolated) {
  WorkerPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int64_t> sum{0};
    pool.Run(round % 5, [&](int64_t i, int) { sum.fetch_add(i + 1); });
    const int64_t n = round % 5;
    EXPECT_EQ(sum.load(), n * (n + 1) / 2);
  }
}

// --- InferenceServer -------------------------------------------------------

nn::GPTConfig SmallConfig() {
  nn::GPTConfig cfg;
  cfg.vocab_size = 19;
  cfg.max_seq_len = 16;
  cfg.d_model = 24;
  cfg.n_layer = 2;
  cfg.n_head = 3;
  return cfg;
}

GenerateRequest MakeRequest(std::vector<int64_t> prompt, uint64_t seed,
                            int64_t max_new = 8) {
  GenerateRequest request;
  request.prompt = std::move(prompt);
  request.seed = seed;
  request.max_new_tokens = max_new;
  request.sampler.temperature = 0.8f;
  request.sampler.top_k = 7;
  return request;
}

std::vector<int64_t> SingleStreamReference(const nn::GPTModel& model,
                                           const GenerateRequest& request) {
  sample::GenerateOptions opts;
  opts.max_new_tokens = request.max_new_tokens;
  opts.sampler = request.sampler;
  opts.stop_token = request.stop_token;
  util::Rng rng(request.seed);
  return sample::GenerateCached(model, request.prompt, opts, &rng);
}

TEST(InferenceServerTest, MoreRequestsThanSlotsAllMatchSingleStream) {
  // 9 concurrent requests through 3 KV slots: continuous batching must
  // recycle slots mid-flight, and every request must still get the exact
  // tokens a dedicated single-stream session would have produced.
  util::Rng rng(31);
  nn::GPTModel model(SmallConfig(), &rng);
  ServerOptions options;
  options.max_batch_size = 3;
  options.num_workers = 2;
  options.queue_capacity = 32;
  InferenceServer server(&model, options);
  server.Start();

  std::vector<GenerateRequest> requests;
  requests.push_back(MakeRequest({3, 1, 4, 1, 5}, 1));
  requests.push_back(MakeRequest({2, 7}, 2, 12));
  requests.push_back(MakeRequest({9, 9, 8, 2, 6, 5, 3}, 3));
  requests.push_back(MakeRequest({0}, 4, 15));  // runs into the window
  requests.push_back(MakeRequest({11, 16, 13}, 5));
  requests.push_back(MakeRequest({1}, 6, 3));
  {
    GenerateRequest greedy = MakeRequest({5, 5, 5}, 7);
    greedy.sampler = sample::SamplerOptions{0.0f, 0, 0.0f};
    requests.push_back(std::move(greedy));
  }
  {
    GenerateRequest nucleus = MakeRequest({8, 2}, 8, 10);
    nucleus.sampler = sample::SamplerOptions{1.1f, 0, 0.9f};
    requests.push_back(std::move(nucleus));
  }
  requests.push_back(MakeRequest({4, 4, 4, 4}, 9, 6));

  std::vector<RequestId> ids;
  for (const auto& request : requests) {
    auto id = server.Submit(request);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(id.value());
  }
  for (size_t i = 0; i < requests.size(); ++i) {
    auto result = server.Wait(ids[i]);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result.value().status.ok());
    EXPECT_EQ(result.value().tokens,
              SingleStreamReference(model, requests[i]))
        << "request " << i;
  }
  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.completed, requests.size());
  EXPECT_EQ(stats.active_slots, 0);
}

TEST(InferenceServerTest, StopTokenAndFinishReasons) {
  util::Rng rng(32);
  nn::GPTModel model(SmallConfig(), &rng);
  InferenceServer server(&model, ServerOptions{});
  server.Start();

  // Greedy-probe the first generated token, then use it as a stop token.
  GenerateRequest probe = MakeRequest({6, 2}, 0, 1);
  probe.sampler = sample::SamplerOptions{0.0f, 0, 0.0f};
  RequestResult probed = server.GenerateBlocking(probe);
  ASSERT_TRUE(probed.status.ok());
  ASSERT_EQ(probed.tokens.size(), 1u);
  EXPECT_EQ(probed.reason, FinishReason::kLength);

  GenerateRequest stop_request = probe;
  stop_request.max_new_tokens = 10;
  stop_request.stop_token = probed.tokens[0];
  RequestResult stopped = server.GenerateBlocking(stop_request);
  ASSERT_TRUE(stopped.status.ok());
  EXPECT_EQ(stopped.reason, FinishReason::kStop);
  EXPECT_EQ(stopped.tokens, probed.tokens);

  // A request that outruns the model window finishes with kWindow.
  GenerateRequest window_request = MakeRequest({1}, 3, 100);
  RequestResult windowed = server.GenerateBlocking(window_request);
  ASSERT_TRUE(windowed.status.ok());
  EXPECT_EQ(windowed.reason, FinishReason::kWindow);
  EXPECT_EQ(windowed.tokens, SingleStreamReference(model, window_request));
}

TEST(InferenceServerTest, StreamsEveryTokenInOrder) {
  util::Rng rng(33);
  nn::GPTModel model(SmallConfig(), &rng);
  InferenceServer server(&model, ServerOptions{});
  server.Start();

  std::vector<int64_t> streamed;
  std::mutex streamed_mu;
  GenerateRequest request = MakeRequest({2, 3, 5, 7}, 17, 9);
  request.on_token = [&](RequestId, int64_t token) {
    std::lock_guard<std::mutex> lock(streamed_mu);
    streamed.push_back(token);
  };
  RequestResult result = server.GenerateBlocking(request);
  ASSERT_TRUE(result.status.ok());
  std::lock_guard<std::mutex> lock(streamed_mu);
  EXPECT_EQ(streamed, result.tokens);
}

TEST(InferenceServerTest, SubmitValidationAndZeroLengthRequests) {
  util::Rng rng(34);
  nn::GPTModel model(SmallConfig(), &rng);
  InferenceServer server(&model, ServerOptions{});
  server.Start();

  EXPECT_EQ(server.Submit(MakeRequest({}, 1)).status().code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(
      server.Submit(MakeRequest(std::vector<int64_t>(17, 1), 1)).status().code(),
      util::StatusCode::kInvalidArgument);  // prompt longer than the window
  EXPECT_EQ(server.Submit(MakeRequest({19}, 1)).status().code(),
            util::StatusCode::kInvalidArgument);  // token out of vocabulary
  EXPECT_EQ(server.Submit(MakeRequest({-1}, 1)).status().code(),
            util::StatusCode::kInvalidArgument);

  GenerateRequest empty_gen = MakeRequest({1, 2}, 1, 0);
  RequestResult result = server.GenerateBlocking(empty_gen);
  EXPECT_TRUE(result.status.ok());
  EXPECT_TRUE(result.tokens.empty());
  EXPECT_EQ(result.reason, FinishReason::kLength);

  EXPECT_EQ(server.Wait(99999).status().code(), util::StatusCode::kNotFound);
}

TEST(InferenceServerTest, BoundedAdmissionRejectsWhenQueueFull) {
  util::Rng rng(35);
  nn::GPTModel model(SmallConfig(), &rng);
  ServerOptions options;
  options.queue_capacity = 3;
  InferenceServer server(&model, options);
  // Not started: the queue fills deterministically.
  std::vector<RequestId> ids;
  for (int i = 0; i < 3; ++i) {
    auto id = server.Submit(MakeRequest({1, 2}, static_cast<uint64_t>(i), 2));
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  auto rejected = server.Submit(MakeRequest({1, 2}, 99, 2));
  EXPECT_EQ(rejected.status().code(), util::StatusCode::kResourceExhausted);
  EXPECT_EQ(server.Stats().rejected, 1u);
  EXPECT_EQ(server.Stats().queue_depth, 3u);

  // Pre-Start submissions are served once the scheduler comes up.
  server.Start();
  for (RequestId id : ids) {
    auto result = server.Wait(id);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result.value().status.ok());
    EXPECT_EQ(result.value().tokens.size(), 2u);
  }
}

TEST(InferenceServerTest, CancelQueuedRequestBeforeStart) {
  util::Rng rng(36);
  nn::GPTModel model(SmallConfig(), &rng);
  InferenceServer server(&model, ServerOptions{});
  auto id = server.Submit(MakeRequest({1, 2, 3}, 5, 50));
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(server.Cancel(id.value()));
  server.Start();
  auto result = server.Wait(id.value());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().reason, FinishReason::kCancelled);
  EXPECT_EQ(result.value().status.code(), util::StatusCode::kCancelled);
  EXPECT_TRUE(result.value().tokens.empty());
  EXPECT_FALSE(server.Cancel(99999));  // unknown id
}

TEST(InferenceServerTest, CancelInFlightKeepsPartialOutput) {
  util::Rng rng(37);
  nn::GPTConfig cfg = SmallConfig();
  // A window this deep takes the scheduler thousands of ticks to exhaust,
  // so the cancel below always lands while the request is in flight.
  cfg.max_seq_len = 4096;
  nn::GPTModel model(cfg, &rng);
  InferenceServer server(&model, ServerOptions{});
  server.Start();

  std::promise<void> first_token;
  std::atomic<bool> signalled{false};
  GenerateRequest request = MakeRequest({1, 2}, 11, 10000);
  request.on_token = [&](RequestId, int64_t) {
    if (!signalled.exchange(true)) first_token.set_value();
  };
  auto id = server.Submit(request);
  ASSERT_TRUE(id.ok());
  first_token.get_future().wait();
  EXPECT_TRUE(server.Cancel(id.value()));
  auto result = server.Wait(id.value());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().reason, FinishReason::kCancelled);
  EXPECT_GE(result.value().tokens.size(), 1u);
  // The partial stream is still the exact single-stream prefix: replaying
  // the request with max_new_tokens == the partial length must reproduce
  // it token for token.
  GenerateRequest replay = request;
  replay.on_token = nullptr;
  replay.max_new_tokens = static_cast<int64_t>(result.value().tokens.size());
  EXPECT_EQ(result.value().tokens, SingleStreamReference(model, replay));
}

TEST(InferenceServerTest, QueuedDeadlineExpiresBeforeAdmission) {
  util::Rng rng(38);
  nn::GPTModel model(SmallConfig(), &rng);
  InferenceServer server(&model, ServerOptions{});
  GenerateRequest request = MakeRequest({1, 2}, 3, 4);
  request.timeout = std::chrono::milliseconds(1);
  auto id = server.Submit(request);
  ASSERT_TRUE(id.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  server.Start();  // deadline already gone when the scheduler first looks
  auto result = server.Wait(id.value());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().reason, FinishReason::kDeadline);
  EXPECT_EQ(result.value().status.code(),
            util::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(server.Stats().expired, 1u);
}

TEST(InferenceServerTest, ShutdownCancelsInFlightAndQueued) {
  util::Rng rng(39);
  nn::GPTConfig cfg = SmallConfig();
  cfg.max_seq_len = 4096;  // keeps the in-flight request from finishing
  nn::GPTModel model(cfg, &rng);
  ServerOptions options;
  options.max_batch_size = 1;  // second request stays queued
  auto server = std::make_unique<InferenceServer>(&model, options);
  server->Start();

  std::promise<void> first_token;
  std::atomic<bool> signalled{false};
  GenerateRequest request = MakeRequest({1, 2}, 11, 10000);
  request.on_token = [&](RequestId, int64_t) {
    if (!signalled.exchange(true)) first_token.set_value();
  };
  auto in_flight = server->Submit(request);
  ASSERT_TRUE(in_flight.ok());
  first_token.get_future().wait();
  auto queued = server->Submit(MakeRequest({3, 4}, 12, 10000));
  ASSERT_TRUE(queued.ok());

  server->Shutdown();
  auto flight_result = server->Wait(in_flight.value());
  ASSERT_TRUE(flight_result.ok());
  EXPECT_EQ(flight_result.value().reason, FinishReason::kCancelled);
  EXPECT_GE(flight_result.value().tokens.size(), 1u);
  auto queued_result = server->Wait(queued.value());
  ASSERT_TRUE(queued_result.ok());
  EXPECT_EQ(queued_result.value().reason, FinishReason::kCancelled);

  // Post-shutdown submissions are refused.
  EXPECT_EQ(server->Submit(MakeRequest({1}, 1)).status().code(),
            util::StatusCode::kFailedPrecondition);
}

TEST(InferenceServerTest, StatsTrackThroughputAndLatency) {
  util::Rng rng(40);
  nn::GPTModel model(SmallConfig(), &rng);
  ServerOptions options;
  options.max_batch_size = 4;
  InferenceServer server(&model, options);
  server.Start();
  std::vector<RequestId> ids;
  for (uint64_t seed = 0; seed < 6; ++seed) {
    auto id = server.Submit(MakeRequest({1, 2, 3}, seed, 5));
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  for (RequestId id : ids) ASSERT_TRUE(server.Wait(id).ok());
  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.submitted, 6u);
  EXPECT_EQ(stats.completed, 6u);
  EXPECT_EQ(stats.total_tokens, 30u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.active_slots, 0);
  EXPECT_EQ(stats.total_slots, 4);
  EXPECT_GT(stats.tokens_per_sec, 0.0);
  EXPECT_GT(stats.p50_latency_ms, 0.0);
  EXPECT_LE(stats.p50_latency_ms, stats.p95_latency_ms);
  EXPECT_LE(stats.p95_latency_ms, stats.p99_latency_ms);
}

// --- Resilience ------------------------------------------------------------
//
// Fault-injection-driven coverage of the failure model (DESIGN.md §10):
// poisoned lanes, throwing callbacks, leaked slots, stalled ticks, drain,
// deadline shedding, and the cancel/shutdown races. Every test disarms the
// injector on exit so a failing assertion can't poison its neighbors.

class ServeResilienceTest : public ::testing::Test {
 protected:
  void TearDown() override { util::FaultInjector::Global().Disarm(); }
};

TEST_F(ServeResilienceTest, PoisonedLaneRetiresAloneOthersBitExact) {
  // Three requests share one batch; the first lane's logits are poisoned
  // with NaN at its first sampling step. That request must fail with
  // Internal — and the other two must still be bit-exact against the
  // single-stream reference, proving the poison never crossed lanes.
  util::Rng rng(50);
  nn::GPTModel model(SmallConfig(), &rng);
  ServerOptions options;
  options.max_batch_size = 3;
  options.num_workers = 0;  // deterministic occurrence order
  InferenceServer server(&model, options);

  std::vector<GenerateRequest> requests;
  requests.push_back(MakeRequest({3}, 1, 6));  // slot 0: poisoned
  requests.push_back(MakeRequest({5}, 2, 6));
  requests.push_back(MakeRequest({7}, 3, 6));
  std::vector<RequestId> ids;
  for (const auto& request : requests) {
    auto id = server.Submit(request);
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  // Length-1 prompts sample on the very first tick, lanes in slot order, so
  // occurrence 0 of kDecodeNaN is exactly request 0's first sample.
  util::FaultInjector::Global().ArmAt(util::FaultSite::kDecodeNaN, {0});
  server.Start();

  auto poisoned = server.Wait(ids[0]);
  ASSERT_TRUE(poisoned.ok());
  EXPECT_EQ(poisoned.value().reason, FinishReason::kFault);
  EXPECT_EQ(poisoned.value().status.code(), util::StatusCode::kInternal);
  EXPECT_TRUE(poisoned.value().tokens.empty());
  for (size_t i = 1; i < ids.size(); ++i) {
    auto result = server.Wait(ids[i]);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result.value().status.ok());
    EXPECT_EQ(result.value().tokens, SingleStreamReference(model, requests[i]))
        << "batch mate " << i << " not bit-exact";
  }
  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.health, ServerHealth::kDegraded);
  EXPECT_EQ(stats.free_slots, stats.total_slots);
}

TEST_F(ServeResilienceTest, ThrowingOnTokenCallbackIsIsolated) {
  // Request A's streaming callback throws on its second token; A must fail
  // with Internal while batch mate B (no callback) completes bit-exact.
  util::Rng rng(51);
  nn::GPTModel model(SmallConfig(), &rng);
  ServerOptions options;
  options.max_batch_size = 2;
  options.num_workers = 0;
  InferenceServer server(&model, options);

  std::atomic<int> delivered{0};
  GenerateRequest bad = MakeRequest({2}, 4, 6);
  bad.on_token = [&](RequestId, int64_t) { delivered.fetch_add(1); };
  GenerateRequest good = MakeRequest({9}, 5, 6);
  auto bad_id = server.Submit(bad);
  auto good_id = server.Submit(good);
  ASSERT_TRUE(bad_id.ok());
  ASSERT_TRUE(good_id.ok());
  // kOnTokenThrow occurrences count only callback deliveries, and B has no
  // callback — so occurrence 1 is A's second token, deterministically.
  util::FaultInjector::Global().ArmAt(util::FaultSite::kOnTokenThrow, {1});
  server.Start();

  auto bad_result = server.Wait(bad_id.value());
  ASSERT_TRUE(bad_result.ok());
  EXPECT_EQ(bad_result.value().reason, FinishReason::kFault);
  EXPECT_EQ(bad_result.value().status.code(), util::StatusCode::kInternal);
  EXPECT_EQ(delivered.load(), 1);  // the throwing delivery never landed
  auto good_result = server.Wait(good_id.value());
  ASSERT_TRUE(good_result.ok());
  EXPECT_EQ(good_result.value().tokens, SingleStreamReference(model, good));
  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.health, ServerHealth::kDegraded);
  EXPECT_EQ(stats.free_slots, stats.total_slots);
}

TEST_F(ServeResilienceTest, LeakedSlotIsSweptBackAndServingContinues) {
  // The first retirement leaks its KV slot (Release is dropped). With a
  // single slot, the second request can only ever run if the reclamation
  // sweep repairs the leak.
  util::Rng rng(52);
  nn::GPTModel model(SmallConfig(), &rng);
  ServerOptions options;
  options.max_batch_size = 1;
  InferenceServer server(&model, options);
  auto first = server.Submit(MakeRequest({1, 2}, 6, 3));
  auto second = server.Submit(MakeRequest({3, 4}, 7, 3));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  util::FaultInjector::Global().ArmAt(util::FaultSite::kSlotLeak, {0});
  server.Start();

  for (RequestId id : {first.value(), second.value()}) {
    auto result = server.Wait(id);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result.value().status.ok());
    EXPECT_EQ(result.value().tokens.size(), 3u);
  }
  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.leaks_repaired, 1u);
  EXPECT_EQ(stats.free_slots, stats.total_slots);
  EXPECT_EQ(stats.health, ServerHealth::kDegraded);
}

TEST_F(ServeResilienceTest, WatchdogConvertsStallIntoFailedRequest) {
  // An injected 30ms worker stall against a 15ms tick budget: the watchdog
  // must fail the in-flight request with a diagnostic Internal status —
  // Wait returns instead of hanging — and the server keeps serving.
  util::Rng rng(53);
  nn::GPTConfig cfg = SmallConfig();
  cfg.max_seq_len = 4096;  // the stalled request would otherwise run long
  nn::GPTModel model(cfg, &rng);
  ServerOptions options;
  options.max_batch_size = 1;
  options.num_workers = 0;
  options.tick_budget = std::chrono::milliseconds(15);
  InferenceServer server(&model, options);
  auto id = server.Submit(MakeRequest({1, 2}, 8, 10000));
  ASSERT_TRUE(id.ok());
  util::FaultInjector::Global().ArmAt(util::FaultSite::kWorkerStall, {5});
  server.Start();

  auto result = server.Wait(id.value());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().reason, FinishReason::kFault);
  EXPECT_EQ(result.value().status.code(), util::StatusCode::kInternal);
  EXPECT_NE(result.value().status.ToString().find("stalled"),
            std::string::npos);
  EXPECT_GE(server.Stats().stalled_ticks, 1u);
  EXPECT_EQ(server.Stats().health, ServerHealth::kDegraded);

  // The wedged tick is over; the server must still serve new requests.
  util::FaultInjector::Global().Disarm();
  RequestResult after = server.GenerateBlocking(MakeRequest({3}, 9, 4));
  EXPECT_TRUE(after.status.ok());
  EXPECT_EQ(after.tokens.size(), 4u);
  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.submitted, stats.completed + stats.cancelled +
                                 stats.expired + stats.failed);
  EXPECT_EQ(stats.free_slots, stats.total_slots);
}

TEST_F(ServeResilienceTest, DrainCompletesInFlightAndRejectsNewSubmits) {
  util::Rng rng(54);
  nn::GPTConfig cfg = SmallConfig();
  cfg.max_seq_len = 4096;
  nn::GPTModel model(cfg, &rng);
  InferenceServer server(&model, ServerOptions{});
  server.Start();

  std::promise<void> first_token;
  std::atomic<bool> signalled{false};
  GenerateRequest request = MakeRequest({1, 2}, 21, 40);
  request.on_token = [&](RequestId, int64_t) {
    if (!signalled.exchange(true)) first_token.set_value();
  };
  auto id = server.Submit(request);
  ASSERT_TRUE(id.ok());
  first_token.get_future().wait();

  auto drain_status = std::async(std::launch::async, [&] {
    return server.Drain(std::chrono::seconds(20));
  });
  while (server.Health() != ServerHealth::kDraining) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  // Admission is closed the moment draining begins.
  EXPECT_EQ(server.Submit(MakeRequest({5}, 1)).status().code(),
            util::StatusCode::kFailedPrecondition);
  EXPECT_TRUE(drain_status.get().ok());

  // The in-flight request was allowed to finish, not cancelled.
  auto result = server.Wait(id.value());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().reason, FinishReason::kLength);
  EXPECT_EQ(result.value().tokens.size(), 40u);
  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.free_slots, stats.total_slots);
  EXPECT_EQ(stats.health, ServerHealth::kDraining);
}

TEST_F(ServeResilienceTest, DrainTimeoutCancelsTheRemainder) {
  util::Rng rng(55);
  nn::GPTConfig cfg = SmallConfig();
  cfg.max_seq_len = 4096;
  nn::GPTModel model(cfg, &rng);
  InferenceServer server(&model, ServerOptions{});
  server.Start();

  std::promise<void> first_token;
  std::atomic<bool> signalled{false};
  GenerateRequest request = MakeRequest({1, 2}, 22, 100000);
  request.on_token = [&](RequestId, int64_t) {
    if (!signalled.exchange(true)) first_token.set_value();
  };
  auto id = server.Submit(request);
  ASSERT_TRUE(id.ok());
  first_token.get_future().wait();

  // Far too little time for a 100000-token request: Drain must give up and
  // report it, and the Shutdown it runs cancels the request with its
  // partial output intact.
  const util::Status drained = server.Drain(std::chrono::milliseconds(5));
  EXPECT_EQ(drained.code(), util::StatusCode::kDeadlineExceeded);
  auto result = server.Wait(id.value());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().reason, FinishReason::kCancelled);
  EXPECT_GE(result.value().tokens.size(), 1u);
  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.submitted, stats.completed + stats.cancelled +
                                 stats.expired + stats.failed);
  EXPECT_EQ(stats.free_slots, stats.total_slots);
}

TEST_F(ServeResilienceTest, MidFlightDeadlineKeepsSingleStreamPrefix) {
  // A deadline that lapses mid-generation retires the request with kDeadline
  // and whatever it produced so far — and that partial output is still the
  // exact single-stream prefix.
  util::Rng rng(56);
  nn::GPTConfig cfg = SmallConfig();
  cfg.max_seq_len = 4096;
  nn::GPTModel model(cfg, &rng);
  InferenceServer server(&model, ServerOptions{});
  server.Start();

  GenerateRequest request = MakeRequest({1, 2}, 23, 100000);
  request.timeout = std::chrono::milliseconds(100);
  auto id = server.Submit(request);
  ASSERT_TRUE(id.ok());
  auto result = server.Wait(id.value());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().reason, FinishReason::kDeadline);
  EXPECT_EQ(result.value().status.code(), util::StatusCode::kDeadlineExceeded);
  ASSERT_GE(result.value().tokens.size(), 1u);
  GenerateRequest replay = request;
  replay.max_new_tokens = static_cast<int64_t>(result.value().tokens.size());
  EXPECT_EQ(result.value().tokens, SingleStreamReference(model, replay));
  EXPECT_EQ(server.Stats().expired, 1u);
}

TEST_F(ServeResilienceTest, InfeasibleDeadlineShedAtAdmission) {
  // A model heavy enough that its measured decode rate makes a
  // window-filling request obviously infeasible in 25ms: admission must
  // shed it (kDeadline, zero tokens) instead of wasting a KV slot.
  util::Rng rng(57);
  nn::GPTConfig cfg;
  cfg.vocab_size = 4096;
  cfg.max_seq_len = 16384;
  cfg.d_model = 128;
  cfg.n_layer = 2;
  cfg.n_head = 4;
  nn::GPTModel model(cfg, &rng);
  ServerOptions options;
  options.max_batch_size = 1;
  InferenceServer server(&model, options);
  server.Start();

  // Warm the decode-rate estimate past its trust threshold.
  RequestResult warmup = server.GenerateBlocking(MakeRequest({1, 2}, 1, 12));
  ASSERT_TRUE(warmup.status.ok());
  ASSERT_GT(server.Stats().est_ms_per_step, 0.0);

  GenerateRequest doomed = MakeRequest({3}, 2, 1000000);
  doomed.timeout = std::chrono::milliseconds(25);
  auto id = server.Submit(doomed);
  ASSERT_TRUE(id.ok());  // accepted into the queue; shed at admission
  auto result = server.Wait(id.value());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().reason, FinishReason::kDeadline);
  EXPECT_EQ(result.value().status.code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_NE(result.value().status.ToString().find("infeasible"),
            std::string::npos);
  EXPECT_TRUE(result.value().tokens.empty());
  EXPECT_EQ(server.Stats().expired, 1u);
}

TEST_F(ServeResilienceTest, EstimateSeedHintEnablesColdShedding) {
  // A fresh server given an est_ms_per_step_seed hint (e.g. carried over
  // from the outgoing incarnation by a rolling reload) sheds an
  // infeasible deadline IMMEDIATELY — before a single tick is measured.
  util::Rng rng(58);
  nn::GPTModel model(SmallConfig(), &rng);
  ServerOptions options;
  options.max_batch_size = 1;
  options.est_ms_per_step_seed = 50.0;  // hint: ~50ms/step
  InferenceServer server(&model, options);
  server.Start();
  EXPECT_DOUBLE_EQ(server.Stats().est_ms_per_step, 50.0);  // hint published

  GenerateRequest doomed = MakeRequest({3}, 2, 10);  // ~11 steps => ~550ms
  doomed.timeout = std::chrono::milliseconds(25);
  auto id = server.Submit(doomed);
  ASSERT_TRUE(id.ok());
  auto result = server.Wait(id.value());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().reason, FinishReason::kDeadline);
  EXPECT_NE(result.value().status.ToString().find("infeasible"),
            std::string::npos);
  EXPECT_TRUE(result.value().tokens.empty());
  EXPECT_EQ(server.Stats().expired, 1u);
}

TEST_F(ServeResilienceTest, ColdServerDoesNotShedFeasibleDeadlines) {
  // With no hint and no measured ticks there is no estimate at all, so
  // feasibility shedding stays off: the very first deadlined request is
  // admitted and served rather than judged on a garbage estimate.
  util::Rng rng(59);
  nn::GPTModel model(SmallConfig(), &rng);
  ServerOptions options;
  options.max_batch_size = 2;
  InferenceServer server(&model, options);
  server.Start();
  ASSERT_DOUBLE_EQ(server.Stats().est_ms_per_step, 0.0);  // truly cold

  GenerateRequest first = MakeRequest({1, 2}, 1, 6);
  first.timeout = std::chrono::seconds(5);
  RequestResult result = server.GenerateBlocking(first);
  EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.reason, FinishReason::kLength);
  EXPECT_EQ(server.Stats().expired, 0u);
  // And the first measured tick seeds the estimate for later admissions.
  EXPECT_GT(server.Stats().est_ms_per_step, 0.0);
}

TEST_F(ServeResilienceTest, FirstTickStallDoesNotCauseFalseShedding) {
  // A 30ms injected stall on the very first measured tick inflates the
  // initial estimate; the optimistic floor (fastest tick seen) must keep
  // that from condemning feasible deadlines while the EMA warms up.
  util::FaultInjector::Global().ArmAt(util::FaultSite::kWorkerStall, {0});
  util::Rng rng(60);
  nn::GPTModel model(SmallConfig(), &rng);
  ServerOptions options;
  options.max_batch_size = 2;
  InferenceServer server(&model, options);
  server.Start();

  std::vector<RequestId> ids;
  for (uint64_t seed = 0; seed < 6; ++seed) {
    GenerateRequest request = MakeRequest({1, 2}, seed, 6);
    request.timeout = std::chrono::seconds(5);  // generous and feasible
    auto id = server.Submit(request);
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  for (RequestId id : ids) {
    auto result = server.Wait(id);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().reason, FinishReason::kLength)
        << FinishReasonName(result.value().reason);
  }
  EXPECT_EQ(server.Stats().expired, 0u);
}

TEST_F(ServeResilienceTest, StreamingInterleavedWithCancelDeliversPrefix) {
  // Cancellation racing the token stream: every token in the result was
  // streamed, and nothing streams after the cancel retires the request.
  util::Rng rng(58);
  nn::GPTConfig cfg = SmallConfig();
  cfg.max_seq_len = 4096;
  nn::GPTModel model(cfg, &rng);
  InferenceServer server(&model, ServerOptions{});
  server.Start();

  std::mutex streamed_mu;
  std::vector<int64_t> streamed;
  std::promise<void> third_token;
  GenerateRequest request = MakeRequest({1, 2}, 24, 100000);
  request.on_token = [&](RequestId, int64_t token) {
    std::lock_guard<std::mutex> lock(streamed_mu);
    streamed.push_back(token);
    if (streamed.size() == 3) third_token.set_value();
  };
  auto id = server.Submit(request);
  ASSERT_TRUE(id.ok());
  third_token.get_future().wait();
  EXPECT_TRUE(server.Cancel(id.value()));
  auto result = server.Wait(id.value());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().reason, FinishReason::kCancelled);
  ASSERT_GE(result.value().tokens.size(), 3u);
  std::lock_guard<std::mutex> lock(streamed_mu);
  EXPECT_EQ(streamed, result.value().tokens);
}

TEST_F(ServeResilienceTest, CancelRacingAdmissionAlwaysReachesOneTerminal) {
  // Hammer the cancel-vs-admission window: submit and immediately cancel.
  // Whatever the race decides, every request must reach exactly one
  // terminal state and every KV slot must come back.
  util::Rng rng(59);
  nn::GPTModel model(SmallConfig(), &rng);
  ServerOptions options;
  options.max_batch_size = 4;
  options.num_workers = 2;
  InferenceServer server(&model, options);
  server.Start();

  std::vector<RequestId> ids;
  for (int i = 0; i < 60; ++i) {
    auto id = server.Submit(
        MakeRequest({1, 2}, static_cast<uint64_t>(i), 4));
    ASSERT_TRUE(id.ok());
    server.Cancel(id.value());
    ids.push_back(id.value());
    if (i % 3 == 0) std::this_thread::yield();
  }
  for (RequestId id : ids) {
    auto result = server.Wait(id);
    ASSERT_TRUE(result.ok());
    EXPECT_NE(result.value().reason, FinishReason::kNone);
  }
  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.submitted, 60u);
  EXPECT_EQ(stats.submitted, stats.completed + stats.cancelled +
                                 stats.expired + stats.failed);
  EXPECT_EQ(stats.active_slots, 0);
  EXPECT_EQ(stats.free_slots, stats.total_slots);
}

TEST_F(ServeResilienceTest, WaitAfterShutdownAlwaysReturns) {
  // Submits racing Shutdown: every accepted request must reach a terminal
  // state so Wait never hangs — including a push that lands between the
  // scheduler's final queue drain and the queue closing.
  util::Rng rng(60);
  nn::GPTConfig cfg = SmallConfig();
  cfg.max_seq_len = 4096;
  nn::GPTModel model(cfg, &rng);
  for (int round = 0; round < 8; ++round) {
    InferenceServer server(&model, ServerOptions{});
    server.Start();
    std::vector<RequestId> accepted;
    std::thread submitter([&] {
      for (int i = 0; i < 200; ++i) {
        auto id = server.Submit(
            MakeRequest({1, 2}, static_cast<uint64_t>(i), 1000));
        if (!id.ok()) {
          if (id.status().code() == util::StatusCode::kFailedPrecondition) {
            break;  // shutdown won the race
          }
          continue;  // queue momentarily full
        }
        accepted.push_back(id.value());
      }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(1 + round % 3));
    server.Shutdown();
    submitter.join();
    for (RequestId id : accepted) {
      auto result = server.Wait(id);  // must return, never hang
      ASSERT_TRUE(result.ok());
      EXPECT_NE(result.value().reason, FinishReason::kNone);
    }
    const ServerStats stats = server.Stats();
    EXPECT_EQ(stats.submitted, stats.completed + stats.cancelled +
                                   stats.expired + stats.failed);
    EXPECT_EQ(stats.free_slots, stats.total_slots);
  }
}

TEST_F(ServeResilienceTest, SubmitWithRetryGivesUpAfterMaxAttempts) {
  util::Rng rng(61);
  nn::GPTModel model(SmallConfig(), &rng);
  ServerOptions options;
  options.queue_capacity = 1;
  InferenceServer server(&model, options);  // not started: queue stays full
  ASSERT_TRUE(server.Submit(MakeRequest({1}, 1, 2)).ok());

  RetryOptions retry;
  retry.max_attempts = 3;
  retry.initial_backoff = std::chrono::milliseconds(1);
  retry.max_backoff = std::chrono::milliseconds(4);
  retry.jitter_seed = 9;
  auto rejected = server.SubmitWithRetry(MakeRequest({2}, 2, 2), retry);
  EXPECT_EQ(rejected.status().code(), util::StatusCode::kResourceExhausted);
  EXPECT_EQ(server.Stats().rejected, 3u);  // one per attempt
}

TEST_F(ServeResilienceTest, SubmitWithRetrySucceedsOnceCapacityFrees) {
  util::Rng rng(62);
  nn::GPTModel model(SmallConfig(), &rng);
  ServerOptions options;
  options.queue_capacity = 1;
  InferenceServer server(&model, options);
  auto blocker = server.Submit(MakeRequest({1}, 1, 2));
  ASSERT_TRUE(blocker.ok());

  // Capacity frees when the scheduler starts and drains the queue; the
  // retry loop must ride out the rejections until then.
  std::thread starter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    server.Start();
  });
  RetryOptions retry;
  retry.max_attempts = 10;
  retry.initial_backoff = std::chrono::milliseconds(4);
  retry.max_backoff = std::chrono::milliseconds(20);
  retry.jitter_seed = 17;
  auto id = server.SubmitWithRetry(MakeRequest({2}, 2, 2), retry);
  starter.join();
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  auto result = server.Wait(id.value());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().status.ok());
  ASSERT_TRUE(server.Wait(blocker.value()).ok());
  EXPECT_GT(server.Stats().rejected, 0u);
}

TEST_F(ServeResilienceTest, SubmitWithRetryHonorsRequestDeadline) {
  util::Rng rng(63);
  nn::GPTModel model(SmallConfig(), &rng);
  ServerOptions options;
  options.queue_capacity = 1;
  InferenceServer server(&model, options);  // not started: queue stays full
  ASSERT_TRUE(server.Submit(MakeRequest({1}, 1, 2)).ok());

  // The request carries a 5ms deadline, but the retry policy alone would
  // happily sleep for hundreds of ms (10 attempts, 20ms+ backoffs). The
  // loop must give up before the deadline instead of sleeping through it:
  // the first backoff (jittered into [10ms, 20ms)) already overshoots.
  GenerateRequest request = MakeRequest({2}, 2, 2);
  request.timeout = std::chrono::milliseconds(5);
  RetryOptions retry;
  retry.max_attempts = 10;
  retry.initial_backoff = std::chrono::milliseconds(20);
  retry.max_backoff = std::chrono::milliseconds(80);
  retry.jitter_seed = 21;
  const auto start = std::chrono::steady_clock::now();
  auto rejected = server.SubmitWithRetry(request, retry);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(rejected.status().code(), util::StatusCode::kResourceExhausted);
  // One admission attempt, then the would-overshoot backoff aborts the
  // loop: nowhere near the 10-attempt budget, and no deadline-long sleep.
  EXPECT_EQ(server.Stats().rejected, 1u);
  EXPECT_LT(elapsed, std::chrono::milliseconds(100));
}

TEST_F(ServeResilienceTest, PercentilesComputedOverPartiallyFilledWindow) {
  util::Rng rng(64);
  nn::GPTModel model(SmallConfig(), &rng);
  InferenceServer server(&model, ServerOptions{});
  server.Start();

  // One completion: a single sample far short of the 512-entry window.
  // Every percentile must equal that sample, not read zeroed slots.
  RequestResult first = server.GenerateBlocking(MakeRequest({1, 2}, 1, 3));
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  ServerStats stats = server.Stats();
  EXPECT_GT(stats.p50_latency_ms, 0.0);
  EXPECT_DOUBLE_EQ(stats.p50_latency_ms, stats.p95_latency_ms);
  EXPECT_DOUBLE_EQ(stats.p50_latency_ms, stats.p99_latency_ms);

  // A few more samples: still partial, percentiles stay ordered and real.
  for (uint64_t i = 2; i <= 5; ++i) {
    ASSERT_TRUE(server.GenerateBlocking(MakeRequest({1}, i, 2)).status.ok());
  }
  stats = server.Stats();
  EXPECT_GT(stats.p50_latency_ms, 0.0);
  EXPECT_LE(stats.p50_latency_ms, stats.p95_latency_ms);
  EXPECT_LE(stats.p95_latency_ms, stats.p99_latency_ms);
  server.Shutdown();
}

TEST_F(ServeResilienceTest, PollTransitionsAndForgetsFinishedRequests) {
  util::Rng rng(65);
  nn::GPTModel model(SmallConfig(), &rng);
  InferenceServer server(&model, ServerOptions{});
  auto id = server.Submit(MakeRequest({1, 2}, 1, 3));
  ASSERT_TRUE(id.ok());

  RequestResult out;
  // Queued but unserved (server not started): pending, not unknown.
  EXPECT_EQ(server.Poll(id.value(), &out),
            InferenceServer::PollOutcome::kPending);
  // An id never issued: unknown.
  EXPECT_EQ(server.Poll(id.value() + 999, &out),
            InferenceServer::PollOutcome::kUnknown);

  server.Start();
  while (server.Poll(id.value(), &out) !=
         InferenceServer::PollOutcome::kReady) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(out.status.ok()) << out.status.ToString();
  EXPECT_FALSE(out.tokens.empty());
  // kReady consumed the result: the id is forgotten for both Poll and Wait.
  EXPECT_EQ(server.Poll(id.value(), &out),
            InferenceServer::PollOutcome::kUnknown);
  EXPECT_EQ(server.Wait(id.value()).status().code(),
            util::StatusCode::kNotFound);
  server.Shutdown();
}

TEST_F(ServeResilienceTest, ApproxLoadTracksQueuedAndActiveWork) {
  util::Rng rng(66);
  nn::GPTModel model(SmallConfig(), &rng);
  ServerOptions options;
  options.queue_capacity = 8;
  InferenceServer server(&model, options);
  EXPECT_EQ(server.ApproxLoad(), 0);

  std::vector<RequestId> ids;
  for (uint64_t i = 1; i <= 3; ++i) {
    auto id = server.Submit(MakeRequest({1}, i, 2));
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  EXPECT_EQ(server.ApproxLoad(), 3);  // all queued, none active yet

  server.Start();
  for (RequestId id : ids) ASSERT_TRUE(server.Wait(id).ok());
  server.Drain(std::chrono::seconds(5));
  EXPECT_EQ(server.ApproxLoad(), 0);
  server.Shutdown();
}

// Bit-exactness across architecture variants: the serving path must agree
// with the single-stream reference for pre/post-LN, sinusoidal positions,
// attention-only stacks, tied embeddings, and windowed attention.
struct ServeVariant {
  bool pre_ln;
  bool learned_pos;
  bool attn_only;
  bool tied;
  int window;
};

class ServeVariants : public ::testing::TestWithParam<ServeVariant> {};

TEST_P(ServeVariants, ServerMatchesSingleStream) {
  const ServeVariant& v = GetParam();
  nn::GPTConfig cfg = SmallConfig();
  cfg.pre_layernorm = v.pre_ln;
  cfg.learned_positional = v.learned_pos;
  cfg.attention_only = v.attn_only;
  cfg.tie_embeddings = v.tied;
  cfg.attention_window = v.window;
  util::Rng rng(41);
  nn::GPTModel model(cfg, &rng);

  ServerOptions options;
  options.max_batch_size = 3;
  InferenceServer server(&model, options);
  server.Start();

  std::vector<GenerateRequest> requests;
  requests.push_back(MakeRequest({3, 1, 4, 1, 5}, 1, 7));
  requests.push_back(MakeRequest({2, 7}, 2, 9));
  requests.push_back(MakeRequest({0}, 3, 12));
  requests.push_back(MakeRequest({9, 8, 7, 6}, 4, 5));
  std::vector<RequestId> ids;
  for (const auto& request : requests) {
    auto id = server.Submit(request);
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  for (size_t i = 0; i < requests.size(); ++i) {
    auto result = server.Wait(ids[i]);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().tokens,
              SingleStreamReference(model, requests[i]))
        << "request " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, ServeVariants,
    ::testing::Values(ServeVariant{true, true, false, false, 0},
                      ServeVariant{false, true, false, false, 0},
                      ServeVariant{true, false, false, false, 0},
                      ServeVariant{true, true, true, false, 0},
                      ServeVariant{true, true, false, true, 0},
                      ServeVariant{false, false, true, true, 3}));

}  // namespace
}  // namespace llm::serve
