// Tests for temperature-scaling calibration.
#include <gtest/gtest.h>

#include <cmath>

#include "eval/metrics.h"
#include "eval/temperature_scaling.h"
#include "util/rng.h"

namespace llm::eval {
namespace {

/// Builds logits that are systematically overconfident: the "true" soft
/// assignment is softmax(z), but the emitted logits are z * kSharpen.
void MakeOverconfident(int64_t n, int64_t v, float sharpen,
                       core::Tensor* logits, std::vector<int64_t>* targets,
                       uint64_t seed) {
  util::Rng rng(seed);
  *logits = core::Tensor({n, v});
  targets->resize(static_cast<size_t>(n));
  for (int64_t r = 0; r < n; ++r) {
    std::vector<double> z(static_cast<size_t>(v));
    for (auto& x : z) x = rng.Normal();
    // Sample the target from softmax(z) — the calibrated distribution.
    double maxv = z[0];
    for (double x : z) maxv = std::max(maxv, x);
    std::vector<double> p(static_cast<size_t>(v));
    double sum = 0;
    for (int64_t c = 0; c < v; ++c) {
      p[static_cast<size_t>(c)] = std::exp(z[static_cast<size_t>(c)] - maxv);
      sum += p[static_cast<size_t>(c)];
    }
    for (auto& x : p) x /= sum;
    (*targets)[static_cast<size_t>(r)] =
        static_cast<int64_t>(rng.Categorical(p));
    for (int64_t c = 0; c < v; ++c) {
      (*logits)[r * v + c] =
          static_cast<float>(z[static_cast<size_t>(c)]) * sharpen;
    }
  }
}

TEST(TemperatureScalingTest, RecoversSharpeningFactor) {
  core::Tensor logits;
  std::vector<int64_t> targets;
  // Logits sharpened 3x: the optimal temperature is ~3.
  MakeOverconfident(3000, 6, 3.0f, &logits, &targets, 1);
  auto fit = FitTemperature(logits, targets);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->temperature, 3.0, 0.35);
  EXPECT_LT(fit->nll_after, fit->nll_before);
}

TEST(TemperatureScalingTest, CalibratedDataFitsNearOne) {
  core::Tensor logits;
  std::vector<int64_t> targets;
  MakeOverconfident(3000, 6, 1.0f, &logits, &targets, 2);
  auto fit = FitTemperature(logits, targets);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->temperature, 1.0, 0.15);
}

TEST(TemperatureScalingTest, ImprovesEceOnOverconfidentModel) {
  core::Tensor logits;
  std::vector<int64_t> targets;
  MakeOverconfident(4000, 6, 4.0f, &logits, &targets, 3);
  auto fit = FitTemperature(logits, targets);
  ASSERT_TRUE(fit.ok());
  // Rescale logits by the fitted temperature and compare ECE.
  core::Tensor scaled = logits;
  scaled.Scale(static_cast<float>(1.0 / fit->temperature));
  const double ece_before =
      ExpectedCalibrationError(CalibrationPoints(logits, targets));
  const double ece_after =
      ExpectedCalibrationError(CalibrationPoints(scaled, targets));
  EXPECT_LT(ece_after, ece_before * 0.5)
      << ece_before << " -> " << ece_after;
}

TEST(TemperatureScalingTest, PreservesArgmax) {
  core::Tensor logits;
  std::vector<int64_t> targets;
  MakeOverconfident(200, 5, 2.0f, &logits, &targets, 4);
  auto fit = FitTemperature(logits, targets);
  ASSERT_TRUE(fit.ok());
  // Scaling by a positive scalar never changes the argmax; accuracy is
  // untouched.
  core::Tensor scaled = logits;
  scaled.Scale(static_cast<float>(1.0 / fit->temperature));
  EXPECT_EQ(MaskedAccuracy(logits, targets),
            MaskedAccuracy(scaled, targets));
}

TEST(TemperatureScalingTest, NllMonotoneAwayFromOptimum) {
  core::Tensor logits;
  std::vector<int64_t> targets;
  MakeOverconfident(1000, 4, 2.0f, &logits, &targets, 5);
  const double at2 = NllAtTemperature(logits, targets, 2.0);
  EXPECT_LT(at2, NllAtTemperature(logits, targets, 0.5));
  EXPECT_LT(at2, NllAtTemperature(logits, targets, 10.0));
}

TEST(TemperatureScalingTest, RejectsBadInput) {
  core::Tensor logits({2, 3});
  EXPECT_FALSE(FitTemperature(logits, {-1, -1}).ok());
  EXPECT_FALSE(FitTemperature(logits, {0, 1}, -1, 2.0, 1.0).ok());
}

}  // namespace
}  // namespace llm::eval
