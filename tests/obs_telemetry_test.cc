// Tests for the gang telemetry plane (src/obs/telemetry): the
// RankTelemetry codec (round-trip, corruption rejection), capture
// filtering for shared-process workers, the coordinator-side
// TelemetryAggregator (merged counters/histograms, per-rank views, the
// deduped gang timeline), the crash-postmortem file format, and the
// IncidentReport renderings. Registered under the `obs` ctest label.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "util/status.h"

namespace llm::obs {
namespace {

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global().ResetAll();
    FlightRecorder::Global().Clear();
  }
};

FlightEvent MakeEvent(uint64_t ticket, int64_t ts_ns, FlightEventType type,
                      int32_t a, int64_t b, int64_t c) {
  FlightEvent ev;
  ev.ticket = ticket;
  ev.ts_ns = ts_ns;
  ev.type = type;
  ev.a = a;
  ev.b = b;
  ev.c = c;
  return ev;
}

RankTelemetry MakeUnit(int32_t rank, int64_t epoch, int64_t step) {
  RankTelemetry unit;
  unit.rank = rank;
  unit.epoch = epoch;
  unit.step = step;
  unit.reason = kTelemetryShipPeriodic;
  return unit;
}

std::string ScratchDir(const char* leaf) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("tfmr_telemetry_test_" + std::to_string(::getpid())) /
                   leaf;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

// --- Codec -----------------------------------------------------------------

TEST_F(TelemetryTest, CodecRoundTripsEveryField) {
  RankTelemetry unit = MakeUnit(/*rank=*/3, /*epoch=*/2, /*step=*/117);
  unit.reason = kTelemetryShipFinal;
  unit.metrics.counters["dist.worker.3.steps"] = 117;
  unit.metrics.counters["dist.worker.3.telemetry_bytes"] = 40961;
  unit.metrics.gauges["dist.worker.3.lr"] = 2.5e-4;
  Histogram h;
  h.Record(1.0);
  h.Record(8.0);
  h.Record(8.0);
  unit.metrics.histograms["dist.worker.3.step_ms"] = h.Snapshot();
  unit.events.push_back(MakeEvent(10, 1'000'000, FlightEventType::kWorkerJoin,
                                  3, 2, 0));
  unit.events.push_back(MakeEvent(11, 2'000'000,
                                  FlightEventType::kTelemetryShip, 3, 117,
                                  kTelemetryShipFinal));

  const std::vector<uint8_t> blob = EncodeRankTelemetry(unit);
  ASSERT_FALSE(blob.empty());
  auto decoded = DecodeRankTelemetry(blob);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const RankTelemetry& out = decoded.value();

  EXPECT_EQ(out.rank, 3);
  EXPECT_EQ(out.epoch, 2);
  EXPECT_EQ(out.step, 117);
  EXPECT_EQ(out.reason, kTelemetryShipFinal);
  EXPECT_EQ(out.metrics.counters, unit.metrics.counters);
  ASSERT_EQ(out.metrics.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(out.metrics.gauges.at("dist.worker.3.lr"), 2.5e-4);
  ASSERT_EQ(out.metrics.histograms.size(), 1u);
  const HistogramSnapshot& hs =
      out.metrics.histograms.at("dist.worker.3.step_ms");
  EXPECT_EQ(hs.count, 3u);
  EXPECT_DOUBLE_EQ(hs.sum, 17.0);
  EXPECT_DOUBLE_EQ(hs.max, 8.0);
  EXPECT_EQ(hs.buckets, unit.metrics.histograms.at("dist.worker.3.step_ms")
                            .buckets);
  ASSERT_EQ(out.events.size(), 2u);
  EXPECT_EQ(out.events[0].ticket, 10u);
  EXPECT_EQ(out.events[0].ts_ns, 1'000'000);
  EXPECT_EQ(out.events[0].type, FlightEventType::kWorkerJoin);
  EXPECT_EQ(out.events[1].ticket, 11u);
  EXPECT_EQ(out.events[1].a, 3);
  EXPECT_EQ(out.events[1].b, 117);
  EXPECT_EQ(out.events[1].c, kTelemetryShipFinal);
}

TEST_F(TelemetryTest, CodecRoundTripsEmptyUnit) {
  const RankTelemetry unit = MakeUnit(0, 0, 0);
  auto decoded = DecodeRankTelemetry(EncodeRankTelemetry(unit));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().metrics.counters.empty());
  EXPECT_TRUE(decoded.value().events.empty());
}

TEST_F(TelemetryTest, CodecRejectsCorruptionAnywhere) {
  RankTelemetry unit = MakeUnit(1, 0, 9);
  unit.metrics.counters["a.b"] = 7;
  unit.events.push_back(
      MakeEvent(0, 5, FlightEventType::kCheckpointSaved, 0, 9, 0));
  const std::vector<uint8_t> blob = EncodeRankTelemetry(unit);

  // Any single flipped byte must be caught by the trailing CRC (or the
  // magic/version check when the header is hit).
  for (size_t i = 0; i < blob.size(); i += 7) {
    std::vector<uint8_t> bad = blob;
    bad[i] ^= 0x5a;
    auto decoded = DecodeRankTelemetry(bad);
    EXPECT_FALSE(decoded.ok()) << "flipped byte " << i << " was accepted";
  }
}

TEST_F(TelemetryTest, CodecRejectsTruncationAndEmpty) {
  RankTelemetry unit = MakeUnit(1, 0, 9);
  unit.metrics.counters["a.b"] = 7;
  const std::vector<uint8_t> blob = EncodeRankTelemetry(unit);
  for (size_t keep : {size_t{0}, size_t{3}, blob.size() / 2,
                      blob.size() - 1}) {
    auto decoded = DecodeRankTelemetry(blob.data(), keep);
    EXPECT_FALSE(decoded.ok()) << "truncated to " << keep << " accepted";
  }
}

// --- Capture ---------------------------------------------------------------

TEST_F(TelemetryTest, CapturePrefixFilterSelectsOnlyOwnNamespace) {
  auto& reg = MetricsRegistry::Global();
  reg.GetCounter("dist.worker.0.steps")->Increment(4);
  reg.GetCounter("dist.worker.1.steps")->Increment(9);
  reg.GetCounter("serve.requests")->Increment(100);
  reg.GetGauge("dist.worker.1.lr")->Set(0.125);

  TelemetryCaptureOptions cap;
  cap.metric_prefix = "dist.worker.1.";
  cap.include_events = false;
  const RankTelemetry unit =
      CaptureRankTelemetry(1, 0, 9, kTelemetryShipPeriodic, cap);
  EXPECT_EQ(unit.rank, 1);
  EXPECT_EQ(unit.step, 9);
  ASSERT_EQ(unit.metrics.counters.size(), 1u);
  EXPECT_EQ(unit.metrics.counters.at("dist.worker.1.steps"), 9u);
  ASSERT_EQ(unit.metrics.gauges.size(), 1u);
  EXPECT_TRUE(unit.events.empty());
}

TEST_F(TelemetryTest, CaptureEventsFromTicketShipsOnlyTheDelta) {
  auto& rec = FlightRecorder::Global();
  rec.Record(FlightEventType::kWorkerJoin, 0, 0, 0);      // ticket 0
  rec.Record(FlightEventType::kCheckpointSaved, 0, 5, 0);  // ticket 1
  rec.Record(FlightEventType::kTelemetryShip, 0, 5, 0);    // ticket 2

  TelemetryCaptureOptions cap;
  cap.include_events = true;
  cap.events_from_ticket = 1;
  const RankTelemetry unit =
      CaptureRankTelemetry(0, 0, 5, kTelemetryShipPeriodic, cap);
  ASSERT_EQ(unit.events.size(), 2u);
  EXPECT_EQ(unit.events[0].ticket, 1u);
  EXPECT_EQ(unit.events[1].ticket, 2u);
}

// --- Aggregator ------------------------------------------------------------

TEST_F(TelemetryTest, MergedCounterSumsNewestPerRank) {
  TelemetryAggregator agg;
  RankTelemetry r0 = MakeUnit(0, 0, 10);
  r0.metrics.counters["steps"] = 10;
  RankTelemetry r1 = MakeUnit(1, 0, 12);
  r1.metrics.counters["steps"] = 12;
  agg.Ingest(r0, 100);
  agg.Ingest(r1, 120);
  EXPECT_EQ(agg.MergedCounter("steps"), 22u);

  // Counters are cumulative: a newer unit replaces, never adds.
  RankTelemetry r0b = MakeUnit(0, 0, 20);
  r0b.metrics.counters["steps"] = 20;
  agg.Ingest(r0b, 100);
  EXPECT_EQ(agg.MergedCounter("steps"), 32u);
  EXPECT_EQ(agg.MergedCounter("no.such.counter"), 0u);
}

TEST_F(TelemetryTest, MergedHistogramFoldsBucketsAcrossRanks) {
  TelemetryAggregator agg;
  Histogram h0;
  h0.Record(2.0);
  h0.Record(2.0);
  Histogram h1;
  h1.Record(64.0);
  RankTelemetry r0 = MakeUnit(0, 0, 1);
  r0.metrics.histograms["step_ms"] = h0.Snapshot();
  RankTelemetry r1 = MakeUnit(1, 0, 1);
  r1.metrics.histograms["step_ms"] = h1.Snapshot();
  agg.Ingest(r0);
  agg.Ingest(r1);
  const HistogramSnapshot merged = agg.MergedHistogram("step_ms");
  EXPECT_EQ(merged.count, 3u);
  EXPECT_DOUBLE_EQ(merged.sum, 68.0);
  EXPECT_DOUBLE_EQ(merged.max, 64.0);
}

TEST_F(TelemetryTest, PerRankViewsAndAccounting) {
  TelemetryAggregator agg;
  EXPECT_FALSE(agg.HasRank(0));
  EXPECT_EQ(agg.RankStep(0), -1);

  RankTelemetry r0 = MakeUnit(0, 1, 33);
  r0.metrics.counters["dist.worker.0.comm_wait_ns"] = 4'000'000;
  r0.metrics.gauges["dist.worker.0.lr"] = 0.5;
  agg.Ingest(r0, 256);
  agg.Ingest(r0, 256);

  EXPECT_TRUE(agg.HasRank(0));
  EXPECT_FALSE(agg.HasRank(1));
  EXPECT_EQ(agg.RankStep(0), 33);
  EXPECT_EQ(agg.RankCounter(0, "dist.worker.0.comm_wait_ns"), 4'000'000u);
  EXPECT_EQ(agg.RankCounter(1, "dist.worker.0.comm_wait_ns"), 0u);
  EXPECT_DOUBLE_EQ(agg.RankGauge(0, "dist.worker.0.lr"), 0.5);
  EXPECT_EQ(agg.IngestedBytes(0), 512u);
  EXPECT_EQ(agg.IngestCount(0), 2);
  EXPECT_EQ(agg.IngestCount(1), 0);

  agg.Reset();
  EXPECT_FALSE(agg.HasRank(0));
  EXPECT_EQ(agg.IngestCount(0), 0);
}

TEST_F(TelemetryTest, TimelineOrdersByTimestampAndDedupes) {
  TelemetryAggregator agg;
  RankTelemetry r1 = MakeUnit(1, 0, 5);
  r1.events.push_back(
      MakeEvent(0, 300, FlightEventType::kTelemetryShip, 1, 5, 0));
  r1.events.push_back(
      MakeEvent(1, 500, FlightEventType::kPostmortemDump, 1, 5, 9));
  RankTelemetry r0 = MakeUnit(0, 0, 6);
  r0.events.push_back(
      MakeEvent(0, 400, FlightEventType::kCheckpointSaved, 0, 6, 0));
  agg.Ingest(r1);
  agg.Ingest(r0);
  // Coordinator detection lands after everything above.
  agg.IngestCoordinatorEvents(
      0, {MakeEvent(7, 600, FlightEventType::kWorkerDeath, 1, 5, 0)});

  std::vector<GangEvent> timeline = agg.Timeline();
  ASSERT_EQ(timeline.size(), 4u);
  EXPECT_EQ(timeline[0].event.ts_ns, 300);
  EXPECT_EQ(timeline[0].rank, 1);
  EXPECT_EQ(timeline[1].event.ts_ns, 400);
  EXPECT_EQ(timeline[1].rank, 0);
  EXPECT_EQ(timeline[2].event.ts_ns, 500);
  EXPECT_EQ(timeline[3].rank, kCoordinatorRank);
  EXPECT_EQ(timeline[3].event.type, FlightEventType::kWorkerDeath);

  // A postmortem that re-ships already-shipped events is harmless: the
  // (epoch, rank, ticket) key dedupes them.
  agg.Ingest(r1);
  EXPECT_EQ(agg.Timeline().size(), 4u);
  // Same ticket from a *new epoch* is a genuinely new event (respawned
  // rank's ring restarts at ticket 0).
  RankTelemetry respawned = MakeUnit(1, 1, 0);
  respawned.events.push_back(
      MakeEvent(0, 700, FlightEventType::kWorkerJoin, 1, 1, 0));
  agg.Ingest(respawned);
  EXPECT_EQ(agg.Timeline().size(), 5u);

  // max_events keeps the newest tail.
  std::vector<GangEvent> tail = agg.Timeline(2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].event.ts_ns, 600);
  EXPECT_EQ(tail[1].event.ts_ns, 700);
}

TEST_F(TelemetryTest, FormatGangTimelineNamesRanksAndEvents) {
  std::vector<GangEvent> events;
  GangEvent dead;
  dead.rank = 1;
  dead.epoch = 0;
  dead.event = MakeEvent(4, 100, FlightEventType::kPostmortemDump, 1, 7, 9);
  GangEvent coord;
  coord.rank = kCoordinatorRank;
  coord.epoch = 0;
  coord.event = MakeEvent(9, 200, FlightEventType::kWorkerDeath, 1, 7, 0);
  events.push_back(dead);
  events.push_back(coord);

  const std::string text = FormatGangTimeline(events);
  EXPECT_NE(text.find("rank 1"), std::string::npos) << text;
  EXPECT_NE(text.find("coord"), std::string::npos) << text;
  EXPECT_NE(text.find(FlightEventTypeName(FlightEventType::kPostmortemDump)),
            std::string::npos)
      << text;
  EXPECT_NE(text.find(FlightEventTypeName(FlightEventType::kWorkerDeath)),
            std::string::npos)
      << text;
  EXPECT_TRUE(FormatGangTimeline({}).empty() ||
              FormatGangTimeline({}).find("rank") == std::string::npos);
}

// --- Postmortems -----------------------------------------------------------

TEST_F(TelemetryTest, PostmortemPathFormat) {
  EXPECT_EQ(PostmortemPath("/tmp/ckpt", 2), "/tmp/ckpt/postmortem_rank2.tfmr");
}

TEST_F(TelemetryTest, PostmortemRoundTripsThroughDisk) {
  const std::string dir = ScratchDir("roundtrip");
  const std::string path = PostmortemPath(dir, 1);

  RankTelemetry unit = MakeUnit(1, 2, 57);
  unit.reason = kTelemetryShipPostmortem;
  unit.metrics.counters["dist.worker.1.steps"] = 57;
  unit.events.push_back(
      MakeEvent(12, 900, FlightEventType::kPostmortemDump, 1, 57, 9));

  ASSERT_TRUE(WritePostmortem(path, unit).ok());
  // The tmp file must not linger after the rename.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  auto read = ReadPostmortem(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value().rank, 1);
  EXPECT_EQ(read.value().step, 57);
  EXPECT_EQ(read.value().reason, kTelemetryShipPostmortem);
  ASSERT_EQ(read.value().events.size(), 1u);
  EXPECT_EQ(read.value().events[0].type, FlightEventType::kPostmortemDump);

  std::filesystem::remove_all(dir);
}

TEST_F(TelemetryTest, PostmortemReadReportsAbsentAndCorrupt) {
  const std::string dir = ScratchDir("corrupt");
  EXPECT_EQ(ReadPostmortem(PostmortemPath(dir, 0)).status().code(),
            util::StatusCode::kNotFound);

  // A torn last gasp: valid bytes, truncated mid-body.
  RankTelemetry unit = MakeUnit(0, 0, 3);
  unit.metrics.counters["x"] = 1;
  const std::vector<uint8_t> blob = EncodeRankTelemetry(unit);
  const std::string torn = PostmortemPath(dir, 0);
  {
    std::ofstream out(torn, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(blob.data()),
              static_cast<std::streamsize>(blob.size() / 2));
  }
  EXPECT_EQ(ReadPostmortem(torn).status().code(),
            util::StatusCode::kInternal);

  // Garbage under the final name.
  const std::string garbage = PostmortemPath(dir, 1);
  {
    std::ofstream out(garbage, std::ios::binary | std::ios::trunc);
    out << "not a postmortem";
  }
  EXPECT_EQ(ReadPostmortem(garbage).status().code(),
            util::StatusCode::kInternal);

  std::filesystem::remove_all(dir);
}

// --- Incident reports ------------------------------------------------------

IncidentReport MakeReport() {
  IncidentReport report;
  report.epoch = 1;
  report.rank = 1;
  report.kind = "worker-death";
  report.detail = "killed by signal 9 (proc exit)";
  report.action = "respawn gang from checkpoint_00000050";
  report.step = 50;
  report.term_signal = 9;
  report.postmortem_harvested = true;
  report.recovery = 1;
  GangEvent ev;
  ev.rank = 1;
  ev.epoch = 1;
  ev.event = MakeEvent(3, 100, FlightEventType::kPostmortemDump, 1, 50, 9);
  report.timeline.push_back(ev);
  return report;
}

TEST_F(TelemetryTest, IncidentReportJsonHasStableMachineReadableKeys) {
  const std::string json = MakeReport().ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  for (const char* key :
       {"\"epoch\":", "\"rank\":", "\"kind\":", "\"detail\":", "\"action\":",
        "\"step\":", "\"exit_code\":", "\"term_signal\":",
        "\"postmortem\":true", "\"recovery\":", "\"timeline\":["}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing: " << json;
  }
  EXPECT_NE(json.find("\"worker-death\""), std::string::npos);
  EXPECT_NE(json.find("\"term_signal\":9"), std::string::npos);
  // detail contains characters that need escaping in no case here, but the
  // JSON must never contain a raw newline.
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST_F(TelemetryTest, IncidentReportFormatReadsLikeAPostmortem) {
  const std::string text = MakeReport().Format();
  EXPECT_NE(text.find("worker-death"), std::string::npos) << text;
  EXPECT_NE(text.find("killed by signal 9"), std::string::npos) << text;
  EXPECT_NE(text.find("respawn gang"), std::string::npos) << text;
  EXPECT_NE(text.find(FlightEventTypeName(FlightEventType::kPostmortemDump)),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("rank 1"), std::string::npos) << text;
}

}  // namespace
}  // namespace llm::obs
