// Socket-backed collective transport suite: the wire protocol, the
// SocketServer/SocketComm pair, epoch fencing, reconnect-through-cache
// convergence, the dead-transport blind-spot detector, thread-vs-socket
// bit-exactness of full DistTrainer runs, and real multi-process gangs
// (ProcGroupCoordinator + the dist_worker binary) surviving real SIGKILLs
// bit-exactly.
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <csignal>

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "train/checkpoint.h"
#include "train/dist/dist_trainer.h"
#include "train/dist/proc_group.h"
#include "train/dist/socket_transport.h"
#include "train/dist/toy_task.h"
#include "train/dist/wire.h"
#include "util/fault.h"

namespace llm::train::dist {
namespace {

namespace fs = std::filesystem;
using std::chrono::milliseconds;
using util::FaultInjector;
using util::FaultSite;
using util::StatusCode;

class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_((fs::temp_directory_path() / name).string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

SteadyClock::time_point In(int ms) {
  return SteadyClock::now() + milliseconds(ms);
}

float MaxParamDiff(const nn::Module& a, const nn::Module& b) {
  auto pa = a.NamedParameters();
  auto pb = b.NamedParameters();
  EXPECT_EQ(pa.size(), pb.size());
  float worst = 0.0f;
  for (size_t i = 0; i < pa.size(); ++i) {
    worst = std::max(worst, core::Tensor::MaxAbsDiff(pa[i].second.value(),
                                                     pb[i].second.value()));
  }
  return worst;
}

// ---------------------------------------------------------------------------
// Wire protocol.
// ---------------------------------------------------------------------------

class WirePair : public ::testing::Test {
 protected:
  void SetUp() override {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a_ = fds[0];
    b_ = fds[1];
    for (int fd : {a_, b_}) {
      ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
    }
  }
  void TearDown() override {
    if (a_ >= 0) ::close(a_);
    if (b_ >= 0) ::close(b_);
    FaultInjector::Global().Disarm();
  }
  int a_ = -1, b_ = -1;
};

TEST_F(WirePair, FrameRoundtripPreservesEveryField) {
  Frame out;
  out.type = FrameType::kContribution;
  out.rank = 3;
  out.status = 0;
  out.epoch = 7;
  out.seq = 42;
  out.payload = EncodeFloats({1.5f, -2.25f, 0.0f, 3e-7f});
  ASSERT_TRUE(SendFrame(a_, out, In(500)).ok());

  auto in = ReadFrame(b_, In(500));
  ASSERT_TRUE(in.ok()) << in.status();
  EXPECT_EQ(in.value().type, FrameType::kContribution);
  EXPECT_EQ(in.value().rank, 3);
  EXPECT_EQ(in.value().epoch, 7);
  EXPECT_EQ(in.value().seq, 42);
  EXPECT_TRUE(in.value().payload_ok);
  EXPECT_EQ(DecodeFloats(in.value().payload),
            (std::vector<float>{1.5f, -2.25f, 0.0f, 3e-7f}));
}

TEST_F(WirePair, ZeroLengthPayloadRoundtrips) {
  Frame out;
  out.type = FrameType::kHeartbeat;
  out.rank = 0;
  ASSERT_TRUE(SendFrame(a_, out, In(500)).ok());
  auto in = ReadFrame(b_, In(500));
  ASSERT_TRUE(in.ok()) << in.status();
  EXPECT_TRUE(in.value().payload.empty());
  EXPECT_TRUE(in.value().payload_ok);
}

TEST_F(WirePair, GarbageStreamIsRejectedAsInternal) {
  const char junk[kFrameHeaderBytes] = "this is not a TFMW frame at all";
  ASSERT_EQ(::send(a_, junk, sizeof(junk), 0),
            static_cast<ssize_t>(sizeof(junk)));
  auto in = ReadFrame(b_, In(500));
  ASSERT_FALSE(in.ok());
  EXPECT_EQ(in.status().code(), StatusCode::kInternal);
}

TEST_F(WirePair, CorruptedPayloadComesBackFlaggedNotFatal) {
  FaultInjector::Global().ArmAt(FaultSite::kSockCorruptFrame, {0});
  Frame out;
  out.type = FrameType::kContribution;
  out.rank = 1;
  out.seq = 5;
  out.payload = EncodeFloats({1.0f, 2.0f, 3.0f});
  ASSERT_TRUE(SendFrame(a_, out, In(500)).ok());

  auto in = ReadFrame(b_, In(500));
  ASSERT_TRUE(in.ok()) << in.status();  // framing intact: not an error
  EXPECT_FALSE(in.value().payload_ok);  // ...but the payload is poisoned
  EXPECT_EQ(in.value().seq, 5);

  // The connection itself stays usable for the next, clean frame.
  Frame clean;
  clean.type = FrameType::kHeartbeat;
  clean.rank = 1;
  ASSERT_TRUE(SendFrame(a_, clean, In(500)).ok());
  auto next = ReadFrame(b_, In(500));
  ASSERT_TRUE(next.ok());
  EXPECT_TRUE(next.value().payload_ok);
}

TEST_F(WirePair, DroppedFrameReportsOkButWritesNothing) {
  FaultInjector::Global().ArmAt(FaultSite::kSockDrop, {0});
  Frame out;
  out.type = FrameType::kHeartbeat;
  out.rank = 0;
  ASSERT_TRUE(SendFrame(a_, out, In(100)).ok());  // "sent", per the sender
  auto in = ReadFrame(b_, In(100));
  ASSERT_FALSE(in.ok());
  EXPECT_EQ(in.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(WirePair, DisconnectFaultClosesTheConnection) {
  FaultInjector::Global().ArmAt(FaultSite::kSockDisconnect, {0});
  Frame out;
  out.type = FrameType::kHeartbeat;
  out.rank = 0;
  EXPECT_EQ(SendFrame(a_, out, In(200)).code(), StatusCode::kIOError);
  auto in = ReadFrame(b_, In(200));
  ASSERT_FALSE(in.ok());
  EXPECT_EQ(in.status().code(), StatusCode::kIOError);  // EOF, not timeout
}

TEST(WireCodec, GatherRoundtripAndValidation) {
  const std::vector<std::vector<float>> bufs = {
      {1.0f, 2.0f}, {}, {3.5f, -4.5f, 5.5f}};
  auto decoded = DecodeGather(EncodeGather(bufs));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), bufs);

  std::vector<uint8_t> bytes = EncodeGather(bufs);
  bytes.pop_back();  // truncated stream must be rejected, not mis-split
  EXPECT_FALSE(DecodeGather(bytes).ok());
  EXPECT_FALSE(DecodeGather({0x01}).ok());
}

TEST(WireBackoff, CappedExponentialWithDeterministicJitter) {
  const milliseconds initial(5), cap(200);
  // jitter=1.0 keeps the full delay: 5, 10, 20, ... capped at 200.
  EXPECT_EQ(BackoffDelay(0, initial, cap, 1.0).count(), 5);
  EXPECT_EQ(BackoffDelay(1, initial, cap, 1.0).count(), 10);
  EXPECT_EQ(BackoffDelay(3, initial, cap, 1.0).count(), 40);
  EXPECT_EQ(BackoffDelay(20, initial, cap, 1.0).count(), 200);
  // jitter draws scale into [0.5, 1.0)x, never above the cap.
  for (double j : {0.0, 0.25, 0.99}) {
    for (int attempt : {0, 2, 8, 30}) {
      const auto d = BackoffDelay(attempt, initial, cap, j);
      EXPECT_GE(d.count(), 2);
      EXPECT_LE(d.count(), 200);
    }
  }
  // Same inputs, same delay: reconnect schedules are replayable.
  EXPECT_EQ(BackoffDelay(4, initial, cap, 0.7),
            BackoffDelay(4, initial, cap, 0.7));
}

// ---------------------------------------------------------------------------
// SocketServer + SocketComm collectives.
// ---------------------------------------------------------------------------

class SocketCollectivesTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().Disarm(); }

  // Runs `fn(rank, comm)` on `world` client threads against a fresh
  // server; returns after all clients finish.
  void RunWorld(int world, const std::string& dir,
                const std::function<void(int, SocketComm&)>& fn,
                int64_t epoch = 0) {
    SocketServer server(world, dir + "/comm.sock");
    ASSERT_TRUE(server.Start().ok());
    server.Reset(epoch);
    std::vector<std::thread> ranks;
    for (int r = 0; r < world; ++r) {
      ranks.emplace_back([&, r] {
        SocketComm comm(r, world, server.bound_address(), epoch);
        fn(r, comm);
      });
    }
    for (auto& t : ranks) t.join();
    server.Stop();
  }
};

TEST_F(SocketCollectivesTest, ExchangeMatchesCommHubBitExactly) {
  ScratchDir dir("tfmr_sock_exchange");
  constexpr int kWorld = 3;

  // Reference: the same contributions through the in-process hub.
  CommHub hub(kWorld);
  std::vector<std::vector<std::vector<float>>> hub_results(kWorld);
  {
    std::vector<std::thread> ranks;
    for (int r = 0; r < kWorld; ++r) {
      ranks.emplace_back([&, r] {
        auto got = hub.Exchange(r, 0, {static_cast<float>(r) * 1.25f,
                                       -static_cast<float>(r)},
                                milliseconds(2000));
        ASSERT_TRUE(got.ok());
        hub_results[r] = std::move(got).value();
      });
    }
    for (auto& t : ranks) t.join();
  }

  std::vector<std::vector<std::vector<float>>> sock_results(kWorld);
  RunWorld(kWorld, dir.path(), [&](int r, SocketComm& comm) {
    auto got = comm.Exchange(r, 0, {static_cast<float>(r) * 1.25f,
                                    -static_cast<float>(r)},
                             milliseconds(2000));
    ASSERT_TRUE(got.ok()) << got.status();
    sock_results[r] = std::move(got).value();
    // Mean reduction and barrier ride the same Exchange machinery.
    std::vector<float> v = {1.0f + r, 2.0f * r};
    ASSERT_TRUE(comm.AllReduceMean(r, 1, &v, milliseconds(2000)).ok());
    EXPECT_EQ(v[0], (1.0f + 2.0f + 3.0f) / 3.0f);
    ASSERT_TRUE(comm.Barrier(r, 2, milliseconds(2000)).ok());
    comm.Finish(r);
  });
  for (int r = 0; r < kWorld; ++r) {
    EXPECT_EQ(sock_results[r], hub_results[r]) << "rank " << r;
  }
}

TEST_F(SocketCollectivesTest, ZeroLengthExchangeCompletes) {
  ScratchDir dir("tfmr_sock_zero");
  RunWorld(2, dir.path(), [&](int r, SocketComm& comm) {
    auto got = comm.Exchange(r, 0, {}, milliseconds(2000));
    ASSERT_TRUE(got.ok()) << got.status();
    ASSERT_EQ(got.value().size(), 2u);
    EXPECT_TRUE(got.value()[0].empty());
    EXPECT_TRUE(got.value()[1].empty());
  });
}

TEST_F(SocketCollectivesTest, StaleEpochClientIsFencedPromptly) {
  ScratchDir dir("tfmr_sock_fence");
  SocketServer server(2, dir.path() + "/comm.sock");
  ASSERT_TRUE(server.Start().ok());
  server.Reset(/*epoch=*/5);

  SocketComm stale(0, 2, server.bound_address(), /*epoch=*/3);
  const auto t0 = SteadyClock::now();
  auto got = stale.Exchange(0, 0, {1.0f}, milliseconds(10000));
  const auto elapsed = SteadyClock::now() - t0;
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kCancelled);
  // Fencing is a prompt verdict, not a timeout.
  EXPECT_LT(elapsed, milliseconds(2000));
  server.Stop();
}

TEST_F(SocketCollectivesTest, ReconnectingClientConvergesThroughTheCache) {
  ScratchDir dir("tfmr_sock_reconnect");
  SocketServer server(1, dir.path() + "/comm.sock");
  ASSERT_TRUE(server.Start().ok());
  server.Reset(0);
  SocketComm comm(0, 1, server.bound_address(), 0);
  ASSERT_TRUE(comm.Exchange(0, 0, {1.0f}, milliseconds(2000)).ok());
  EXPECT_EQ(comm.connect_count(), 1);

  // The next contribution send hits a connection that dies mid-flight;
  // the client must reconnect, re-send, and still get the round's result.
  FaultInjector::Global().ArmAt(FaultSite::kSockDisconnect, {0});
  auto got = comm.Exchange(0, 1, {2.0f}, milliseconds(2000));
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got.value()[0], std::vector<float>{2.0f});
  EXPECT_GE(comm.connect_count(), 2);
  comm.Finish(0);
  server.Stop();
}

TEST_F(SocketCollectivesTest, PoisonedRoundFailsFastForEveryParticipant) {
  ScratchDir dir("tfmr_sock_poison");
  // Rank 1 never contributes to round 0. Rank 0's short wait expires and
  // poisons the round; rank 1's later join on the poisoned round gets a
  // prompt kCancelled, never its own full timeout.
  SocketServer server(2, dir.path() + "/comm.sock");
  ASSERT_TRUE(server.Start().ok());
  server.Reset(0);
  util::Status r0, r1;
  std::chrono::milliseconds r1_elapsed{0};
  std::thread t0([&] {
    SocketComm comm(0, 2, server.bound_address(), 0);
    r0 = comm.Exchange(0, 0, {1.0f}, milliseconds(200)).status();
  });
  std::thread t1([&] {
    SocketComm comm(1, 2, server.bound_address(), 0);
    std::this_thread::sleep_for(milliseconds(600));  // after the poisoning
    const auto t = SteadyClock::now();
    r1 = comm.Exchange(1, 0, {2.0f}, milliseconds(10000)).status();
    r1_elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        SteadyClock::now() - t);
  });
  t0.join();
  t1.join();
  EXPECT_EQ(r0.code(), StatusCode::kDeadlineExceeded) << r0;
  EXPECT_EQ(r1.code(), StatusCode::kCancelled) << r1;
  EXPECT_LT(r1_elapsed.count(), 5000);
  server.Stop();
}

// Regression for the heartbeat monitor blind spot: a rank whose transport
// connection dies dirtily (process gone, cable pulled) is reported by
// RanksDisconnectedOver within the grace period — the monitor no longer
// has to wait out a heartbeat flatline or a full collective timeout.
TEST_F(SocketCollectivesTest, DirtyDisconnectIsVisibleWithinTheGrace) {
  ScratchDir dir("tfmr_sock_blindspot");
  SocketServer server(2, dir.path() + "/comm.sock");
  ASSERT_TRUE(server.Start().ok());
  server.Reset(0);

  // Both ranks join one real collective; then rank 0 finishes cleanly and
  // rank 1 drops off the wire without a goodbye.
  std::thread finisher([&] {
    SocketComm comm(0, 2, server.bound_address(), 0);
    ASSERT_TRUE(comm.Exchange(0, 0, {1.0f}, milliseconds(2000)).ok());
    comm.Finish(0);
  });
  {
    SocketComm victim(1, 2, server.bound_address(), 0);
    ASSERT_TRUE(victim.Exchange(1, 0, {2.0f}, milliseconds(2000)).ok());
  }  // destructor closes the socket; no goodbye was sent
  finisher.join();
  const auto t0 = SteadyClock::now();

  // Within ~grace the server names exactly the dirty rank.
  std::vector<int> down;
  while (SteadyClock::now() - t0 < milliseconds(3000)) {
    down = server.RanksDisconnectedOver(milliseconds(50));
    if (!down.empty()) break;
    std::this_thread::sleep_for(milliseconds(5));
  }
  const auto detect = std::chrono::duration_cast<std::chrono::milliseconds>(
      SteadyClock::now() - t0);
  ASSERT_EQ(down.size(), 1u);
  EXPECT_EQ(down[0], 1);
  EXPECT_TRUE(server.Finished(0));
  // Detection latency is grace-bounded — far below any collective or
  // heartbeat timeout.
  EXPECT_LT(detect.count(), 1000) << "blind-spot detection too slow";
  server.Stop();
}

// ---------------------------------------------------------------------------
// Full DistTrainer runs: thread vs socket transport, bit for bit.
// ---------------------------------------------------------------------------

DistTrainerOptions ToyTrainerOptions(int world, const std::string& dir) {
  DistTrainerOptions o;
  o.world_size = world;
  o.max_steps = 12;
  o.adamw = ToyAdamWOptions();
  o.checkpoint_dir = dir;
  o.checkpoint_every = 4;
  o.collective_timeout = milliseconds(4000);
  o.heartbeat_timeout = milliseconds(20000);
  return o;
}

TEST(DistSocketTrainerTest, SocketTransportIsBitExactWithThreads) {
  for (int world : {2, 4}) {
    SCOPED_TRACE("world " + std::to_string(world));
    ScratchDir tdir("tfmr_sock_thread_w" + std::to_string(world));
    ScratchDir sdir("tfmr_sock_socket_w" + std::to_string(world));

    DistTrainer threads(ToyTrainerOptions(world, tdir.path()),
                        ToyModelFactory(), ToyDistLoss());
    ASSERT_TRUE(threads.Run().ok());

    DistTrainerOptions sopt = ToyTrainerOptions(world, sdir.path());
    sopt.transport = CommTransport::kSocket;
    DistTrainer sockets(sopt, ToyModelFactory(), ToyDistLoss());
    util::Status s = sockets.Run();
    ASSERT_TRUE(s.ok()) << s << "\n" << sockets.FormatIncidents();

    EXPECT_EQ(MaxParamDiff(*threads.model(0), *sockets.model(0)), 0.0f);
    EXPECT_EQ(MaxParamDiff(*sockets.model(0), *sockets.model(world - 1)),
              0.0f);
    ASSERT_EQ(threads.history().size(), sockets.history().size());
    for (size_t i = 0; i < threads.history().size(); ++i) {
      EXPECT_EQ(threads.history()[i].loss, sockets.history()[i].loss)
          << "step " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Telemetry plane over the socket transport.
// ---------------------------------------------------------------------------

TEST(DistSocketTelemetryTest, AggregatorHoldsEveryRanksShippedMetrics) {
  obs::MetricsRegistry::Global().ResetAll();
  ScratchDir dir("tfmr_sock_telemetry");
  constexpr int kWorld = 2;
  DistTrainerOptions o = ToyTrainerOptions(kWorld, dir.path());
  o.transport = CommTransport::kSocket;
  o.telemetry_every = 2;
  DistTrainer dist(o, ToyModelFactory(), ToyDistLoss());
  util::Status s = dist.Run();
  ASSERT_TRUE(s.ok()) << s << "\n" << dist.FormatIncidents();

  const obs::TelemetryAggregator& agg = dist.telemetry();
  for (int r = 0; r < kWorld; ++r) {
    SCOPED_TRACE("rank " + std::to_string(r));
    const std::string prefix = "dist.worker." + std::to_string(r) + ".";
    ASSERT_TRUE(agg.HasRank(r));
    // The final ship is stamped with the last step reached.
    EXPECT_EQ(agg.RankStep(r), o.max_steps);
    // 12 steps / every 2 = 6 periodic ships + 1 final.
    EXPECT_EQ(agg.RankCounter(r, prefix + "telemetry_ships"), 7u);
    EXPECT_GT(agg.RankCounter(r, prefix + "comm_wait_ns"), 0u);
    EXPECT_GT(agg.IngestCount(r), 0);
    EXPECT_GT(agg.IngestedBytes(r), 0u);
  }
  // Shared-process workers ship only their own namespace: rank 1's unit
  // must never carry rank 0's counters.
  EXPECT_EQ(agg.RankCounter(1, "dist.worker.0.telemetry_ships"), 0u);
}

TEST(DistSocketTelemetryTest, ShippingIsBitExactAndCheap) {
  obs::MetricsRegistry::Global().ResetAll();
  ScratchDir qdir("tfmr_sock_tel_quiet");
  ScratchDir vdir("tfmr_sock_tel_verbose");
  constexpr int kWorld = 2;

  DistTrainerOptions quiet = ToyTrainerOptions(kWorld, qdir.path());
  quiet.transport = CommTransport::kSocket;
  quiet.telemetry_every = 0;  // plane off
  DistTrainer off(quiet, ToyModelFactory(), ToyDistLoss());
  ASSERT_TRUE(off.Run().ok());

  DistTrainerOptions verbose = ToyTrainerOptions(kWorld, vdir.path());
  verbose.transport = CommTransport::kSocket;
  verbose.telemetry_every = 1;  // ship every step
  DistTrainer on(verbose, ToyModelFactory(), ToyDistLoss());
  const auto t0 = SteadyClock::now();
  ASSERT_TRUE(on.Run().ok());
  const double run_ms = std::chrono::duration_cast<milliseconds>(
                            SteadyClock::now() - t0)
                            .count();

  // Telemetry is observation, not participation: weights and the loss
  // history must be bit-identical with the plane on or off.
  EXPECT_EQ(MaxParamDiff(*off.model(0), *on.model(0)), 0.0f);
  ASSERT_EQ(off.history().size(), on.history().size());
  for (size_t i = 0; i < off.history().size(); ++i) {
    EXPECT_EQ(off.history()[i].loss, on.history()[i].loss) << "step " << i;
  }

  // Shipping overhead: time the capture+encode path itself (what a step
  // pays, at most once per step) against the measured mean step time.
  obs::TelemetryCaptureOptions cap;
  cap.metric_prefix = "dist.worker.0.";
  cap.include_events = false;
  constexpr int kReps = 200;
  const auto c0 = SteadyClock::now();
  size_t bytes = 0;
  for (int i = 0; i < kReps; ++i) {
    bytes += obs::EncodeRankTelemetry(obs::CaptureRankTelemetry(
                                          0, 0, i, obs::kTelemetryShipPeriodic,
                                          cap))
                 .size();
  }
  const double ship_us =
      std::chrono::duration_cast<std::chrono::microseconds>(SteadyClock::now() -
                                                            c0)
          .count() /
      static_cast<double>(kReps);
  const double step_ms =
      run_ms / static_cast<double>(verbose.max_steps);
  std::printf("telemetry ship: %.1f us/unit (%zu B), step: %.2f ms "
              "-> overhead %.3f%%\n",
              ship_us, bytes / kReps, step_ms,
              100.0 * (ship_us / 1000.0) / step_ms);
  EXPECT_LT(ship_us / 1000.0, 0.02 * step_ms)
      << "telemetry capture+encode costs more than 2% of a step";
}

// ---------------------------------------------------------------------------
// Real processes: ProcGroupCoordinator + the dist_worker binary.
// ---------------------------------------------------------------------------

#ifdef DIST_WORKER_BIN

ProcGroupOptions ToyProcOptions(const std::string& dir) {
  ProcGroupOptions o;
  o.world_size = 2;
  o.max_steps = 24;
  o.checkpoint_every = 4;
  o.checkpoint_dir = dir;
  o.worker_binary = DIST_WORKER_BIN;
  o.collective_timeout = milliseconds(4000);
  o.heartbeat_timeout = milliseconds(20000);
  return o;
}

// Reference weights: the same schedule on the in-process thread transport.
std::unique_ptr<nn::Module> ThreadReference(const ProcGroupOptions& proc,
                                            const std::string& dir) {
  DistTrainerOptions o;
  o.world_size = proc.world_size;
  o.max_steps = proc.max_steps;
  o.adamw = ToyAdamWOptions();
  o.checkpoint_dir = dir;
  o.checkpoint_every = proc.checkpoint_every;
  o.seed = proc.seed;
  DistTrainer ref(o, ToyModelFactory(), ToyDistLoss());
  EXPECT_TRUE(ref.Run().ok());
  std::unique_ptr<nn::Module> model = MakeToyReplica();
  EXPECT_EQ(MaxParamDiff(*ref.model(0), *ref.model(proc.world_size - 1)),
            0.0f);
  // Hand back the trained weights via the final checkpoint for a clean
  // cross-process comparison path.
  auto latest = LatestCheckpoint(dir);
  EXPECT_TRUE(latest.ok());
  EXPECT_TRUE(LoadCheckpoint(model.get(), latest.value(), nullptr).ok());
  return model;
}

std::unique_ptr<nn::Module> LoadFinal(const std::string& dir) {
  std::unique_ptr<nn::Module> model = MakeToyReplica();
  auto latest = LatestCheckpoint(dir);
  EXPECT_TRUE(latest.ok());
  if (!latest.ok()) return model;
  EXPECT_TRUE(LoadCheckpoint(model.get(), latest.value(), nullptr).ok());
  return model;
}

TEST(DistProcTest, CleanGangMatchesThreadTransportBitExactly) {
  ScratchDir pdir("tfmr_proc_clean");
  ScratchDir rdir("tfmr_proc_clean_ref");
  ProcGroupOptions o = ToyProcOptions(pdir.path());
  ProcGroupCoordinator gang(o, ToyModelFactory(), ToyAdamWOptions());
  util::Status s = gang.Run();
  ASSERT_TRUE(s.ok()) << s << "\n" << gang.FormatIncidents();
  EXPECT_EQ(gang.recoveries(), 0) << gang.FormatIncidents();

  auto ref = ThreadReference(o, rdir.path());
  auto got = LoadFinal(pdir.path());
  EXPECT_EQ(MaxParamDiff(*ref, *got), 0.0f);
}

TEST(DistProcTest, RealSigkillRecoversBitExactly) {
  ScratchDir pdir("tfmr_proc_kill");
  ScratchDir rdir("tfmr_proc_kill_ref");
  ProcGroupOptions o = ToyProcOptions(pdir.path());
  // Every spawned worker arms a real SIGKILL at its 6th step boundary:
  // with checkpoints every 4 steps each epoch banks at least one new
  // checkpoint before dying, so the gang makes monotonic progress and
  // the run terminates after a handful of genuine process deaths.
  o.worker_extra_args = {"--arm-fault=worker-kill@6"};
  ProcGroupCoordinator gang(o, ToyModelFactory(), ToyAdamWOptions());

  obs::FlightRecorder::Global().Clear();
  util::Status s = gang.Run();
  ASSERT_TRUE(s.ok()) << s << "\n" << gang.FormatIncidents();
  EXPECT_GE(gang.recoveries(), 1);

  // Death -> recovery -> respawn ordering is visible in the coordinator's
  // flight recorder.
  const auto events = obs::FlightRecorder::Global().Dump();
  bool saw_ordered_recovery = false;
  int phase = 0;  // 0: want death, 1: want recovery, 2: want respawn
  for (const auto& ev : events) {
    if (phase == 0 && ev.type == obs::FlightEventType::kWorkerDeath) {
      phase = 1;
    } else if (phase == 1 &&
               ev.type == obs::FlightEventType::kDistRecovery) {
      phase = 2;
    } else if (phase == 2 && ev.type == obs::FlightEventType::kProcSpawn) {
      saw_ordered_recovery = true;
      break;
    }
  }
  EXPECT_TRUE(saw_ordered_recovery)
      << obs::FlightRecorder::Global().Format(64);

  auto ref = ThreadReference(o, rdir.path());
  auto got = LoadFinal(pdir.path());
  EXPECT_EQ(MaxParamDiff(*ref, *got), 0.0f);
}

TEST(DistProcTest, CoordinatorSigkillMidEpochRecoversBitExactly) {
  ScratchDir pdir("tfmr_proc_extkill");
  ScratchDir rdir("tfmr_proc_extkill_ref");
  ProcGroupOptions o = ToyProcOptions(pdir.path());
  ProcGroupCoordinator gang(o, ToyModelFactory(), ToyAdamWOptions());

  // Kill rank 1 from outside once the run is past its first mid-run
  // checkpoint — the dist_demo scenario, asserted.
  std::thread killer([&] {
    const std::string step0 = pdir.path() + "/" + CheckpointFileName(0);
    for (int i = 0; i < 2000; ++i) {
      auto latest = LatestCheckpoint(pdir.path());
      if (latest.ok() && latest.value() != step0) break;
      std::this_thread::sleep_for(milliseconds(2));
    }
    gang.KillRank(1);
  });
  util::Status s = gang.Run();
  killer.join();
  ASSERT_TRUE(s.ok()) << s << "\n" << gang.FormatIncidents();

  auto ref = ThreadReference(o, rdir.path());
  auto got = LoadFinal(pdir.path());
  EXPECT_EQ(MaxParamDiff(*ref, *got), 0.0f);
}

// The acceptance scenario for the incident pipeline: SIGKILL a rank
// mid-epoch and read the coordinator's structured postmortem. The report
// must carry the harvested crash dump, and its merged timeline must show
// the victim's own final events (its last telemetry ship / postmortem
// dump, shipped from inside the dead process) strictly before the
// coordinator's recovery and respawn events.
TEST(DistProcTest, SigkillIncidentReportInterleavesVictimAndCoordinator) {
  ScratchDir pdir("tfmr_proc_incident");
  ProcGroupOptions o = ToyProcOptions(pdir.path());
  o.worker_extra_args = {"--arm-fault=worker-kill@6"};
  // Room for both ranks' final deltas plus the recovery tail.
  o.incident_timeline_events = 48;
  ProcGroupCoordinator gang(o, ToyModelFactory(), ToyAdamWOptions());

  obs::FlightRecorder::Global().Clear();
  util::Status s = gang.Run();
  ASSERT_TRUE(s.ok()) << s << "\n" << gang.FormatIncidents();
  ASSERT_GE(gang.recoveries(), 1);

  // Exactly one structured report per incident.
  const std::vector<obs::IncidentReport>& reports = gang.incident_reports();
  ASSERT_EQ(reports.size(), static_cast<size_t>(gang.recoveries()))
      << gang.FormatIncidents();

  for (size_t i = 0; i < reports.size(); ++i) {
    const obs::IncidentReport& report = reports[i];
    SCOPED_TRACE("report " + std::to_string(i) + "\n" + report.Format());
    EXPECT_GE(report.rank, 0);
    EXPECT_LT(report.rank, o.world_size);
    EXPECT_FALSE(report.kind.empty());
    EXPECT_FALSE(report.detail.empty());
    EXPECT_FALSE(report.action.empty());
    // The worker dumped its last gasp before raising SIGKILL on itself,
    // and the coordinator harvested it.
    EXPECT_TRUE(report.postmortem_harvested);
    EXPECT_GE(report.step, 0);

    // Timeline interleaving: the victim's final events precede the
    // coordinator's recovery/respawn for this incident.
    int victim_last = -1;
    int coord_recovery = -1;
    int coord_respawn = -1;
    for (int j = 0; j < static_cast<int>(report.timeline.size()); ++j) {
      const obs::GangEvent& ge = report.timeline[j];
      if (ge.rank == report.rank &&
          (ge.event.type == obs::FlightEventType::kTelemetryShip ||
           ge.event.type == obs::FlightEventType::kPostmortemDump)) {
        victim_last = j;
      }
      if (ge.rank == obs::kCoordinatorRank && coord_recovery < 0 &&
          ge.event.type == obs::FlightEventType::kDistRecovery &&
          ge.event.c == static_cast<int64_t>(report.recovery)) {
        coord_recovery = j;
      }
      if (ge.rank == obs::kCoordinatorRank && coord_recovery >= 0 &&
          j > coord_recovery &&
          ge.event.type == obs::FlightEventType::kProcSpawn) {
        coord_respawn = j;
        break;
      }
    }
    ASSERT_GE(victim_last, 0) << "victim's final events missing";
    ASSERT_GE(coord_recovery, 0) << "coordinator recovery event missing";
    EXPECT_LT(victim_last, coord_recovery)
        << "victim's last events must precede the recovery";
    EXPECT_GE(coord_respawn, 0) << "respawn missing after recovery";

    // The machine-readable line round-trips the essentials.
    const std::string json = report.ToJson();
    EXPECT_NE(json.find("\"kind\":\"" + report.kind + "\""),
              std::string::npos);
    EXPECT_NE(json.find("\"postmortem\":true"), std::string::npos);
    EXPECT_NE(json.find("\"timeline\":["), std::string::npos);
  }

  // The dead rank's SIGKILL shows up in at least one report's wait
  // status (the monitor may classify via the transport first, but the
  // reaped status is recorded when available).
  bool saw_sigkill = false;
  for (const obs::IncidentReport& report : reports) {
    if (report.term_signal == SIGKILL) saw_sigkill = true;
  }
  EXPECT_TRUE(saw_sigkill) << gang.FormatIncidents();
}

#endif  // DIST_WORKER_BIN

}  // namespace
}  // namespace llm::train::dist
