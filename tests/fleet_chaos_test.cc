// Fleet-level chaos harness (ctest label: `fleet-chaos`).
//
// Each schedule is a seeded storm against a ReplicaRouter fronting 2-4
// replicas: probabilistic fault plans on every serving site (poisoned
// lanes, leaked KV slots, worker stalls, throwing callbacks, injected
// dispatch failures), plus a chaos actor thread that kills replicas,
// poisons whole replicas, and rolls same-weights reloads — all while two
// submitter threads race admission, cancellation, deadlines, and (on odd
// seeds) hedging.
//
// Whatever the storm does, the fleet invariants must survive:
//
//   1. Conservation: every accepted request reaches exactly one terminal
//      state — submitted == completed + cancelled + expired + failed —
//      and Wait() returns for every accepted id.
//   2. No leaks: at quiescence every replica's KV slots are all free.
//   3. Determinism: all tokens streamed to a client are a prefix of the
//      request's one true output sequence (same seed => same tokens,
//      whichever replicas served it), and hedge verification observes
//      zero bit-exactness violations.
//
// Schedules are deterministic per seed (modulo thread interleaving) and
// the suite is meant to run under TSan too (preset `tsan-fleet-chaos`).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/fleet/replica_router.h"
#include "train/checkpoint.h"
#include "util/fault.h"
#include "util/rng.h"

namespace llm::serve {
namespace {

namespace fs = std::filesystem;

struct RequestLog {
  GenerateRequest request;  // as submitted (callback stripped)
  RequestId id = 0;
  bool cancel = false;
  int64_t cancel_after_us = 0;
  bool has_callback = false;
  std::mutex mu;
  std::vector<int64_t> streamed;
};

class FleetChaosTest : public ::testing::TestWithParam<int> {
 protected:
  void TearDown() override { util::FaultInjector::Global().Disarm(); }
};

TEST_P(FleetChaosTest, FleetInvariantsSurviveRandomFaultSchedule) {
  const int seed = GetParam();
  SCOPED_TRACE("fleet chaos seed " + std::to_string(seed));
  util::Rng chaos(0xC0FFEEull ^ (static_cast<uint64_t>(seed) *
                                 0x2545F4914F6CDD1Dull));

  nn::GPTConfig cfg;
  cfg.vocab_size = 19;
  cfg.max_seq_len = 12 + static_cast<int64_t>(chaos.UniformInt(8));
  cfg.d_model = 24;
  cfg.n_layer = 2;
  cfg.n_head = 3;
  util::Rng model_rng(static_cast<uint64_t>(seed) + 500);
  nn::GPTModel model(cfg, &model_rng);

  FleetOptions options;
  options.num_replicas = 2 + static_cast<int>(chaos.UniformInt(3));  // 2-4
  options.server.max_batch_size = 1 + static_cast<int64_t>(chaos.UniformInt(4));
  options.server.queue_capacity = 4 + static_cast<size_t>(chaos.UniformInt(12));
  options.server.num_workers = static_cast<int>(chaos.UniformInt(3));
  if ((seed % 3) == 0) {
    options.server.tick_budget = std::chrono::milliseconds(15);
  }
  if ((seed % 2) == 1) options.hedge_delay = std::chrono::milliseconds(2);
  options.reload_drain_timeout = std::chrono::milliseconds(2000);

  // A same-weights checkpoint for chaos reloads: reloading it keeps the
  // fleet's function identical, so determinism assertions stay valid
  // across any number of mid-storm weight rolls.
  const std::string ckpt_dir =
      (fs::temp_directory_path() /
       ("tfmr_fleet_chaos_" + std::to_string(seed)))
          .string();
  fs::remove_all(ckpt_dir);
  fs::create_directories(ckpt_dir);
  const std::string ckpt = ckpt_dir + "/weights.tfmr";
  ASSERT_TRUE(train::SaveCheckpoint(model, ckpt).ok());

  // Request population, a pure function of the seed.
  const int n_requests = 6 + static_cast<int>(chaos.UniformInt(9));
  std::vector<std::shared_ptr<RequestLog>> logs;
  for (int i = 0; i < n_requests; ++i) {
    auto log = std::make_shared<RequestLog>();
    const int prompt_len = 1 + static_cast<int>(chaos.UniformInt(3));
    for (int t = 0; t < prompt_len; ++t) {
      log->request.prompt.push_back(
          static_cast<int64_t>(chaos.UniformInt(cfg.vocab_size)));
    }
    log->request.seed = chaos.NextU64();
    log->request.max_new_tokens =
        1 + static_cast<int64_t>(chaos.UniformInt(10));
    log->request.sampler.temperature = 0.8f;
    log->request.sampler.top_k = 5;
    if (chaos.Bernoulli(0.25)) {
      log->request.timeout =
          std::chrono::milliseconds(5 + chaos.UniformInt(60));
    }
    log->has_callback = chaos.Bernoulli(0.4);
    log->cancel = chaos.Bernoulli(0.2);
    log->cancel_after_us = static_cast<int64_t>(chaos.UniformInt(2500));
    logs.push_back(std::move(log));
  }

  // Probabilistic fault plans on both the serving sites and the new
  // fleet sites. Armed before Start so counters begin at tick zero.
  auto& injector = util::FaultInjector::Global();
  injector.ArmRandom(util::FaultSite::kDecodeNaN, 0.06 * chaos.Uniform(),
                     chaos.NextU64());
  injector.ArmRandom(util::FaultSite::kSlotLeak, 0.08 * chaos.Uniform(),
                     chaos.NextU64());
  injector.ArmRandom(util::FaultSite::kOnTokenThrow, 0.04 * chaos.Uniform(),
                     chaos.NextU64());
  injector.ArmRandom(util::FaultSite::kReplicaDispatch, 0.05 * chaos.Uniform(),
                     chaos.NextU64());
  if (seed % 5 == 0) {
    injector.ArmAt(util::FaultSite::kWorkerStall, {2, 31});
  }

  ReplicaRouter router(model, options);
  router.Start();

  // Chaos actor: kills (always leaving at least one replica alive),
  // whole-replica poison toggles, and rolling same-weights reloads.
  std::atomic<bool> actor_stop{false};
  const int max_kills = options.num_replicas - 1;
  util::Rng actor_rng(chaos.NextU64());
  const int n_actions = 4 + static_cast<int>(chaos.UniformInt(5));
  std::thread actor([&] {
    int kills = 0;
    int reloads = 0;
    for (int a = 0; a < n_actions && !actor_stop.load(); ++a) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(500 + actor_rng.UniformInt(4000)));
      const int replica =
          static_cast<int>(actor_rng.UniformInt(options.num_replicas));
      const double roll = actor_rng.Uniform();
      if (roll < 0.25 && kills < max_kills) {
        router.KillReplica(replica);
        ++kills;
      } else if (roll < 0.55) {
        router.PoisonReplica(replica, actor_rng.Bernoulli(0.6));
      } else if (roll < 0.8 && reloads < 2) {
        // Errors tolerated: a reload can lose the race with a kill.
        (void)router.ReloadModel(ckpt);
        ++reloads;
      }
      // else: let the storm breathe for a beat.
    }
    // Leave no replica poisoned so the tail of the run can finish.
    for (int r = 0; r < options.num_replicas; ++r) {
      router.PoisonReplica(r, false);
    }
  });

  std::mutex accepted_mu;
  std::vector<RequestId> accepted;
  auto submit_range = [&](size_t begin, size_t step) {
    for (size_t i = begin; i < logs.size(); i += step) {
      auto& log = logs[i];
      GenerateRequest request = log->request;
      if (log->has_callback) {
        RequestLog* raw = log.get();
        request.on_token = [raw](RequestId, int64_t token) {
          std::lock_guard<std::mutex> lock(raw->mu);
          raw->streamed.push_back(token);
        };
      }
      util::StatusOr<RequestId> id = router.Submit(std::move(request));
      if (!id.ok()) continue;  // shed: never enters conservation
      log->id = id.value();
      {
        std::lock_guard<std::mutex> lock(accepted_mu);
        accepted.push_back(id.value());
      }
      if (log->cancel) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(log->cancel_after_us));
        router.Cancel(id.value());
      }
    }
  };
  std::thread submitter_a([&] { submit_range(0, 2); });
  std::thread submitter_b([&] { submit_range(1, 2); });
  submitter_a.join();
  submitter_b.join();
  actor.join();
  actor_stop.store(true);

  // Alternate the two ways down.
  if (seed % 2 == 0) {
    const util::Status drained = router.Drain(std::chrono::seconds(30));
    EXPECT_TRUE(drained.ok()) << drained.ToString();
  } else {
    router.Shutdown();
  }

  // Invariant 1 + 3: Wait returns for every accepted id with a terminal
  // reason, and anything streamed is a prefix of the request's one true
  // sequence. (Same-weights reloads keep the sequence identical across
  // every attempt, so even a request that hopped replicas mid-stream
  // must agree with its final tokens on the shared prefix.)
  for (const auto& log : logs) {
    if (log->id == 0) continue;
    auto result = router.Wait(log->id);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_NE(result.value().reason, FinishReason::kNone);
    if (log->has_callback) {
      std::lock_guard<std::mutex> lock(log->mu);
      const auto& tokens = result.value().tokens;
      const size_t common = std::min(log->streamed.size(), tokens.size());
      for (size_t t = 0; t < common; ++t) {
        EXPECT_EQ(log->streamed[t], tokens[t])
            << "streamed token " << t << " diverged from the final output";
      }
      if (result.value().status.ok()) {
        // A completed request's final output IS the full sequence: the
        // stream can never have run ahead of it.
        EXPECT_LE(log->streamed.size(), tokens.size());
      }
    }
  }

  // Invariant 2: fleet conservation, zero hedge mismatches, and every
  // replica's KV slots back in the free list.
  const FleetStats stats = router.Stats();
  EXPECT_EQ(stats.submitted, accepted.size());
  EXPECT_EQ(stats.submitted, stats.completed + stats.cancelled +
                                 stats.expired + stats.failed);
  EXPECT_EQ(stats.hedge_mismatches, 0u)
      << "hedged execution broke the determinism contract";
  for (int r = 0; r < router.num_replicas(); ++r) {
    const ServerStats rs = router.replica_stats(r);
    EXPECT_EQ(rs.active_slots, 0) << "replica " << r;
    EXPECT_EQ(rs.free_slots, rs.total_slots) << "replica " << r;
    EXPECT_EQ(rs.queue_depth, 0u) << "replica " << r;
  }

  fs::remove_all(ckpt_dir);
}

// >= 40 distinct schedules: enough to cover replica-count geometries,
// kill/poison/reload interleavings, hedging on/off, and both shutdown
// paths, while keeping the suite runnable under TSan.
INSTANTIATE_TEST_SUITE_P(Schedules, FleetChaosTest, ::testing::Range(0, 44));

}  // namespace
}  // namespace llm::serve
