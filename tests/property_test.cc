// Parameterized property tests: invariants checked across sweeps of
// shapes, seeds, orders, and configurations (TEST_P / INSTANTIATE_TEST_SUITE_P).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/graph.h"
#include "core/ops.h"
#include "data/pcfg_corpus.h"
#include "data/word_problems.h"
#include "grammar/cnf.h"
#include "grammar/earley.h"
#include "ngram/ngram.h"
#include "nn/transformer.h"
#include "othello/othello.h"
#include "sample/sampler.h"
#include "text/bpe.h"

namespace llm {
namespace {

// ---------------------------------------------------------------------------
// Property: MatMul gradients match numerics for any (M, K, N).
// ---------------------------------------------------------------------------
class MatMulShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatMulShapes, GradientMatchesNumeric) {
  auto [m, k, n] = GetParam();
  util::Rng rng(static_cast<uint64_t>(m * 100 + k * 10 + n));
  core::Variable a(core::Tensor::RandomNormal({m, k}, &rng, 0.0f, 0.5f),
                   true);
  core::Variable b(core::Tensor::RandomNormal({k, n}, &rng, 0.0f, 0.5f),
                   true);
  auto f = [&] {
    core::Variable y = core::MatMul(a, b);
    return core::SumAll(core::Mul(y, y));
  };
  a.ZeroGrad();
  core::Backward(f());
  const core::Tensor analytic = a.grad();
  const core::Tensor numeric = core::NumericalGradient(f, a, 1e-2f);
  for (int64_t i = 0; i < analytic.numel(); ++i) {
    const float scale = std::max(
        {1.0f, std::fabs(analytic[i]), std::fabs(numeric[i])});
    ASSERT_NEAR(analytic[i], numeric[i], 4e-2f * scale);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMulShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 5, 3),
                      std::make_tuple(4, 1, 4), std::make_tuple(3, 7, 2),
                      std::make_tuple(6, 6, 6)));

// ---------------------------------------------------------------------------
// Property: softmax rows are probability vectors for any shape/seed.
// ---------------------------------------------------------------------------
class SoftmaxShapes
    : public ::testing::TestWithParam<std::tuple<int, int, uint64_t>> {};

TEST_P(SoftmaxShapes, RowsAreDistributions) {
  auto [rows, cols, seed] = GetParam();
  util::Rng rng(seed);
  core::Variable x(
      core::Tensor::RandomNormal({rows, cols}, &rng, 0.0f, 3.0f));
  core::Tensor y = core::Softmax(x).value();
  for (int64_t r = 0; r < rows; ++r) {
    double sum = 0;
    for (int64_t c = 0; c < cols; ++c) {
      const float p = y.At({r, c});
      ASSERT_GE(p, 0.0f);
      ASSERT_LE(p, 1.0f);
      sum += p;
    }
    ASSERT_NEAR(sum, 1.0, 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SoftmaxShapes,
    ::testing::Combine(::testing::Values(1, 3, 8),
                       ::testing::Values(2, 17, 64),
                       ::testing::Values(1u, 2u)));

// ---------------------------------------------------------------------------
// Property: causal attention never leaks the future, for any head count
// and window.
// ---------------------------------------------------------------------------
class AttentionConfigs
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AttentionConfigs, NoFutureLeak) {
  auto [heads, window] = GetParam();
  const int64_t T = 7, C = 12;
  util::Rng rng(static_cast<uint64_t>(heads * 10 + window));
  core::Variable qkv(
      core::Tensor::RandomNormal({1, T, 3 * C}, &rng, 0.0f, 0.5f));
  core::AttentionOptions opts;
  opts.num_heads = heads;
  opts.window = window;
  core::Tensor out1 = core::MultiHeadCausalAttention(qkv, opts).value();
  core::Variable qkv2(qkv.value());
  for (int64_t c = 0; c < 3 * C; ++c) {
    qkv2.mutable_value().At({0, T - 1, c}) += 7.0f;
  }
  core::Tensor out2 = core::MultiHeadCausalAttention(qkv2, opts).value();
  for (int64_t t = 0; t < T - 1; ++t) {
    for (int64_t c = 0; c < C; ++c) {
      ASSERT_EQ(out1.At({0, t, c}), out2.At({0, t, c}));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AttentionConfigs,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 6),
                       ::testing::Values(0, 1, 3)));

// ---------------------------------------------------------------------------
// Property: N-gram conditionals are normalized for any order and corpus.
// ---------------------------------------------------------------------------
class NgramOrders : public ::testing::TestWithParam<int> {};

TEST_P(NgramOrders, ConditionalsNormalized) {
  const int order = GetParam();
  const int64_t vocab = 6;
  util::Rng rng(static_cast<uint64_t>(order));
  std::vector<int64_t> stream;
  for (int i = 0; i < 500; ++i) {
    stream.push_back(static_cast<int64_t>(rng.UniformInt(vocab)));
  }
  ngram::NgramModel model(order, vocab, 0.1);
  model.Fit(stream);
  // Check several contexts, seen and unseen.
  for (uint64_t trial = 0; trial < 10; ++trial) {
    std::vector<int64_t> ctx;
    for (int j = 0; j + 1 < order; ++j) {
      ctx.push_back(static_cast<int64_t>(rng.UniformInt(vocab)));
    }
    double sum = 0;
    for (int64_t w = 0; w < vocab; ++w) sum += model.CondProb(ctx, w);
    ASSERT_NEAR(sum, 1.0, 1e-9);
  }
  // Perplexity bounded by smoothed extremes.
  ASSERT_GE(model.Perplexity(stream), 1.0);
  ASSERT_LE(model.Perplexity(stream), static_cast<double>(vocab) * 1.1);
}

INSTANTIATE_TEST_SUITE_P(Orders, NgramOrders, ::testing::Values(1, 2, 3, 4));

// ---------------------------------------------------------------------------
// Property: every sentence the PCFG samples is (a) accepted by Earley,
// (b) derivable under the CNF conversion with sentence probability at
// least the sampled tree's probability.
// ---------------------------------------------------------------------------
class GrammarSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GrammarSeeds, SamplesAreParseable) {
  grammar::Grammar g = grammar::ArithmeticGrammar();
  grammar::EarleyParser parser(&g);
  auto cnf = grammar::ToCnf(g);
  ASSERT_TRUE(cnf.ok());
  util::Rng rng(GetParam());
  for (int i = 0; i < 10; ++i) {
    auto tree = g.SampleTree(&rng, 40);
    if (!tree.ok()) continue;
    auto leaves = grammar::Grammar::TreeLeaves(**tree);
    ASSERT_TRUE(parser.Recognize(leaves)) << g.TreeYield(**tree);
    const double inside = grammar::InsideLogProb(*cnf, leaves);
    ASSERT_GE(inside, g.TreeLogProb(**tree) - 1e-6);
    ASSERT_LE(inside, 1e-9);  // log prob <= 0
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GrammarSeeds,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---------------------------------------------------------------------------
// Property: for *random* PCFGs, every sampled sentence is accepted by
// Earley and carries inside probability >= its own derivation (fuzzing the
// grammar pipeline end to end).
// ---------------------------------------------------------------------------
grammar::Grammar RandomGrammar(uint64_t seed) {
  util::Rng rng(seed);
  grammar::Grammar g;
  const int num_nt = 2 + static_cast<int>(rng.UniformInt(3));
  const int num_term = 2 + static_cast<int>(rng.UniformInt(4));
  auto nt = [&](int i) { return "N" + std::to_string(i); };
  auto term = [&](int i) { return "t" + std::to_string(i); };
  // Every nonterminal gets a guaranteed terminal rule (termination) plus
  // 1-2 random expansion rules over nonterminals/terminals.
  for (int i = 0; i < num_nt; ++i) {
    LLM_CHECK(g.AddRule(nt(i),
                        {term(static_cast<int>(
                            rng.UniformInt(static_cast<uint64_t>(num_term))))},
                        2.0)
                  .ok());
    const int extra = 1 + static_cast<int>(rng.UniformInt(2));
    for (int r = 0; r < extra; ++r) {
      std::vector<std::string> rhs;
      const int len = 1 + static_cast<int>(rng.UniformInt(3));
      for (int k = 0; k < len; ++k) {
        if (rng.Bernoulli(0.5)) {
          rhs.push_back(nt(static_cast<int>(
              rng.UniformInt(static_cast<uint64_t>(num_nt)))));
        } else {
          rhs.push_back(term(static_cast<int>(
              rng.UniformInt(static_cast<uint64_t>(num_term)))));
        }
      }
      LLM_CHECK(g.AddRule(nt(i), rhs, 1.0).ok());
    }
  }
  LLM_CHECK(g.Finalize(nt(0)).ok());
  return g;
}

class RandomGrammarSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomGrammarSeeds, PipelineAgreesOnRandomGrammars) {
  grammar::Grammar g = RandomGrammar(GetParam());
  grammar::EarleyParser parser(&g);
  auto cnf = grammar::ToCnf(g);
  ASSERT_TRUE(cnf.ok()) << cnf.status();
  ASSERT_TRUE(cnf->Validate().ok());
  util::Rng rng(GetParam() + 1000);
  int checked = 0;
  for (int i = 0; i < 25 && checked < 8; ++i) {
    auto tree = g.SampleTree(&rng, 30);
    if (!tree.ok()) continue;
    auto leaves = grammar::Grammar::TreeLeaves(**tree);
    if (leaves.size() > 12) continue;
    ASSERT_TRUE(parser.Recognize(leaves)) << g.TreeYield(**tree);
    const double inside = grammar::InsideLogProb(*cnf, leaves);
    ASSERT_GE(inside, g.TreeLogProb(**tree) - 1e-6);
    ASSERT_LE(inside, 1e-9);
    ++checked;
  }
  ASSERT_GE(checked, 1);
}

INSTANTIATE_TEST_SUITE_P(Fuzz, RandomGrammarSeeds,
                         ::testing::Range<uint64_t>(100, 112));

// ---------------------------------------------------------------------------
// Property: BPE encode/decode round-trips whitespace-normalized text for
// any merge budget.
// ---------------------------------------------------------------------------
class BpeMerges : public ::testing::TestWithParam<int> {};

TEST_P(BpeMerges, RoundTrip) {
  const std::string corpus =
      "the cat sat on the mat the dog sat on the log a cat and a dog";
  text::Bpe bpe;
  bpe.Train(corpus, GetParam());
  for (const char* sentence :
       {"the cat sat", "a dog on the log", "mat log cat dog"}) {
    ASSERT_EQ(bpe.Decode(bpe.Encode(sentence)), sentence);
  }
}

INSTANTIATE_TEST_SUITE_P(Merges, BpeMerges,
                         ::testing::Values(0, 1, 5, 20, 100));

// ---------------------------------------------------------------------------
// Property: Othello invariants hold for every random game: disc count
// grows by one per move, snapshots replay exactly, terminal states have
// no legal moves for either player.
// ---------------------------------------------------------------------------
class OthelloSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OthelloSeeds, GameInvariants) {
  util::Rng rng(GetParam());
  othello::Game game = othello::RandomGame(&rng);
  othello::Board board;
  int discs = 4;
  for (size_t i = 0; i < game.moves.size(); ++i) {
    ASSERT_TRUE(board.IsLegal(game.moves[i]));
    ASSERT_TRUE(board.Apply(game.moves[i]).ok());
    ++discs;
    ASSERT_EQ(board.CountDiscs(othello::Cell::kBlack) +
                  board.CountDiscs(othello::Cell::kWhite),
              discs);
    ASSERT_EQ(board.Snapshot(), game.boards[i]);
  }
  ASSERT_TRUE(board.IsTerminal());
  ASSERT_FALSE(board.HasLegalMove());
}

INSTANTIATE_TEST_SUITE_P(Seeds, OthelloSeeds,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

// ---------------------------------------------------------------------------
// Property: sampler distributions are valid and truncation keeps at
// least the argmax, for any (temperature, top_k, top_p).
// ---------------------------------------------------------------------------
class SamplerConfigs
    : public ::testing::TestWithParam<std::tuple<float, int, float>> {};

TEST_P(SamplerConfigs, DistributionValidAndKeepsArgmax) {
  auto [temp, top_k, top_p] = GetParam();
  util::Rng rng(5);
  std::vector<float> logits(16);
  for (auto& l : logits) l = static_cast<float>(rng.Normal(0.0, 2.0));
  sample::SamplerOptions opts;
  opts.temperature = temp;
  opts.top_k = top_k;
  opts.top_p = top_p;
  auto p = sample::DistributionFromLogits(logits.data(), 16, opts);
  double sum = 0;
  int64_t argmax = 0;
  for (int64_t i = 0; i < 16; ++i) {
    ASSERT_GE(p[static_cast<size_t>(i)], 0.0f);
    sum += p[static_cast<size_t>(i)];
    if (logits[static_cast<size_t>(i)] > logits[static_cast<size_t>(argmax)]) {
      argmax = i;
    }
  }
  ASSERT_NEAR(sum, 1.0, 1e-4);
  ASSERT_GT(p[static_cast<size_t>(argmax)], 0.0f);  // argmax never pruned
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SamplerConfigs,
    ::testing::Combine(::testing::Values(0.0f, 0.5f, 1.0f, 2.0f),
                       ::testing::Values(0, 1, 4),
                       ::testing::Values(0.0f, 0.5f, 0.95f)));

// ---------------------------------------------------------------------------
// Property: GPT logits shapes/finiteness across architecture variants.
// ---------------------------------------------------------------------------
struct GptVariant {
  bool pre_ln;
  bool learned_pos;
  bool attn_only;
  bool tied;
  int window;
};

class GptVariants : public ::testing::TestWithParam<GptVariant> {};

TEST_P(GptVariants, ForwardBackwardFinite) {
  const GptVariant v = GetParam();
  nn::GPTConfig cfg;
  cfg.vocab_size = 13;
  cfg.max_seq_len = 10;
  cfg.d_model = 16;
  cfg.n_layer = 2;
  cfg.n_head = 2;
  cfg.pre_layernorm = v.pre_ln;
  cfg.learned_positional = v.learned_pos;
  cfg.attention_only = v.attn_only;
  cfg.tie_embeddings = v.tied;
  cfg.attention_window = v.window;
  util::Rng rng(3);
  nn::GPTModel model(cfg, &rng);
  std::vector<int64_t> tokens = {1, 2, 3, 4, 5, 6};
  std::vector<int64_t> targets = {2, 3, 4, 5, 6, 7};
  core::Variable loss = model.LmLoss(tokens, targets, 1, 6);
  ASSERT_TRUE(std::isfinite(loss.value()[0]));
  core::Backward(loss);
  for (const auto& p : model.Parameters()) {
    ASSERT_TRUE(std::isfinite(p.grad().MaxAbs()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, GptVariants,
    ::testing::Values(GptVariant{true, true, false, false, 0},
                      GptVariant{false, true, false, false, 0},
                      GptVariant{true, false, false, false, 0},
                      GptVariant{true, true, true, false, 0},
                      GptVariant{true, true, false, true, 0},
                      GptVariant{true, false, true, true, 2},
                      GptVariant{false, false, false, false, 3}));

// ---------------------------------------------------------------------------
// Property: word-problem encodings are self-consistent for every (k, CoT).
// ---------------------------------------------------------------------------
class WordProblemConfigs
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(WordProblemConfigs, EncodingConsistent) {
  auto [terms, cot] = GetParam();
  data::WordProblemOptions opts;
  opts.modulus = 7;
  opts.terms = terms;
  opts.chain_of_thought = cot;
  data::WordProblemDataset ds(opts);
  util::Rng rng(static_cast<uint64_t>(terms * 2 + cot));
  for (int i = 0; i < 10; ++i) {
    auto p = ds.SampleProblem(&rng);
    auto seq = ds.Encode(p);
    ASSERT_EQ(static_cast<int64_t>(seq.size()), ds.seq_len());
    ASSERT_EQ(seq.back(), ds.end_token());
    // The last number in the sequence is the answer.
    int64_t last_number = -1;
    for (int64_t t : seq) {
      if (t < opts.modulus) last_number = t;
    }
    ASSERT_EQ(last_number, p.answer);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WordProblemConfigs,
    ::testing::Combine(::testing::Values(2, 3, 5, 8),
                       ::testing::Bool()));

}  // namespace
}  // namespace llm
