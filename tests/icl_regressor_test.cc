// Tests for the continuous-input in-context regressor.
#include <gtest/gtest.h>

#include "data/icl_regression.h"
#include "nn/icl_regressor.h"
#include "train/optimizer.h"

namespace llm::nn {
namespace {

IclRegressorConfig TinyConfig() {
  IclRegressorConfig cfg;
  cfg.dim = 2;
  cfg.max_pairs = 6;
  cfg.d_model = 24;
  cfg.n_layer = 2;
  cfg.n_head = 2;
  return cfg;
}

TEST(IclRegressorTest, PredictionShape) {
  util::Rng rng(1);
  InContextRegressor model(TinyConfig(), &rng);
  data::IclRegressionOptions dopts;
  dopts.dim = 2;
  auto ep = data::SampleIclEpisode(dopts, 5, &rng);
  core::Variable pred = model.Predict(ep.xs, ep.ys, 1, 5);
  EXPECT_EQ(pred.shape(), (core::Shape{1, 5}));
}

TEST(IclRegressorTest, QueryPredictionIgnoresQueryLabel) {
  // Causality: the prediction at the last x must not depend on the last y.
  util::Rng rng(2);
  InContextRegressor model(TinyConfig(), &rng);
  data::IclRegressionOptions dopts;
  dopts.dim = 2;
  auto ep = data::SampleIclEpisode(dopts, 5, &rng);
  core::Variable p1 = model.Predict(ep.xs, ep.ys, 1, 5);
  auto ys2 = ep.ys;
  ys2.back() += 100.0f;
  core::Variable p2 = model.Predict(ep.xs, ys2, 1, 5);
  EXPECT_FLOAT_EQ(p1.value()[4], p2.value()[4]);
}

TEST(IclRegressorTest, EarlierPredictionsIgnoreLaterPairs) {
  util::Rng rng(3);
  InContextRegressor model(TinyConfig(), &rng);
  data::IclRegressionOptions dopts;
  dopts.dim = 2;
  auto ep = data::SampleIclEpisode(dopts, 5, &rng);
  core::Variable p1 = model.Predict(ep.xs, ep.ys, 1, 5);
  auto xs2 = ep.xs;
  for (int j = 0; j < 2; ++j) xs2[static_cast<size_t>(4 * 2 + j)] += 5.0f;
  core::Variable p2 = model.Predict(xs2, ep.ys, 1, 5);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(p1.value()[i], p2.value()[i]) << i;
  }
}

TEST(IclRegressorTest, GradientsTrainOnFixedBatch) {
  // Full in-context generalization needs thousands of steps (covered by
  // bench_icl_regression); here we verify the architecture trains at all
  // by fitting one fixed batch of episodes.
  util::Rng rng(4);
  InContextRegressor model(TinyConfig(), &rng);
  data::IclRegressionOptions dopts;
  dopts.dim = 2;
  std::vector<float> xs, ys;
  for (int b = 0; b < 8; ++b) {
    auto ep = data::SampleIclEpisode(dopts, 5, &rng);
    xs.insert(xs.end(), ep.xs.begin(), ep.xs.end());
    ys.insert(ys.end(), ep.ys.begin(), ep.ys.end());
  }
  train::AdamWOptions aopts;
  aopts.lr = 3e-3f;
  train::AdamW opt(model.Parameters(), aopts);
  float first = 0, last = 0;
  for (int step = 0; step < 150; ++step) {
    core::Variable loss = model.Loss(xs, ys, 8, 5);
    if (step == 0) first = loss.value()[0];
    last = loss.value()[0];
    opt.ZeroGrad();
    core::Backward(loss);
    train::ClipGradNorm(opt.params(), 1.0f);
    opt.Step();
  }
  EXPECT_LT(last, first * 0.3f) << first << " -> " << last;
}

TEST(IclRegressorTest, RejectsTooManyPairs) {
  util::Rng rng(5);
  InContextRegressor model(TinyConfig(), &rng);
  data::IclRegressionOptions dopts;
  dopts.dim = 2;
  auto ep = data::SampleIclEpisode(dopts, 7, &rng);
  EXPECT_DEATH(model.Predict(ep.xs, ep.ys, 1, 7), "max_pairs");
}

}  // namespace
}  // namespace llm::nn
