// Tests for the utility substrate: Status/StatusOr, Rng, Table, linalg.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "util/fault.h"
#include "util/linalg.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/table.h"

namespace llm::util {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, EveryCodeHasAName) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("missing"));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

Status FailsThrough() {
  LLM_RETURN_IF_ERROR(Status::Internal("inner"));
  return Status::OK();
}

TEST(StatusMacros, ReturnIfErrorPropagates) {
  Status s = FailsThrough();
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

StatusOr<int> MakeValue(bool ok) {
  if (!ok) return Status::InvalidArgument("no");
  return 7;
}

Status UsesAssign(bool ok, int* out) {
  LLM_ASSIGN_OR_RETURN(int v, MakeValue(ok));
  *out = v;
  return Status::OK();
}

TEST(StatusMacros, AssignOrReturn) {
  int out = 0;
  EXPECT_TRUE(UsesAssign(true, &out).ok());
  EXPECT_EQ(out, 7);
  EXPECT_FALSE(UsesAssign(false, &out).ok());
}

// Regression: LLM_ASSIGN_OR_RETURN used to be hazardous around if/else —
// its internal `if` could capture a dangling `else`, and two expansions on
// one line collided on the temporary's name. These functions exercise the
// shapes that used to be pitfalls; compiling them is half the test.
Status AssignInBothBranches(bool which, bool ok, int* out) {
  if (which) {
    LLM_ASSIGN_OR_RETURN(int v, MakeValue(ok));
    *out = v + 1;
  } else {
    LLM_ASSIGN_OR_RETURN(int v, MakeValue(ok));
    *out = v + 2;
  }
  return Status::OK();
}

// clang-format off
Status TwoAssignsOnOneLine(int* out) {
  LLM_ASSIGN_OR_RETURN(int a, MakeValue(true)); LLM_ASSIGN_OR_RETURN(int b, MakeValue(true));
  *out = a + b;
  return Status::OK();
}
// clang-format on

Status ReturnIfErrorUnbracedIfElse(bool which) {
  // LLM_RETURN_IF_ERROR is a single statement (do/while), so it is legal
  // as an unbraced if/else body and must not swallow the else.
  if (which)
    LLM_RETURN_IF_ERROR(Status::Internal("left"));
  else
    LLM_RETURN_IF_ERROR(Status::NotFound("right"));
  return Status::OK();
}

TEST(StatusMacros, AssignOrReturnInsideIfElse) {
  int out = 0;
  EXPECT_TRUE(AssignInBothBranches(true, true, &out).ok());
  EXPECT_EQ(out, 8);
  EXPECT_TRUE(AssignInBothBranches(false, true, &out).ok());
  EXPECT_EQ(out, 9);
  EXPECT_EQ(AssignInBothBranches(true, false, &out).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(AssignInBothBranches(false, false, &out).code(),
            StatusCode::kInvalidArgument);
}

TEST(StatusMacros, TwoAssignsOnOneLineDoNotCollide) {
  int out = 0;
  EXPECT_TRUE(TwoAssignsOnOneLine(&out).ok());
  EXPECT_EQ(out, 14);
}

TEST(StatusMacros, ReturnIfErrorKeepsIfElsePairing) {
  EXPECT_EQ(ReturnIfErrorUnbracedIfElse(true).code(), StatusCode::kInternal);
  EXPECT_EQ(ReturnIfErrorUnbracedIfElse(false).code(),
            StatusCode::kNotFound);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  EXPECT_NE(a.NextU64(), b.NextU64());
}

TEST(RngTest, UniformInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeUniformly) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.UniformInt(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, 500);  // ~5 sigma slack
  }
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(17);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(3);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) ++counts[rng.Categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.25);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(4);
  std::vector<int> v = {1, 2, 3, 4, 5};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(FaultInjectorTest, FiresAtExactOccurrences) {
  FaultInjector& fi = FaultInjector::Global();
  fi.ArmAt(FaultSite::kLossNaN, {1, 3});
  std::vector<bool> fired;
  for (int i = 0; i < 5; ++i) fired.push_back(MaybeInjectFault(FaultSite::kLossNaN));
  fi.Disarm();
  EXPECT_EQ(fired, (std::vector<bool>{false, true, false, true, false}));
  EXPECT_FALSE(MaybeInjectFault(FaultSite::kLossNaN));  // disarmed: no-op
}

TEST(FaultInjectorTest, SitesAreIndependent) {
  FaultInjector& fi = FaultInjector::Global();
  fi.ArmAt(FaultSite::kCheckpointWrite, {0});
  EXPECT_FALSE(MaybeInjectFault(FaultSite::kCheckpointRead));
  EXPECT_TRUE(MaybeInjectFault(FaultSite::kCheckpointWrite));
  EXPECT_EQ(fi.Fired(FaultSite::kCheckpointWrite), 1);
  EXPECT_EQ(fi.Fired(FaultSite::kCheckpointRead), 0);
  fi.Disarm();
}

TEST(FaultInjectorTest, RandomPlanIsDeterministicPerSeed) {
  FaultInjector& fi = FaultInjector::Global();
  auto draw = [&] {
    fi.ArmRandom(FaultSite::kGradExplode, 0.3, /*seed=*/77);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(MaybeInjectFault(FaultSite::kGradExplode));
    }
    return fired;
  };
  const auto a = draw();
  const auto b = draw();
  fi.Disarm();
  EXPECT_EQ(a, b);
  EXPECT_GT(std::count(a.begin(), a.end(), true), 0);
  EXPECT_LT(std::count(a.begin(), a.end(), true), 64);
}

TEST(TableTest, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22222"});
  std::ostringstream os;
  t.Print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
  EXPECT_NE(s.find("22222"), std::string::npos);
}

TEST(TableTest, CsvRoundTrip) {
  Table t({"a", "b"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n");
}

TEST(FormatTest, CountSuffixes) {
  EXPECT_EQ(FormatCount(110e6), "110M");
  EXPECT_EQ(FormatCount(1.5e9), "1.5B");
  EXPECT_EQ(FormatCount(1.4e12), "1.4T");
  EXPECT_EQ(FormatCount(512), "512");
}

TEST(LinalgTest, SolvesSystem) {
  // x + 2y = 5; 3x - y = 1  ->  x = 1, y = 2.
  std::vector<std::vector<double>> a = {{1, 2}, {3, -1}};
  std::vector<double> b = {5, 1};
  std::vector<double> x;
  ASSERT_TRUE(SolveLinearSystem(a, b, &x));
  EXPECT_NEAR(x[0], 1.0, 1e-9);
  EXPECT_NEAR(x[1], 2.0, 1e-9);
}

TEST(LinalgTest, DetectsSingular) {
  std::vector<std::vector<double>> a = {{1, 2}, {2, 4}};
  std::vector<double> b = {1, 2};
  std::vector<double> x;
  EXPECT_FALSE(SolveLinearSystem(a, b, &x));
}

}  // namespace
}  // namespace llm::util
