// dist_demo: partition-tolerant multi-process training, live.
//
// Launches a world-2 gang of REAL worker processes (examples/dist_worker)
// over a Unix-domain socket, waits for the first mid-run checkpoint, then
// SIGKILLs rank 1 — no destructors, no goodbye frame, a dead connection on
// the wire. The coordinator's monitor notices (transport disconnect or
// wait-status), fences the epoch, SIGKILLs the survivor, and respawns the
// gang from the newest checkpoint. The demo then replays the identical
// schedule on the in-process thread transport and shows the faulted
// multi-process run finished bit-identical to the unfaulted baseline.
//
// Usage: dist_demo [path/to/dist_worker]
//   (defaults to the dist_worker binary next to this one)
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>

#include "obs/flight_recorder.h"
#include "train/checkpoint.h"
#include "train/dist/dist_trainer.h"
#include "train/dist/proc_group.h"
#include "train/dist/toy_task.h"

namespace {

using namespace llm;               // NOLINT
using namespace llm::train;        // NOLINT
using namespace llm::train::dist;  // NOLINT

constexpr int64_t kMaxSteps = 400;
constexpr int64_t kCheckpointEvery = 25;
constexpr uint64_t kSeed = 0x5eedULL;

float MaxParamDiff(const nn::Module& a, const nn::Module& b) {
  auto pa = a.NamedParameters();
  auto pb = b.NamedParameters();
  float worst = 0.0f;
  for (size_t i = 0; i < pa.size() && i < pb.size(); ++i) {
    worst = std::max(worst, core::Tensor::MaxAbsDiff(pa[i].second.value(),
                                                     pb[i].second.value()));
  }
  return worst;
}

// The transport/proc slice of the flight recorder: the post-incident
// record of death -> fence -> respawn -> recovery, exactly as a production
// incident review would read it.
void PrintFlightExcerpt() {
  std::printf("\n--- flight recorder excerpt (dist/transport events) ---\n");
  const auto events = obs::FlightRecorder::Global().Dump();
  int64_t t0 = -1;
  for (const auto& ev : events) {
    switch (ev.type) {
      case obs::FlightEventType::kProcSpawn:
      case obs::FlightEventType::kWorkerDeath:
      case obs::FlightEventType::kDistRecovery:
      case obs::FlightEventType::kTransportConnect:
      case obs::FlightEventType::kTransportDisconnect:
      case obs::FlightEventType::kTransportFence:
      case obs::FlightEventType::kCheckpointSaved:
        break;
      default:
        continue;
    }
    if (t0 < 0) t0 = ev.ts_ns;
    std::printf("  +%8.3fms  %-20s a=%d b=%lld c=%lld\n",
                static_cast<double>(ev.ts_ns - t0) / 1e6,
                obs::FlightEventTypeName(ev.type), ev.a,
                static_cast<long long>(ev.b), static_cast<long long>(ev.c));
  }
  std::printf("-------------------------------------------------------\n");
}

std::string ScratchDir(const char* leaf) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("tfmr_dist_demo_" + std::to_string(::getpid())) / leaf;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

}  // namespace

int main(int argc, char** argv) {
  std::string worker_bin;
  if (argc > 1) {
    worker_bin = argv[1];
  } else {
    worker_bin = (std::filesystem::path(argv[0]).parent_path() /
                  "dist_worker").string();
  }
  if (!std::filesystem::exists(worker_bin)) {
    std::fprintf(stderr, "dist_demo: worker binary not found: %s\n",
                 worker_bin.c_str());
    return 1;
  }

  std::printf("== dist_demo: world-2 over a Unix socket, real processes ==\n");
  std::printf("worker binary: %s\n", worker_bin.c_str());

  ProcGroupOptions options;
  options.world_size = 2;
  options.max_steps = kMaxSteps;
  options.checkpoint_every = kCheckpointEvery;
  options.checkpoint_dir = ScratchDir("proc");
  options.worker_binary = worker_bin;
  options.seed = kSeed;
  ProcGroupCoordinator gang(options, ToyModelFactory(), ToyAdamWOptions());

  std::thread killer([&] {
    // Wait for the run to pass its first mid-run checkpoint, then SIGKILL
    // rank 1 mid-epoch.
    const std::string step0 =
        options.checkpoint_dir + "/" + CheckpointFileName(0);
    for (int i = 0; i < 4000; ++i) {
      auto latest = LatestCheckpoint(options.checkpoint_dir);
      if (latest.ok() && latest.value() != step0) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    if (gang.KillRank(1)) {
      std::printf(">> SIGKILLed rank 1 mid-epoch\n");
    } else {
      std::printf(">> rank 1 already gone; no kill delivered\n");
    }
  });

  util::Status verdict = gang.Run();
  killer.join();
  std::printf("proc-group verdict: %s  (recoveries: %d)\n",
              verdict.ToString().c_str(), gang.recoveries());
  if (!gang.incidents().empty()) {
    std::printf("incident log:\n%s", gang.FormatIncidents().c_str());
  }
  // The structured postmortems: each report's merged gang timeline
  // interleaves the dead rank's final shipped events with the
  // coordinator's detection and recovery events.
  for (const obs::IncidentReport& report : gang.incident_reports()) {
    std::printf("\n--- incident report ---\n%s", report.Format().c_str());
  }
  PrintFlightExcerpt();
  if (!verdict.ok()) return 1;

  // Unfaulted baseline: same task, same seed, same step count, in-process
  // thread transport. Bit-exact replay means the killed run's final
  // weights must match exactly.
  std::printf("\nreplaying unfaulted baseline on the thread transport...\n");
  DistTrainerOptions base;
  base.world_size = 2;
  base.max_steps = kMaxSteps;
  base.adamw = ToyAdamWOptions();
  base.checkpoint_dir = ScratchDir("thread");
  base.checkpoint_every = kCheckpointEvery;
  base.seed = kSeed;
  DistTrainer baseline(base, ToyModelFactory(), ToyDistLoss());
  util::Status base_verdict = baseline.Run();
  if (!base_verdict.ok()) {
    std::fprintf(stderr, "baseline failed: %s\n",
                 base_verdict.ToString().c_str());
    return 1;
  }

  auto load_final = [](const std::string& dir) {
    std::unique_ptr<nn::Module> m = MakeToyReplica();
    auto latest = LatestCheckpoint(dir);
    if (!latest.ok() ||
        !LoadCheckpoint(m.get(), latest.value(), nullptr).ok()) {
      m.reset();
    }
    return m;
  };
  std::unique_ptr<nn::Module> proc_model =
      load_final(options.checkpoint_dir);
  std::unique_ptr<nn::Module> thread_model = load_final(base.checkpoint_dir);
  if (!proc_model || !thread_model) {
    std::fprintf(stderr, "failed to load final checkpoints for diff\n");
    return 1;
  }
  const float diff = MaxParamDiff(*proc_model, *thread_model);
  std::printf(
      "max |param diff| faulted-proc vs unfaulted-thread: %.9g  -> %s\n",
      diff, diff == 0.0f ? "BIT-EXACT" : "MISMATCH");

  std::filesystem::remove_all(std::filesystem::temp_directory_path() /
                              ("tfmr_dist_demo_" + std::to_string(::getpid())));
  return diff == 0.0f ? 0 : 1;
}
