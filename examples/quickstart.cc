// Quickstart: train a tiny GPT on a PCFG-generated corpus and sample from
// it — the paper's whole pipeline (§3, §6) in ~60 lines of user code.
//
//   1. Generate a synthetic corpus from a toy-English PCFG.
//   2. Build a GPTModel and train it with AdamW on next-token prediction
//      (Eq. 3 / Eq. 16).
//   3. Report held-out perplexity.
//   4. Generate text at a couple of temperatures (Eq. 8).
#include <cstdio>

#include "data/pcfg_corpus.h"
#include "eval/lm_eval.h"
#include "nn/transformer.h"
#include "sample/sampler.h"
#include "text/dataset.h"
#include "train/trainer.h"
#include "util/ascii_chart.h"

int main() {
  using namespace llm;

  // 1. Data: sentences like "the big dog chases a cat", flattened into a
  // token stream with a separator token.
  util::Rng rng(42);
  grammar::Grammar g = data::ToyEnglishGrammar();
  data::PcfgCorpusOptions copts;
  copts.num_sentences = 1500;
  auto samples = data::SamplePcfgCorpus(g, copts, &rng);
  const int sep = g.num_terminals();
  std::vector<int64_t> stream = data::FlattenToStream(samples, sep);
  auto [train_tokens, test_tokens] = text::SplitTokens(stream, 0.1);

  const int64_t seq_len = 32;
  text::TokenDataset train_set(train_tokens, seq_len);
  text::TokenDataset test_set(test_tokens, seq_len);
  std::printf("corpus: %lld train tokens, %lld test tokens, vocab %d\n",
              static_cast<long long>(train_set.num_tokens()),
              static_cast<long long>(test_set.num_tokens()),
              g.num_terminals() + 1);

  // 2. Model: a 2-layer, 64-dim GPT.
  nn::GPTConfig cfg;
  cfg.vocab_size = g.num_terminals() + 1;
  cfg.max_seq_len = seq_len;
  cfg.d_model = 64;
  cfg.n_layer = 2;
  cfg.n_head = 2;
  nn::GPTModel model(cfg, &rng);
  std::printf("model: %lld parameters\n",
              static_cast<long long>(model.NumParameters()));

  // 3. Train.
  train::AdamWOptions aopts;
  aopts.lr = 3e-3f;
  train::AdamW opt(model.Parameters(), aopts);
  train::TrainerOptions topts;
  topts.max_steps = 300;
  topts.clip_norm = 1.0f;
  topts.log_every = 100;
  train::Trainer trainer(&opt, topts);
  const int64_t B = 8;
  trainer.Run([&] {
    std::vector<int64_t> inputs, targets;
    train_set.SampleBatch(&rng, B, &inputs, &targets);
    return model.LmLoss(inputs, targets, B, seq_len);
  });

  // Training curve, rendered in the terminal (losses from the trainer's
  // step history).
  std::vector<double> curve;
  for (const auto& rec : trainer.history()) {
    curve.push_back(static_cast<double>(rec.loss));
  }
  util::AsciiChart chart(60, 10);
  chart.AddSeries('*', curve, "training loss (nats/token)");
  std::printf("\n%s\n", chart.Render().c_str());

  const auto result = eval::EvaluateGpt(model, test_set, 16);
  std::printf("held-out: cross-entropy %.3f nats/token, perplexity %.2f\n",
              result.cross_entropy, result.perplexity);

  // 4. Sample (the separator makes a natural prompt = sentence start).
  for (float temp : {0.7f, 1.0f}) {
    sample::GenerateOptions gopts;
    gopts.max_new_tokens = 12;
    gopts.sampler.temperature = temp;
    std::vector<int64_t> out =
        sample::Generate(model, {sep}, gopts, &rng);
    std::printf("T=%.1f:", static_cast<double>(temp));
    for (int64_t id : out) {
      std::printf(" %s", id == sep ? "|" : g.TerminalName(
                                               static_cast<int>(id)).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
