// Serving quickstart: run a model behind the continuous-batching
// InferenceServer (paper §6 — production inference batches concurrent
// requests over pooled KV caches).
//
//   1. Train a tiny GPT to memorize a cyclic token sequence.
//   2. Start an InferenceServer: bounded admission queue, pooled KV slots,
//      continuous batching, worker threads.
//   3. Submit concurrent requests with streaming callbacks — tokens print
//      as they are generated, interleaved across requests.
//   4. Demonstrate cancellation, a deadline, and the stats snapshot.
//   5. Resilience: retry overload rejections with capped backoff, check
//      Health(), and take the server down gracefully with Drain().
//
// Every request's output is bit-identical to a dedicated single-stream
// session with the same seed, whatever else shares the batch.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/fleet/replica_router.h"
#include "serve/inference_server.h"
#include "text/vocab.h"
#include "train/checkpoint.h"
#include "train/optimizer.h"

int main() {
  using namespace llm;

  // 1. A model worth streaming from: memorize the cycle 0 1 2 ... 7.
  nn::GPTConfig cfg;
  cfg.vocab_size = 8;
  cfg.max_seq_len = 24;
  cfg.d_model = 32;
  cfg.n_layer = 2;
  cfg.n_head = 2;
  util::Rng rng(3);
  nn::GPTModel model(cfg, &rng);
  {
    std::vector<int64_t> tokens = {0, 1, 2, 3, 4, 5, 6, 7};
    std::vector<int64_t> targets = {1, 2, 3, 4, 5, 6, 7, 0};
    train::AdamWOptions aopts;
    aopts.lr = 1e-2f;
    train::AdamW opt(model.Parameters(), aopts);
    for (int step = 0; step < 150; ++step) {
      core::Variable loss = model.LmLoss(tokens, targets, 1, 8);
      opt.ZeroGrad();
      core::Backward(loss);
      opt.Step();
    }
  }
  std::printf("model trained to continue the cycle 0 1 2 ... 7\n\n");

  // 2. The server: 4 KV slots, bounded queue, one worker thread.
  serve::ServerOptions options;
  options.max_batch_size = 4;
  options.num_workers = 1;
  options.queue_capacity = 16;
  serve::InferenceServer server(&model, options);
  server.Start();

  // 3. Concurrent streaming requests starting at different cycle points.
  // The callback runs on the scheduler thread as each token is produced;
  // the interleaved output is continuous batching made visible.
  std::mutex print_mu;
  std::vector<serve::GenerateRequest> requests;
  for (int64_t start = 0; start < 3; ++start) {
    serve::GenerateRequest request;
    request.prompt = {start};
    request.max_new_tokens = 8;
    request.sampler.temperature = 0.0f;  // greedy: the memorized continuation
    request.seed = static_cast<uint64_t>(start);
    request.on_token = [&print_mu](serve::RequestId id, int64_t token) {
      std::lock_guard<std::mutex> lock(print_mu);
      std::printf("  [request %llu] streamed token %lld\n",
                  static_cast<unsigned long long>(id),
                  static_cast<long long>(token));
    };
    requests.push_back(std::move(request));
  }
  std::vector<serve::RequestId> ids;
  for (const auto& request : requests) {
    auto id = server.Submit(request);
    if (!id.ok()) {
      std::fprintf(stderr, "submit failed: %s\n",
                   id.status().ToString().c_str());
      return 1;
    }
    ids.push_back(id.value());
  }
  for (serve::RequestId id : ids) {
    auto result = server.Wait(id);
    if (!result.ok()) return 1;
    std::printf("request %llu finished (%s):",
                static_cast<unsigned long long>(id),
                serve::FinishReasonName(result.value().reason));
    for (int64_t t : result.value().tokens) {
      std::printf(" %lld", static_cast<long long>(t));
    }
    std::printf("   [queue %.1fms, total %.1fms]\n",
                result.value().queue_ms, result.value().total_ms);
  }

  // 4a. Cancellation: submit a long request, cancel it immediately.
  {
    serve::GenerateRequest request;
    request.prompt = {0};
    request.max_new_tokens = 20;
    auto id = server.Submit(request);
    if (!id.ok()) return 1;
    server.Cancel(id.value());
    auto result = server.Wait(id.value());
    if (!result.ok()) return 1;
    std::printf("\ncancelled request finished as '%s' with %zu tokens\n",
                serve::FinishReasonName(result.value().reason),
                result.value().tokens.size());
  }

  // 4b. Deadline: a 0.001s budget expires before (or just after)
  // admission; partial output is preserved.
  {
    serve::GenerateRequest request;
    request.prompt = {0};
    request.max_new_tokens = 20;
    request.timeout = std::chrono::milliseconds(1);
    auto result = server.GenerateBlocking(request);
    std::printf("1ms-deadline request finished as '%s' (%s)\n",
                serve::FinishReasonName(result.reason),
                result.status.ok() ? "ok" : result.status.ToString().c_str());
  }

  // 4c. Stats snapshot.
  const serve::ServerStats stats = server.Stats();
  std::printf(
      "\nstats: submitted %llu, completed %llu, cancelled %llu, expired "
      "%llu\n       tokens %llu (%.0f tok/s), p50 %.1fms p95 %.1fms p99 "
      "%.1fms, slots %lld/%lld\n",
      static_cast<unsigned long long>(stats.submitted),
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.cancelled),
      static_cast<unsigned long long>(stats.expired),
      static_cast<unsigned long long>(stats.total_tokens),
      stats.tokens_per_sec, stats.p50_latency_ms, stats.p95_latency_ms,
      stats.p99_latency_ms, static_cast<long long>(stats.active_slots),
      static_cast<long long>(stats.total_slots));

  // 5a. Overload-tolerant submission: SubmitWithRetry rides out
  // ResourceExhausted rejections with capped exponential backoff and
  // deterministic jitter (seed it per client so retries decorrelate).
  {
    serve::GenerateRequest request;
    request.prompt = {0};
    request.max_new_tokens = 8;
    serve::RetryOptions retry;
    retry.max_attempts = 5;
    retry.initial_backoff = std::chrono::milliseconds(2);
    retry.max_backoff = std::chrono::milliseconds(50);
    retry.jitter_seed = 42;
    auto id = server.SubmitWithRetry(request, retry);
    if (!id.ok()) return 1;
    auto result = server.Wait(id.value());
    if (!result.ok()) return 1;
    std::printf("\nSubmitWithRetry request finished as '%s' (%zu tokens), "
                "health: %s\n",
                serve::FinishReasonName(result.value().reason),
                result.value().tokens.size(),
                serve::ServerHealthName(server.Health()));
  }

  // 5b. Graceful shutdown: Drain closes admission immediately (new
  // Submits get FailedPrecondition), lets in-flight work finish, and
  // reports whether everything completed inside the timeout.
  {
    serve::GenerateRequest last;
    last.prompt = {4};
    last.max_new_tokens = 8;
    auto id = server.Submit(last);
    const util::Status drained = server.Drain(std::chrono::seconds(5));
    std::printf("drain: %s, health now '%s'\n",
                drained.ok() ? "all requests finished in time"
                             : drained.ToString().c_str(),
                serve::ServerHealthName(server.Health()));
    if (id.ok()) {
      auto result = server.Wait(id.value());
      if (result.ok()) {
        std::printf("request submitted before drain finished as '%s'\n",
                    serve::FinishReasonName(result.value().reason));
      }
    }
    auto refused = server.Submit(last);
    std::printf("submit after drain: %s\n",
                refused.ok() ? "accepted (bug!)"
                             : refused.status().ToString().c_str());
  }
  server.Shutdown();  // idempotent after Drain

  // 5c. Multi-tenant overload: chat outranks batch outranks background.
  // Batch and background are sheddable and preemptible under the default
  // policy; here background also gets a tight token quota. Two slow batch
  // decodes hold both KV slots and two more fill the queue — then a chat
  // request arrives and the server makes room at batch's expense: the
  // newest queued batch request is shed, the deepest running batch decode
  // is preempted (keeping its partial output), and chat runs immediately.
  std::printf("\n--- multi-tenant overload ---\n");
  {
    serve::ServerOptions mt_options;
    mt_options.max_batch_size = 2;
    mt_options.num_workers = 1;
    mt_options.queue_capacity = 2;
    auto& background_policy = mt_options.tenants.classes[static_cast<size_t>(
        serve::TenantClass::kBackground)];
    background_policy.quota_tokens_per_sec = 0.01;  // effectively burst-only
    background_policy.quota_burst_tokens = 10.0;
    serve::InferenceServer mt(&model, mt_options);
    mt.Start();

    // Slow the batch decodes down (3ms per streamed token) so the slots
    // are still busy when chat shows up — a stand-in for long documents.
    auto make_batch = [] {
      serve::GenerateRequest request;
      request.prompt = {0};
      request.max_new_tokens = 20;
      request.sampler.temperature = 0.0f;
      request.tenant = serve::TenantClass::kBatch;
      request.on_token = [](serve::RequestId, int64_t) {
        std::this_thread::sleep_for(std::chrono::milliseconds(3));
      };
      return request;
    };
    std::vector<serve::RequestId> batch_ids;
    for (int i = 0; i < 2; ++i) {
      auto id = mt.Submit(make_batch());
      if (!id.ok()) return 1;
      batch_ids.push_back(id.value());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));  // decoding
    for (int i = 0; i < 2; ++i) {
      auto id = mt.Submit(make_batch());  // parks in the bounded queue
      if (!id.ok()) return 1;
      batch_ids.push_back(id.value());
    }

    serve::GenerateRequest chat;
    chat.prompt = {0};
    chat.max_new_tokens = 4;
    chat.sampler.temperature = 0.0f;
    chat.tenant = serve::TenantClass::kChat;
    serve::RequestResult chat_result = mt.GenerateBlocking(chat);
    std::printf("chat under full load: '%s' in %.1fms (queued %.1fms)\n",
                serve::FinishReasonName(chat_result.reason),
                chat_result.total_ms, chat_result.queue_ms);
    for (serve::RequestId id : batch_ids) {
      auto result = mt.Wait(id);
      if (!result.ok()) return 1;
      std::printf("  batch request %llu: '%s' with %zu/20 tokens\n",
                  static_cast<unsigned long long>(id),
                  serve::FinishReasonName(result.value().reason),
                  result.value().tokens.size());
    }

    // Background rides the quota: the first request fits the burst
    // budget, the second is refused at the door before touching the queue.
    serve::GenerateRequest background;
    background.prompt = {0};
    background.max_new_tokens = 8;  // charge = 1 prompt + 8 output = 9 <= 10
    background.sampler.temperature = 0.0f;
    background.tenant = serve::TenantClass::kBackground;
    auto bg_ok = mt.Submit(background);
    auto bg_refused = mt.Submit(background);
    std::printf("background #1: %s; background #2: %s\n",
                bg_ok.ok() ? "admitted" : bg_ok.status().ToString().c_str(),
                bg_refused.ok() ? "admitted (bug!)"
                                : bg_refused.status().ToString().c_str());
    if (bg_ok.ok() && !mt.Wait(bg_ok.value()).ok()) return 1;

    const serve::ServerStats mt_stats = mt.Stats();
    for (size_t c = 0; c < serve::kNumTenantClasses; ++c) {
      const serve::TenantClassStats& cs = mt_stats.classes[c];
      std::printf("  [%-10s] submitted %llu completed %llu shed %llu "
                  "preempted %llu quota-rejected %llu p99 TTFT %.1fms\n",
                  serve::TenantClassName(
                      static_cast<serve::TenantClass>(c)),
                  static_cast<unsigned long long>(cs.submitted),
                  static_cast<unsigned long long>(cs.completed),
                  static_cast<unsigned long long>(cs.shed),
                  static_cast<unsigned long long>(cs.preempted),
                  static_cast<unsigned long long>(cs.quota_rejected),
                  cs.p99_ttft_ms);
    }
    mt.Shutdown();
  }

  // 6. The fleet: the same model behind a ReplicaRouter — two replicas,
  // each with a private weight copy, KV pool, and scheduler, fronted by
  // health-routed failover, circuit breakers, and rolling reload.
  std::printf("\n--- fleet ---\n");
  serve::FleetOptions fleet_options;
  fleet_options.num_replicas = 2;
  fleet_options.server = options;
  serve::ReplicaRouter fleet(model, fleet_options);
  fleet.Start();

  // 6a. A serving-facing prompt path: untrusted text goes through
  // Vocab::TryEncode, which reports unknown tokens as a Status instead of
  // growing the vocabulary (or aborting) the way the training-side
  // Encode does.
  text::Vocab vocab;
  for (const char* word :
       {"zero", "one", "two", "three", "four", "five", "six", "seven"}) {
    vocab.AddToken(word);
  }
  {
    auto bad = vocab.TryEncode({"three", "fnord"});
    std::printf("TryEncode(\"three fnord\"): %s\n",
                bad.ok() ? "accepted (bug!)" : bad.status().ToString().c_str());
  }
  auto encoded = vocab.TryEncode({"three"});
  if (!encoded.ok()) return 1;

  auto submit_cycle = [&fleet, &encoded](uint64_t seed) {
    serve::GenerateRequest request;
    request.prompt = encoded.value();  // {3}: continue 4 5 6 7 ...
    request.max_new_tokens = 6;
    request.sampler.temperature = 0.0f;
    request.seed = seed;
    return fleet.GenerateBlocking(std::move(request));
  };
  serve::RequestResult fleet_result = submit_cycle(1);
  std::printf("fleet request finished as '%s':",
              serve::FinishReasonName(fleet_result.reason));
  for (int64_t t : fleet_result.tokens) {
    std::printf(" %s", vocab.TokenOf(t).c_str());
  }
  std::printf("\n");

  // 6b. Kill a replica mid-flight: the router ejects it from rotation and
  // the surviving replica serves the same bits.
  fleet.KillReplica(0);
  serve::RequestResult after_kill = submit_cycle(1);
  std::printf("after KillReplica(0): '%s', output %s\n",
              serve::FinishReasonName(after_kill.reason),
              after_kill.tokens == fleet_result.tokens
                  ? "bit-identical to before the kill"
                  : "DIVERGED (bug!)");

  // 6c. Zero-downtime rolling reload from a validated checkpoint: the
  // live replica drains, validates, swaps, canaries, and re-admits.
  const std::string ckpt_dir =
      (std::filesystem::temp_directory_path() / "tfmr_serve_demo").string();
  std::filesystem::create_directories(ckpt_dir);
  const std::string ckpt = ckpt_dir + "/" + train::CheckpointFileName(150);
  if (!train::SaveCheckpoint(model, ckpt).ok()) return 1;
  const util::Status reloaded = fleet.ReloadModel(ckpt);
  std::printf("rolling reload: %s (replica 1 now weights v%llu, phase %s)\n",
              reloaded.ok() ? "ok" : reloaded.ToString().c_str(),
              static_cast<unsigned long long>(fleet.replica_weights_version(1)),
              serve::ReplicaPhaseName(fleet.replica_phase(1)));

  const serve::FleetStats fleet_stats = fleet.Stats();
  std::printf("fleet stats: submitted %llu, completed %llu, failed %llu, "
              "failovers %llu, reloads %llu\n",
              static_cast<unsigned long long>(fleet_stats.submitted),
              static_cast<unsigned long long>(fleet_stats.completed),
              static_cast<unsigned long long>(fleet_stats.failed),
              static_cast<unsigned long long>(fleet_stats.failovers),
              static_cast<unsigned long long>(fleet_stats.reloads));

  const util::Status fleet_drained = fleet.Drain(std::chrono::seconds(5));
  std::printf("fleet drain: %s\n", fleet_drained.ok()
                                       ? "all requests finished in time"
                                       : fleet_drained.ToString().c_str());
  std::filesystem::remove_all(ckpt_dir);

  // 7. Observability: one traced request through a fresh two-replica
  // fleet whose first replica is poisoned, so the trace captures a real
  // failover — attempt 1 on replica 0 is lost to the injected fault,
  // attempt 2 on replica 1 wins, and the client streams one clean prefix.
  std::printf("\n--- observability: traced request with forced failover ---\n");
  serve::ReplicaRouter traced_fleet(model, fleet_options);
  traced_fleet.Start();
  traced_fleet.PoisonReplica(0, true);
  {
    serve::GenerateRequest request;
    request.prompt = encoded.value();
    request.max_new_tokens = 6;
    request.sampler.temperature = 0.0f;
    request.seed = 1;
    request.trace = true;
    serve::RequestResult result = traced_fleet.GenerateBlocking(request);
    std::printf("traced request finished as '%s' after %llu failover(s):",
                serve::FinishReasonName(result.reason),
                static_cast<unsigned long long>(
                    traced_fleet.Stats().failovers));
    for (int64_t t : result.tokens) {
      std::printf(" %s", vocab.TokenOf(t).c_str());
    }
    std::printf("\n\n");
    if (result.trace != nullptr) {
      std::printf("%s", obs::FormatTrace(*result.trace).c_str());
    }
    std::printf("\nflight recorder (newest events last):\n%s",
                obs::FlightRecorder::Global().Format(12).c_str());
    serve::ExportFleetStats(traced_fleet.Stats(), "fleet",
                            &obs::MetricsRegistry::Global());
    std::printf("\nMETRICS %s\n",
                obs::MetricsRegistry::Global().JsonSnapshot().c_str());
  }
  if (!traced_fleet.Drain(std::chrono::seconds(5)).ok()) return 1;
  return 0;
}
