// Chain-of-thought demo (paper Fig. 1 and §3): two identical models are
// trained on the same modular-sum word problems; one sees only final
// answers, the other sees the intermediate partial sums spelled out.
// Then both solve fresh problems by greedy generation, and we print the
// full generated "reasoning" text.
#include <cstdio>

#include "data/word_problems.h"
#include "nn/transformer.h"
#include "sample/sampler.h"
#include "train/optimizer.h"

namespace {

llm::nn::GPTModel Train(const llm::data::WordProblemDataset& ds,
                        llm::util::Rng* rng, int steps) {
  llm::nn::GPTConfig cfg;
  cfg.vocab_size = ds.vocab_size();
  cfg.max_seq_len = 2 * ds.seq_len();
  cfg.d_model = 48;
  cfg.n_layer = 2;
  cfg.n_head = 4;
  llm::nn::GPTModel model(cfg, rng);
  llm::train::AdamWOptions aopts;
  aopts.lr = 2e-3f;
  llm::train::AdamW opt(model.Parameters(), aopts);
  for (int step = 0; step < steps; ++step) {
    std::vector<int64_t> inputs, targets;
    ds.SampleBatch(rng, 16, &inputs, &targets);
    llm::core::Variable loss = llm::core::CrossEntropyLogits(
        model.ForwardLogits(inputs, 16, ds.seq_len()), targets);
    opt.ZeroGrad();
    llm::core::Backward(loss);
    opt.Step();
  }
  return model;
}

std::string TokenName(const llm::data::WordProblemDataset& ds, int64_t t) {
  if (t < ds.options().modulus) return std::to_string(t);
  if (t == ds.plus_token()) return "+";
  if (t == ds.eq_token()) return "=";
  if (t == ds.sep_token()) return ";";
  return "END";
}

void Solve(const llm::nn::GPTModel& model,
           const llm::data::WordProblemDataset& ds,
           const llm::data::WordProblemDataset::Problem& p,
           llm::util::Rng* rng) {
  llm::sample::GenerateOptions gopts;
  gopts.max_new_tokens = ds.seq_len();
  gopts.sampler.temperature = 0.0f;
  gopts.stop_token = ds.end_token();
  auto out = llm::sample::Generate(model, ds.EncodePrompt(p), gopts, rng);
  std::printf("  problem %-28s  model says: ", ds.ToString(p).c_str());
  int64_t final_number = -1;
  for (int64_t t : out) {
    std::printf("%s ", TokenName(ds, t).c_str());
    if (t < ds.options().modulus) final_number = t;
    if (t == ds.end_token()) break;
  }
  std::printf(" -> %s\n", final_number == p.answer ? "CORRECT" : "wrong");
}

}  // namespace

int main() {
  llm::util::Rng rng(6);
  llm::data::WordProblemOptions plain_opts;
  plain_opts.modulus = 11;
  plain_opts.terms = 4;
  plain_opts.chain_of_thought = false;
  llm::data::WordProblemOptions cot_opts = plain_opts;
  cot_opts.chain_of_thought = true;

  llm::data::WordProblemDataset plain_ds(plain_opts);
  llm::data::WordProblemDataset cot_ds(cot_opts);

  std::puts("training the answer-only model (no chain of thought)...");
  auto plain = Train(plain_ds, &rng, 600);
  std::puts("training the chain-of-thought model...");
  auto cot = Train(cot_ds, &rng, 600);

  std::puts("\n--- answer-only model (must compute the 4-term sum in one "
            "prediction) ---");
  llm::util::Rng eval_rng(99);
  for (int i = 0; i < 4; ++i) {
    Solve(plain, plain_ds, plain_ds.SampleProblem(&eval_rng), &eval_rng);
  }
  std::puts("\n--- chain-of-thought model (emits running partial sums) ---");
  llm::util::Rng eval_rng2(99);
  for (int i = 0; i < 4; ++i) {
    Solve(cot, cot_ds, cot_ds.SampleProblem(&eval_rng2), &eval_rng2);
  }
  std::puts("\nSame architecture, same budget: spelling out intermediate"
            "\nsteps converts one hard prediction into several easy ones"
            "\n(the paper's Fig. 1 / Minerva point, in miniature).");
  return 0;
}
