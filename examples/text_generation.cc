// Decoding-strategy tour (paper Eq. 8 and §3): one trained model, four
// ways to turn its next-token distribution into text — greedy,
// temperature, top-k, and nucleus sampling — plus a BPE detour showing
// sub-word tokenization on a novel word (the paper's
// "supersymmetrization" example).
#include <cstdio>

#include "data/pcfg_corpus.h"
#include "nn/transformer.h"
#include "sample/sampler.h"
#include "text/bpe.h"
#include "text/dataset.h"
#include "train/trainer.h"

int main() {
  using namespace llm;
  util::Rng rng(12);

  // Train a small LM on toy English.
  grammar::Grammar g = data::ToyEnglishGrammar();
  data::PcfgCorpusOptions copts;
  copts.num_sentences = 2500;
  auto corpus = data::SamplePcfgCorpus(g, copts, &rng);
  const int sep = g.num_terminals();
  std::vector<int64_t> stream = data::FlattenToStream(corpus, sep);
  text::TokenDataset train_set(stream, 24);

  nn::GPTConfig cfg;
  cfg.vocab_size = g.num_terminals() + 1;
  cfg.max_seq_len = 24;
  cfg.d_model = 64;
  cfg.n_layer = 2;
  cfg.n_head = 4;
  nn::GPTModel model(cfg, &rng);
  std::puts("training a 2-layer GPT on toy English...");
  train::AdamWOptions aopts;
  aopts.lr = 3e-3f;
  train::AdamW opt(model.Parameters(), aopts);
  train::TrainerOptions topts;
  topts.max_steps = 500;
  topts.clip_norm = 1.0f;
  train::Trainer trainer(&opt, topts);
  trainer.Run([&] {
    std::vector<int64_t> inputs, targets;
    train_set.SampleBatch(&rng, 8, &inputs, &targets);
    return model.LmLoss(inputs, targets, 8, 24);
  });

  auto show = [&](const char* label, sample::SamplerOptions sopts) {
    sample::GenerateOptions gopts;
    gopts.max_new_tokens = 14;
    gopts.sampler = sopts;
    std::printf("%-22s:", label);
    for (int64_t id : sample::Generate(model, {sep}, gopts, &rng)) {
      std::printf(" %s", id == sep ? "|"
                                   : g.TerminalName(static_cast<int>(id))
                                         .c_str());
    }
    std::printf("\n");
  };

  std::puts("\nthe same model under different decoders (Eq. 8):");
  sample::SamplerOptions greedy;
  greedy.temperature = 0.0f;
  show("greedy (T -> 0)", greedy);
  sample::SamplerOptions cool;
  cool.temperature = 0.7f;
  show("temperature 0.7", cool);
  sample::SamplerOptions hot;
  hot.temperature = 1.5f;
  show("temperature 1.5", hot);
  sample::SamplerOptions topk;
  topk.top_k = 5;
  show("top-k (k = 5)", topk);
  sample::SamplerOptions nucleus;
  nucleus.top_p = 0.8f;
  show("nucleus (p = 0.8)", nucleus);

  // BPE detour: sub-word tokenization on a word never seen whole.
  std::puts("\nBPE on a novel compound (the paper's 'supersymmetrization'"
            " example):");
  std::string bpe_corpus;
  for (int i = 0; i < 40; ++i) {
    bpe_corpus += "super symmetry symmetric ization organization ";
  }
  text::Bpe bpe;
  bpe.Train(bpe_corpus, 60);
  std::printf("  supersymmetrization ->");
  for (const auto& s : bpe.EncodeWord("supersymmetrization")) {
    std::printf(" [%s]", s.c_str());
  }
  std::printf("\n");
  return 0;
}
