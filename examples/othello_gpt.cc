// Othello-GPT in miniature (paper §7, Li et al. [78]): train a GPT on
// random legal Othello games — move tokens only, no board ever shown —
// then watch it (a) assign most of its probability mass to legal moves
// and (b) reveal a linearly-decodable board state in its residual stream.
//
// This example is the narrative version of bench_othello_probe: one
// model, one game walked through move by move with the engine's board,
// the model's top predictions, and a probe readout side by side.
#include <cstdio>
#include <iostream>

#include "interp/probe.h"
#include "nn/transformer.h"
#include "othello/othello.h"
#include "sample/sampler.h"
#include "train/optimizer.h"

int main() {
  using namespace llm;
  util::Rng rng(21);
  constexpr int64_t kMoves = 12;

  std::puts("generating 500 random legal Othello games...");
  auto games = othello::RandomGames(500, &rng);
  std::vector<std::vector<int64_t>> sequences;
  for (const auto& g : games) {
    if (g.moves.size() >= kMoves) {
      sequences.emplace_back(g.moves.begin(), g.moves.begin() + kMoves);
    }
  }

  nn::GPTConfig cfg;
  cfg.vocab_size = 64;
  cfg.max_seq_len = kMoves;
  cfg.d_model = 64;
  cfg.n_layer = 2;
  cfg.n_head = 4;
  nn::GPTModel model(cfg, &rng);
  std::printf("training Othello-GPT (%lld params) on %zu games...\n",
              static_cast<long long>(model.NumParameters()),
              sequences.size());

  train::AdamWOptions aopts;
  aopts.lr = 2e-3f;
  train::AdamW opt(model.Parameters(), aopts);
  for (int step = 0; step < 500; ++step) {
    std::vector<int64_t> inputs, targets;
    for (int b = 0; b < 8; ++b) {
      const auto& seq = sequences[rng.UniformInt(sequences.size())];
      for (int64_t t = 0; t < kMoves; ++t) {
        inputs.push_back(seq[static_cast<size_t>(t)]);
        targets.push_back(t + 1 < kMoves ? seq[static_cast<size_t>(t + 1)]
                                         : -1);
      }
    }
    core::Variable loss = core::CrossEntropyLogits(
        model.ForwardLogits(inputs, 8, kMoves), targets);
    opt.ZeroGrad();
    core::Backward(loss);
    opt.Step();
    if (step % 125 == 0) {
      std::printf("  step %3d loss %.3f\n", step,
                  static_cast<double>(loss.value()[0]));
    }
  }

  // Walk one fresh game: compare the model's top move with legality.
  std::puts("\nwalking one game: model's top-3 next moves vs the rules");
  othello::Game game = othello::RandomGame(&rng);
  othello::Board board;
  std::vector<int64_t> prefix;
  for (int64_t t = 0; t < std::min<int64_t>(kMoves, 8); ++t) {
    const int move = game.moves[static_cast<size_t>(t)];
    LLM_CHECK(board.Apply(move).ok());
    prefix.push_back(move);
    core::Variable logits = model.ForwardLogits(
        prefix, 1, static_cast<int64_t>(prefix.size()));
    const float* row =
        logits.value().data() + (prefix.size() - 1) * 64;
    // Top-3 by logit.
    std::vector<int> ids(64);
    for (int i = 0; i < 64; ++i) ids[static_cast<size_t>(i)] = i;
    std::partial_sort(ids.begin(), ids.begin() + 3, ids.end(),
                      [&](int a, int b) { return row[a] > row[b]; });
    std::printf("after %-3s  model suggests:", othello::Board::CellName(
                                                   move).c_str());
    for (int k = 0; k < 3; ++k) {
      std::printf(" %s(%s)",
                  othello::Board::CellName(ids[static_cast<size_t>(k)])
                      .c_str(),
                  board.IsLegal(ids[static_cast<size_t>(k)]) ? "legal"
                                                             : "ILLEGAL");
    }
    std::printf("\n");
  }

  // Probe: can a linear map read off whether cell D3 (19) is occupied?
  std::puts("\ntraining a linear probe: residual stream -> state of D3");
  const int kCell = 19;
  const size_t kProbeN = std::min<size_t>(sequences.size(), 300);
  core::Tensor acts({static_cast<int64_t>(kProbeN), cfg.d_model});
  std::vector<int64_t> labels(kProbeN);
  for (size_t gi = 0; gi < kProbeN; ++gi) {
    nn::ActivationCapture cap;
    nn::ForwardOptions fopts;
    fopts.capture = &cap;
    model.ForwardLogits(sequences[gi], 1, kMoves, fopts);
    const core::Tensor& h = cap.residual.back().value();
    for (int64_t c = 0; c < cfg.d_model; ++c) {
      acts[static_cast<int64_t>(gi) * cfg.d_model + c] =
          h.At({0, kMoves - 1, c});
    }
    othello::Board b2;
    for (int64_t t = 0; t < kMoves; ++t) {
      LLM_CHECK(
          b2.Apply(static_cast<int>(sequences[gi][static_cast<size_t>(t)]))
              .ok());
    }
    labels[gi] = static_cast<int64_t>(b2.at(kCell));
  }
  interp::ProbeConfig pcfg;
  pcfg.input_dim = cfg.d_model;
  pcfg.num_classes = 3;
  pcfg.steps = 400;
  interp::Probe probe(pcfg);
  probe.Fit(acts, labels);
  std::printf("probe accuracy for D3 state (empty/black/white): %.3f\n",
              probe.Accuracy(acts, labels));
  std::puts("\nThe model was never shown a board — only move tokens — yet"
            "\nits activations encode one (the paper's 'world model').");
  return 0;
}
