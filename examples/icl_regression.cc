// In-context learning demo (paper §3-§4): a transformer trained across
// many linear-regression episodes solves *new* regression problems at
// inference time, from examples in its context window alone — no weight
// updates. This is the "meta-learning" the paper highlights: the model
// has learned the learning algorithm.
#include <cstdio>

#include "data/icl_regression.h"
#include "nn/icl_regressor.h"
#include "train/trainer.h"

int main() {
  using namespace llm;
  util::Rng rng(4);

  nn::IclRegressorConfig cfg;
  cfg.dim = 3;
  cfg.max_pairs = 10;
  cfg.d_model = 48;
  cfg.n_layer = 3;
  cfg.n_head = 2;
  nn::InContextRegressor model(cfg, &rng);
  std::printf("training across random regression episodes (%lld params)\n",
              static_cast<long long>(model.NumParameters()));

  data::IclRegressionOptions dopts;
  dopts.dim = 3;
  train::AdamWOptions aopts;
  aopts.lr = 1e-3f;
  train::AdamW opt(model.Parameters(), aopts);
  train::TrainerOptions topts;
  topts.max_steps = 800;
  topts.clip_norm = 1.0f;
  topts.log_every = 200;
  train::Trainer trainer(&opt, topts);
  trainer.Run([&] {
    const int n_pairs = 4 + static_cast<int>(rng.UniformInt(6));
    std::vector<float> xs, ys;
    for (int b = 0; b < 16; ++b) {
      auto ep = data::SampleIclEpisode(dopts, n_pairs, &rng);
      xs.insert(xs.end(), ep.xs.begin(), ep.xs.end());
      ys.insert(ys.end(), ep.ys.begin(), ep.ys.end());
    }
    return model.Loss(xs, ys, 16, n_pairs);
  });

  // A brand-new problem the model has never seen: w = (2, -1, 0.5).
  std::puts("\nnew episode with hidden w = (2, -1, 0.5):");
  const int n_pairs = 8;
  data::IclEpisode ep;
  ep.dim = 3;
  ep.n_pairs = n_pairs;
  ep.w = {2.0f, -1.0f, 0.5f};
  for (int i = 0; i < n_pairs; ++i) {
    float y = 0;
    for (int j = 0; j < 3; ++j) {
      const float x = static_cast<float>(rng.Normal());
      ep.xs.push_back(x);
      y += ep.w[static_cast<size_t>(j)] * x;
    }
    ep.ys.push_back(y);
  }
  core::Variable preds = model.Predict(ep.xs, ep.ys, 1, n_pairs);
  std::puts("  #ctx   x1     x2     x3      true y   model    lsq");
  for (int i = 0; i < n_pairs; ++i) {
    data::IclEpisode partial = ep;
    partial.n_pairs = i + 1;
    partial.xs.assign(ep.xs.begin(), ep.xs.begin() + (i + 1) * 3);
    partial.ys.assign(ep.ys.begin(), ep.ys.begin() + i + 1);
    const double lsq =
        i == 0 ? 0.0 : data::LeastSquaresPredict(partial);
    std::printf("  %4d  %+5.2f  %+5.2f  %+5.2f   %+6.2f   %+6.2f  %+6.2f\n",
                i, static_cast<double>(ep.xs[static_cast<size_t>(i * 3)]),
                static_cast<double>(ep.xs[static_cast<size_t>(i * 3 + 1)]),
                static_cast<double>(ep.xs[static_cast<size_t>(i * 3 + 2)]),
                static_cast<double>(ep.ys[static_cast<size_t>(i)]),
                static_cast<double>(preds.value()[i]), lsq);
  }
  std::puts("\nThe model's prediction at each row uses only the rows above"
            "\nit (causal attention): by row 4 (= dim + 1) it matches least"
            "\nsquares — in-context learning, no gradient steps.");
  return 0;
}
