// Interpretability tour (paper §7): the "neuroscience of LLMs" toolkit on
// one small model — train a 2-layer attention-only transformer on
// repeated sequences, then
//   1. render a head's attention pattern as an ASCII heatmap (the raw
//      "microscopic workings" the paper says we can fully observe),
//   2. score each head for induction behaviour,
//   3. train a linear probe on the residual stream, and
//   4. run an intervention: edit one position's activation and watch the
//      prediction change — the targeted experiment "neuroscientists can
//      only dream of."
#include <cstdio>

#include "data/induction.h"
#include "eval/metrics.h"
#include "interp/probe.h"
#include "nn/transformer.h"
#include "train/optimizer.h"

namespace {
constexpr int64_t kVocab = 12;
constexpr int64_t kT = 16;

char Shade(float p) {
  if (p > 0.5f) return '#';
  if (p > 0.25f) return '+';
  if (p > 0.1f) return '.';
  return ' ';
}
}  // namespace

int main() {
  using namespace llm;
  util::Rng rng(77);
  nn::GPTConfig cfg;
  cfg.vocab_size = kVocab;
  cfg.max_seq_len = kT;
  cfg.d_model = 48;
  cfg.n_layer = 2;
  cfg.n_head = 2;
  cfg.attention_only = true;
  nn::GPTModel model(cfg, &rng);

  data::InductionOptions dopts;
  dopts.vocab_size = kVocab;
  dopts.seq_len = kT;

  std::puts("training a 2-layer attention-only model on repeated "
            "sequences...");
  train::AdamWOptions aopts;
  aopts.lr = 2e-3f;
  train::AdamW opt(model.Parameters(), aopts);
  for (int step = 0; step < 1500; ++step) {
    std::vector<int64_t> in, tg;
    data::SampleInductionBatch(dopts, &rng, 16, &in, &tg);
    core::Variable loss = core::CrossEntropyLogits(
        model.ForwardLogits(in, 16, kT), tg);
    opt.ZeroGrad();
    core::Backward(loss);
    opt.Step();
    if (step % 500 == 0) {
      std::printf("  step %4d loss %.3f\n", step,
                  static_cast<double>(loss.value()[0]));
    }
  }

  // 1. Attention heatmap on one sequence.
  std::vector<int64_t> in, tg, splits;
  data::SampleInductionBatch(dopts, &rng, 1, &in, &tg, &splits);
  nn::ActivationCapture cap;
  cap.capture_attention = true;
  nn::ForwardOptions fopts;
  fopts.capture = &cap;
  core::Variable logits = model.ForwardLogits(in, 1, kT, fopts);

  std::printf("\nsequence (prefix length %lld, then cyclic repeats):\n  ",
              static_cast<long long>(splits[0]));
  for (int64_t t = 0; t < kT; ++t) {
    std::printf("%2lld ", static_cast<long long>(in[static_cast<size_t>(t)]));
  }
  std::printf("\n\nattention heatmap, layer 1 head 0 (rows = query "
              "position, cols = key):\n");
  const core::Tensor& att = cap.attention[1];  // [1, H, T, T]
  for (int64_t i = 0; i < kT; ++i) {
    std::printf("  %2lld |", static_cast<long long>(i));
    for (int64_t j = 0; j < kT; ++j) {
      std::printf("%c", Shade(att.At({0, 0, i, j})));
    }
    std::printf("|\n");
  }

  // 2. Induction scores per head.
  std::vector<int64_t> in2, tg2, splits2;
  data::SampleInductionBatch(dopts, &rng, 32, &in2, &tg2, &splits2);
  nn::ActivationCapture cap2;
  cap2.capture_attention = true;
  nn::ForwardOptions fopts2;
  fopts2.capture = &cap2;
  core::Variable logits2 = model.ForwardLogits(in2, 32, kT, fopts2);
  std::printf("\ncopy accuracy: %.3f (chance %.3f)\n",
              eval::MaskedAccuracy(logits2.value(), tg2), 1.0 / kVocab);
  for (size_t layer = 0; layer < cap2.attention.size(); ++layer) {
    auto scores = data::InductionScores(
        splits2, 32, kT, cap2.attention[layer].data(), cfg.n_head, 1);
    std::printf("induction score (+-1) layer %zu:", layer);
    for (double s : scores) std::printf("  %.3f", s);
    std::printf("\n");
  }

  // 3. Linear probe: does the residual stream at the last position encode
  // the *current token* (it should — trivially) and the *prefix length*
  // (a latent variable the model must infer)?
  const size_t kN = 200;
  core::Tensor acts({static_cast<int64_t>(kN), cfg.d_model});
  std::vector<int64_t> split_labels(kN);
  for (size_t i = 0; i < kN; ++i) {
    std::vector<int64_t> xin, xtg, xsp;
    data::SampleInductionBatch(dopts, &rng, 1, &xin, &xtg, &xsp);
    nn::ActivationCapture c;
    nn::ForwardOptions f;
    f.capture = &c;
    model.ForwardLogits(xin, 1, kT, f);
    const core::Tensor& h = c.residual.back().value();
    for (int64_t d = 0; d < cfg.d_model; ++d) {
      acts[static_cast<int64_t>(i) * cfg.d_model + d] =
          h.At({0, kT - 1, d});
    }
    split_labels[i] = xsp[0] - 4;  // prefix length in [4, 8] -> class 0..4
  }
  interp::ProbeConfig pcfg;
  pcfg.input_dim = cfg.d_model;
  pcfg.num_classes = 5;
  pcfg.steps = 400;
  interp::Probe probe(pcfg);
  probe.Fit(acts, split_labels);
  std::printf("\nlinear probe: residual stream -> latent prefix length: "
              "%.3f accuracy (chance 0.2)\n",
              probe.Accuracy(acts, split_labels));

  // 4. Intervention: zero out the last position's residual at layer 1 and
  // watch the prediction change.
  core::Tensor before = logits.value();
  core::Tensor edited = cap.residual[1].value();
  for (int64_t d = 0; d < cfg.d_model; ++d) {
    edited.At({0, kT - 1, d}) = 0.0f;
  }
  core::Tensor after =
      model.ForwardFromLayer(core::Variable(edited), 1).value();
  const float* b = before.data() + (kT - 1) * kVocab;
  const float* a = after.data() + (kT - 1) * kVocab;
  int64_t argmax_b = 0, argmax_a = 0;
  for (int64_t v = 1; v < kVocab; ++v) {
    if (b[v] > b[argmax_b]) argmax_b = v;
    if (a[v] > a[argmax_a]) argmax_a = v;
  }
  std::printf("\nintervention (erase last position's layer-1 input): "
              "prediction %lld -> %lld (true next token's source says "
              "%lld)\n",
              static_cast<long long>(argmax_b),
              static_cast<long long>(argmax_a),
              static_cast<long long>(in[static_cast<size_t>(
                  kT - splits[0])]));
  std::puts("\nEvery probe, map, and edit above is exact — the paper's\n"
            "point that for artificial networks, unlike brains, the\n"
            "microscope is perfect (§7).");
  return 0;
}
