// dist_worker: one rank of a multi-process data-parallel gang.
//
// Forked+exec'd by ProcGroupCoordinator (or launched by hand), it loads
// the rendezvous checkpoint, connects a SocketComm back to the
// coordinator's address, and runs the shared transport-agnostic worker
// loop on the canonical toy task (train/dist/toy_task.h). Faults are
// armed from --arm-fault flags so chaos tests can schedule real in-process
// failures: a fired worker-kill raises SIGKILL and the process dies for
// real, mid-step, with no goodbye frame.
//
// Exit codes (keep in sync with train/dist/proc_group.h):
//   0  ran to max_steps
//   2  collective cancelled / fenced / timed out — respawn me
//   3  checkpoint load failed
//   4  bad arguments
//
// Usage:
//   dist_worker --rank=0 --world=2 --address=/tmp/comm.sock --epoch=0
//     --ckpt=/tmp/ckpt/checkpoint_00000000.tfmr --ckpt-dir=/tmp/ckpt
//     --max-steps=20 --checkpoint-every=5 --keep-last-k=2 --seed=24397
//     --collective-timeout-ms=4000 [--telemetry-every=2]
//     [--postmortem=/tmp/ckpt/postmortem_rank0.tfmr]
//     [--arm-fault=sock-drop@3 ...]
//
// Telemetry: with --telemetry-every=N the loop ships a rank-tagged
// metrics + flight-delta unit to the coordinator every N steps (and once
// at the end). With --postmortem=PATH a dying worker — catchable fatal
// signal, load failure, cancelled loop, or the self-inflicted
// worker-kill fault — atomically dumps its final unit there for the
// coordinator to harvest into an IncidentReport.
#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "train/checkpoint.h"
#include "train/dist/proc_group.h"
#include "train/dist/socket_transport.h"
#include "train/dist/toy_task.h"
#include "train/dist/worker_loop.h"
#include "util/fault.h"

namespace {

using namespace llm;              // NOLINT
using namespace llm::train;       // NOLINT
using namespace llm::train::dist; // NOLINT

struct Args {
  int rank = -1;
  int world = -1;
  std::string address;
  int64_t epoch = 0;
  std::string ckpt;
  std::string ckpt_dir;
  int64_t max_steps = -1;
  int64_t checkpoint_every = 0;
  int keep_last_k = 2;
  uint64_t seed = 0x5eedULL;
  int64_t collective_timeout_ms = 4000;
  int64_t telemetry_every = 0;
  std::string postmortem;
  // (site, zero-based occurrence) pairs from --arm-fault=name@occ.
  std::vector<std::pair<util::FaultSite, int64_t>> faults;
};

// Last-gasp state for the fatal-signal handler and the non-OK exit
// paths: enough to dump a postmortem without walking argv again.
std::atomic<int64_t> g_step{0};
int g_rank = -1;
int64_t g_epoch = 0;
char g_postmortem_path[4096] = {0};

/// Dumps the full metrics + flight ring to the postmortem file. Called
/// from failure exit paths and — pragmatically, see WritePostmortem's
/// contract — from the fatal-signal handler.
void DumpPostmortem(int sig) {
  if (g_postmortem_path[0] == '\0') return;
  llm::obs::FlightRecorder::Global().Record(
      llm::obs::FlightEventType::kPostmortemDump, g_rank, g_step.load(), sig);
  llm::obs::TelemetryCaptureOptions cap;
  cap.include_events = true;  // whole ring: this process is one rank
  llm::obs::RankTelemetry unit = llm::obs::CaptureRankTelemetry(
      g_rank, g_epoch, g_step.load(), llm::obs::kTelemetryShipPostmortem,
      cap);
  (void)llm::obs::WritePostmortem(g_postmortem_path, unit);
}

void FatalSignalHandler(int sig) {
  DumpPostmortem(sig);
  // Restore and re-raise so the wait status the coordinator reaps still
  // says "killed by signal N".
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

void InstallFatalSignalHandlers() {
  // SIGKILL is uncatchable — the self-inflicted kWorkerKill fault dumps
  // before raising (worker_loop) — but every catchable fatal gets the
  // last-gasp dump.
  for (int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL, SIGTERM}) {
    std::signal(sig, FatalSignalHandler);
  }
}

bool ParseFaultFlag(const std::string& value, Args* args) {
  const size_t at = value.find('@');
  if (at == std::string::npos) return false;
  const std::string name = value.substr(0, at);
  const int64_t occurrence = std::atoll(value.c_str() + at + 1);
  for (int i = 0; i < util::kNumFaultSites; ++i) {
    const auto site = static_cast<util::FaultSite>(i);
    if (name == util::FaultSiteName(site)) {
      args->faults.emplace_back(site, occurrence);
      return true;
    }
  }
  return false;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  const auto eat = [](const std::string& arg, const char* flag,
                      std::string* out) {
    const std::string prefix = std::string(flag) + "=";
    if (arg.rfind(prefix, 0) != 0) return false;
    *out = arg.substr(prefix.size());
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string v;
    if (eat(arg, "--rank", &v)) {
      args->rank = std::atoi(v.c_str());
    } else if (eat(arg, "--world", &v)) {
      args->world = std::atoi(v.c_str());
    } else if (eat(arg, "--address", &v)) {
      args->address = v;
    } else if (eat(arg, "--epoch", &v)) {
      args->epoch = std::atoll(v.c_str());
    } else if (eat(arg, "--ckpt", &v)) {
      args->ckpt = v;
    } else if (eat(arg, "--ckpt-dir", &v)) {
      args->ckpt_dir = v;
    } else if (eat(arg, "--max-steps", &v)) {
      args->max_steps = std::atoll(v.c_str());
    } else if (eat(arg, "--checkpoint-every", &v)) {
      args->checkpoint_every = std::atoll(v.c_str());
    } else if (eat(arg, "--keep-last-k", &v)) {
      args->keep_last_k = std::atoi(v.c_str());
    } else if (eat(arg, "--seed", &v)) {
      args->seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (eat(arg, "--collective-timeout-ms", &v)) {
      args->collective_timeout_ms = std::atoll(v.c_str());
    } else if (eat(arg, "--telemetry-every", &v)) {
      args->telemetry_every = std::atoll(v.c_str());
    } else if (eat(arg, "--postmortem", &v)) {
      args->postmortem = v;
    } else if (eat(arg, "--arm-fault", &v)) {
      if (!ParseFaultFlag(v, args)) {
        std::fprintf(stderr, "dist_worker: bad --arm-fault value '%s'\n",
                     v.c_str());
        return false;
      }
    } else {
      std::fprintf(stderr, "dist_worker: unknown argument '%s'\n",
                   arg.c_str());
      return false;
    }
  }
  if (args->rank < 0 || args->world < 1 || args->rank >= args->world ||
      args->address.empty() || args->ckpt.empty() ||
      args->ckpt_dir.empty() || args->max_steps < 0) {
    std::fprintf(stderr,
                 "dist_worker: required: --rank --world --address --ckpt "
                 "--ckpt-dir --max-steps\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return kWorkerExitBadArgs;

  // Arm every scheduled fault up front. ArmAt resets the shared
  // occurrence counters each call but keeps previously armed plans, so
  // arming all sites before any is reached keeps schedules exact.
  for (const auto& [site, occurrence] : args.faults) {
    util::FaultInjector::Global().ArmAt(site, {occurrence});
  }
  obs::WireFaultEventsToFlightRecorder();

  g_rank = args.rank;
  g_epoch = args.epoch;
  if (!args.postmortem.empty()) {
    std::snprintf(g_postmortem_path, sizeof(g_postmortem_path), "%s",
                  args.postmortem.c_str());
    InstallFatalSignalHandlers();
  }

  std::unique_ptr<nn::Module> model = MakeToyReplica();
  ShardedAdamW opt(model->Parameters(), ToyAdamWOptions(), args.rank,
                   args.world);

  TrainState init;
  util::Status loaded = LoadCheckpoint(model.get(), args.ckpt, &init);
  if (loaded.ok() && (!init.has_trainer || !init.has_optimizer)) {
    loaded = util::Status::FailedPrecondition(
        "checkpoint lacks trainer/optimizer state: " + args.ckpt);
  }
  if (loaded.ok()) loaded = opt.ImportState(init.optimizer);
  if (!loaded.ok()) {
    std::fprintf(stderr, "dist_worker rank %d: load failed: %s\n", args.rank,
                 loaded.ToString().c_str());
    DumpPostmortem(/*sig=*/0);
    return kWorkerExitLoadFailure;
  }
  g_step.store(init.next_step);

  SocketCommOptions sock_options;
  sock_options.jitter_seed = args.seed ^ 0x50c7e7ULL;
  SocketComm comm(args.rank, args.world, args.address, args.epoch,
                  sock_options);

  WorkerLoopOptions loop;
  loop.rank = args.rank;
  loop.world_size = args.world;
  loop.max_steps = args.max_steps;
  loop.start_step = init.next_step;
  loop.base_lr = ToyAdamWOptions().lr;
  loop.seed = args.seed;
  loop.collective_timeout =
      std::chrono::milliseconds(args.collective_timeout_ms);
  loop.checkpoint_every = args.checkpoint_every;
  loop.checkpoint_dir = args.ckpt_dir;
  loop.keep_last_k = args.keep_last_k;
  loop.die_on_kill_fault = true;  // a killed process, not a killed thread
  loop.epoch = args.epoch;
  loop.telemetry_every = args.telemetry_every;
  // This process IS the rank: every metric and the full flight delta are
  // unambiguously ours to ship.
  loop.telemetry_whole_process = true;
  loop.postmortem_path = args.postmortem;

  std::vector<StepRecord> history;
  if (args.rank == 0) history = std::move(init.history);

  WorkerLoopResult result = RunWorkerLoop(
      comm, *model, opt, ToyDistLoss(), loop,
      args.rank == 0 ? &history : nullptr, /*step_reached=*/&g_step,
      /*superseded=*/nullptr,
      /*on_warning=*/
      [&](const std::string& kind, const std::string& detail) {
        std::fprintf(stderr, "dist_worker rank %d: [%s] %s\n", args.rank,
                     kind.c_str(), detail.c_str());
      });
  if (!result.status.ok()) {
    std::fprintf(stderr, "dist_worker rank %d: exiting at step %lld: %s\n",
                 args.rank, static_cast<long long>(result.step_reached),
                 result.status.ToString().c_str());
    DumpPostmortem(/*sig=*/0);
    return kWorkerExitCancelled;
  }
  return kWorkerExitDone;
}
